"""Trace caching for design-space sweeps.

Recording a :class:`~repro.accel.trace.DecodeTrace` costs one functional
beam search; every replay after that is cheap.  :class:`TraceCache` keeps
traces keyed by a *content fingerprint* of everything the search depends
on -- the graph layout, the acoustic score matrices, the beam and the
``max_active`` cap -- so

* within a sweep, all configurations sharing a layout and beam reuse one
  recording;
* across processes/runs, an optional on-disk cache directory makes the
  recording a one-time cost per workload;
* invalidation is automatic: any change to the workload or layout changes
  the key, and stale files are simply never addressed again (the
  directory can be deleted at any time; traces also embed a format
  version, so archives from an incompatible schema are re-recorded rather
  than misread).
"""

from __future__ import annotations

import hashlib
import os
import struct
import zipfile
from typing import Dict, List, Optional, Sequence

from repro.common.errors import SimulationError
from repro.acoustic.scorer import AcousticScores
from repro.accel.trace import DecodeTrace, TraceRecorder
from repro.decoder.kernel import DecoderConfig
from repro.wfst.layout import CompiledWfst


def workload_fingerprint(
    graph: CompiledWfst,
    scores: Sequence[AcousticScores],
    beam: float = 12.0,
    max_active: int = 0,
    config: Optional[DecoderConfig] = None,
) -> str:
    """Content hash of one (layout, scores, search-parameters) workload.

    Every field of the search configuration that can change the
    functional event stream -- beam, cap, pruning strategy and its
    adaptation parameters -- feeds the key, so a sweep point with a
    different strategy never addresses another point's trace.  Pass
    ``config`` for full control; ``beam`` / ``max_active`` remain as the
    simple legacy spelling.
    """
    if config is None:
        config = DecoderConfig(beam=beam, max_active=max_active)
    # Adaptive-only parameters are zeroed for the fixed-beam strategy:
    # they cannot change its search, and keying on them would fragment
    # the cache into duplicate recordings of identical searches.
    adaptive = config.pruning == "adaptive"
    h = hashlib.sha256()
    h.update(graph.fingerprint().encode())
    h.update(struct.pack(
        "<dQdddd",
        config.beam, config.max_active,
        float(config.target_active) if adaptive else 0.0,
        config.min_beam if adaptive else 0.0,
        config.resolved_max_beam if adaptive else 0.0,
        config.adapt_rate if adaptive else 0.0,
    ))
    h.update(config.pruning.encode())
    for s in scores:
        matrix = s.matrix
        h.update(struct.pack("<QQ", *matrix.shape))
        h.update(matrix.tobytes())
    return h.hexdigest()[:32]


class TraceCache:
    """In-memory (and optionally on-disk) store of recorded decode traces.

    Args:
        directory: optional directory for persistent ``.npz`` trace files.
            Created on first write.  ``None`` keeps traces in memory only.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self._memory: Dict[str, List[DecodeTrace]] = {}
        self.recordings = 0  #: functional searches actually run
        self.hits = 0        #: lookups satisfied without re-searching

    def get(
        self,
        graph: CompiledWfst,
        scores: Sequence[AcousticScores],
        beam: float = 12.0,
        max_active: int = 0,
        config: Optional[DecoderConfig] = None,
    ) -> List[DecodeTrace]:
        """Traces for every utterance of the workload, recording on miss.

        Pass ``config`` for full search-parameter control (pruning
        strategy included); ``beam`` / ``max_active`` remain as the
        simple legacy spelling.
        """
        if config is None:
            config = DecoderConfig(beam=beam, max_active=max_active)
        key = workload_fingerprint(graph, scores, config=config)
        cached = self._memory.get(key)
        if cached is not None:
            self.hits += 1
            return cached

        traces = self._load_from_disk(key, len(scores))
        if traces is not None:
            self.hits += 1
        else:
            recorder = TraceRecorder(graph, config=config)
            traces = [recorder.record(s) for s in scores]
            self.recordings += 1
            self._store_to_disk(key, traces)
        self._memory[key] = traces
        return traces

    # ------------------------------------------------------------------
    def _path(self, key: str, index: int) -> str:
        return os.path.join(self.directory, f"{key}.utt{index}.npz")

    def _load_from_disk(
        self, key: str, count: int
    ) -> Optional[List[DecodeTrace]]:
        if self.directory is None:
            return None
        traces = []
        for i in range(count):
            path = self._path(key, i)
            if not os.path.exists(path):
                return None
            try:
                traces.append(DecodeTrace.load(path))
            except (SimulationError, OSError, KeyError, ValueError,
                    zipfile.BadZipFile, EOFError):
                # Stale format or a torn write (np.load raises BadZipFile
                # for a truncated archive): fall back to re-recording.
                return None
        return traces

    def _store_to_disk(self, key: str, traces: List[DecodeTrace]) -> None:
        if self.directory is None:
            return
        os.makedirs(self.directory, exist_ok=True)
        for i, trace in enumerate(traces):
            trace.save(self._path(key, i))
