"""Declarative parameter grids over accelerator configurations.

A sweep point is a mapping from dotted field paths to values:

* ``"mem_latency_cycles"`` -- a top-level
  :class:`~repro.accel.config.AcceleratorConfig` field;
* ``"arc_cache.size_bytes"`` -- a field of a nested config dataclass
  (``state_cache`` / ``arc_cache`` / ``token_cache`` / ``hash_table``);
* ``"beam"`` -- the *workload* beam width (changes the functional search,
  so the runner records a fresh trace for each distinct value);
* ``"pruning"`` / ``"target_active"`` -- the workload pruning strategy
  (``"beam"`` or ``"adaptive"``; see
  :class:`repro.decoder.kernel.DecoderConfig`), likewise re-traced per
  distinct value -- the executable form of the paper's Fig. 9 beam
  ablation axis;
* ``"sorted.max_direct_arcs"`` -- the Section IV-B comparator count N
  (changes the sorted graph *layout*, likewise re-traced per value).

:class:`ParameterGrid` expands dimensions into their cartesian product in
declaration order; :func:`apply_overrides` materialises one point into an
:class:`~repro.accel.config.AcceleratorConfig`, validating every path.
"""

from __future__ import annotations

import itertools
from dataclasses import fields, is_dataclass, replace
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.accel.config import AcceleratorConfig
from repro.decoder.kernel import PRUNING_STRATEGIES

#: Paths handled by the sweep runner rather than the config dataclass.
WORKLOAD_KEYS = frozenset(
    {"beam", "pruning", "target_active", "sorted.max_direct_arcs"}
)


def _field_names(obj: Any) -> frozenset:
    return frozenset(f.name for f in fields(obj))


def apply_overrides(
    base: AcceleratorConfig, overrides: Dict[str, Any]
) -> AcceleratorConfig:
    """Build a configuration from ``base`` with ``overrides`` applied.

    Workload-level keys (:data:`WORKLOAD_KEYS`) are skipped -- the sweep
    runner consumes those.  Unknown paths raise
    :class:`~repro.common.errors.ConfigError` so a typo'd sweep fails
    loudly instead of silently re-running the base design.
    """
    top: Dict[str, Any] = {}
    nested: Dict[str, Dict[str, Any]] = {}
    base_fields = _field_names(base)
    for path, value in overrides.items():
        if path in WORKLOAD_KEYS:
            continue
        head, _, rest = path.partition(".")
        if head not in base_fields:
            raise ConfigError(
                f"unknown sweep parameter {path!r}: {head!r} is not a field "
                f"of AcceleratorConfig"
            )
        if not rest:
            top[head] = value
            continue
        child = getattr(base, head)
        if not is_dataclass(child):
            raise ConfigError(
                f"sweep parameter {path!r} is invalid: {head!r} is not a "
                f"nested configuration"
            )
        if "." in rest or rest not in _field_names(child):
            raise ConfigError(
                f"unknown sweep parameter {path!r}: no field {rest!r} on "
                f"{type(child).__name__}"
            )
        nested.setdefault(head, {})[rest] = value
    for head, sub in nested.items():
        top[head] = replace(getattr(base, head), **sub)
    return replace(base, **top)


def parse_sweep_value(text: str) -> Any:
    """Parse one CLI sweep value: bool, int (with K/M/G suffix), float, or
    a pruning-strategy name (for the ``pruning`` workload axis)."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    # Only known strategy names pass as strings -- anything else
    # non-numeric keeps raising ConfigError instead of leaking a truthy
    # string into a config field.
    if lowered in PRUNING_STRATEGIES:
        return lowered
    scale = 1
    if lowered and lowered[-1] in "kmg":
        scale = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}[lowered[-1]]
        lowered = lowered[:-1]
    try:
        return int(lowered) * scale
    except ValueError:
        pass
    try:
        value = float(lowered)
    except ValueError:
        raise ConfigError(f"cannot parse sweep value {text!r}") from None
    if scale != 1:
        return int(value * scale)
    return value


class ParameterGrid:
    """A cartesian product of sweep dimensions, expanded in declaration order.

    >>> grid = ParameterGrid([
    ...     ("arc_cache.size_bytes", [256 * 1024, 1024 * 1024]),
    ...     ("prefetch_enabled", [False, True]),
    ... ])
    >>> len(grid)
    4
    """

    def __init__(
        self, dimensions: Sequence[Tuple[str, Iterable[Any]]]
    ) -> None:
        self.dimensions: List[Tuple[str, Tuple[Any, ...]]] = []
        for path, values in dimensions:
            values = tuple(values)
            if not values:
                raise ConfigError(f"sweep dimension {path!r} has no values")
            self.dimensions.append((path, values))

    @classmethod
    def from_specs(cls, specs: Sequence[str]) -> "ParameterGrid":
        """Parse CLI specs of the form ``path=value[,value...]``."""
        dims = []
        for spec in specs:
            path, sep, values = spec.partition("=")
            if not sep or not path or not values:
                raise ConfigError(
                    f"malformed sweep spec {spec!r} (expected "
                    f"'path=value[,value...]')"
                )
            dims.append(
                (path.strip(), [parse_sweep_value(v) for v in values.split(",")])
            )
        return cls(dims)

    def __len__(self) -> int:
        n = 1
        for _, values in self.dimensions:
            n *= len(values)
        return n

    def points(self) -> List[Dict[str, Any]]:
        """Every grid point as an override mapping, product-ordered."""
        if not self.dimensions:
            return [{}]
        paths = [path for path, _ in self.dimensions]
        return [
            dict(zip(paths, combo))
            for combo in itertools.product(
                *(values for _, values in self.dimensions)
            )
        ]


def describe_point(overrides: Dict[str, Any]) -> str:
    """A stable human-readable label for one sweep point."""
    if not overrides:
        return "base"
    return " ".join(
        f"{path}={_fmt_value(v)}" for path, v in overrides.items()
    )


def _fmt_value(value: Any) -> str:
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, int) and value >= 1024 and value % 1024 == 0:
        if value % (1024 ** 2) == 0:
            return f"{value // 1024 ** 2}M"
        return f"{value // 1024}K"
    return str(value)
