"""The shared design-space sweep runner.

``SweepRunner`` turns a workload plus a parameter grid into priced design
points: it records the functional decode trace once per (graph layout,
beam, pruning strategy) via :class:`~repro.explore.cache.TraceCache`,
replays it under every
configuration with :class:`~repro.accel.replay.TraceReplayer` (optionally
fanned out across worker processes), applies the energy model, and
returns rows ready for tables, JSON and CSV artifacts.

This is the engine behind the ``bench_fig*`` / ``bench_ablation_*``
parameter sweeps, ``examples/design_space.py`` and ``repro sweep``; a
multi-point sweep costs one search plus one cheap replay per point
instead of one full simulation per point
(``benchmarks/bench_sweep_throughput.py`` gates the resulting >= 5x
end-to-end win).
"""

from __future__ import annotations

import csv
import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ConfigError
from repro.accel.config import AcceleratorConfig
from repro.accel.replay import TraceReplayer
from repro.accel.stats import SimStats
from repro.accel.trace import DecodeTrace
from repro.acoustic.scorer import AcousticScores
from repro.decoder.kernel import DecoderConfig
from repro.decoder.result import SearchStats
from repro.energy.components import AcceleratorEnergyModel
from repro.explore.cache import TraceCache
from repro.explore.grid import ParameterGrid, apply_overrides, describe_point
from repro.wfst.layout import CompiledWfst
from repro.wfst.sorted_layout import SortedWfst, sort_states_by_arc_count


@dataclass
class SweepWorkload:
    """The minimal workload contract the sweep runner needs.

    :class:`repro.system.experiment.MemoryWorkload` satisfies it directly;
    :meth:`from_task` adapts a ground-truth
    :class:`~repro.datasets.task.Task`.
    """

    graph: CompiledWfst
    scores: List[AcousticScores]
    beam: float
    max_active: int = 0
    sorted_graph: Optional[SortedWfst] = None
    #: Workload-level pruning strategy defaults (overridable per sweep
    #: point via the "pruning" / "target_active" grid axes).
    pruning: str = "beam"
    target_active: int = 0

    @classmethod
    def from_task(
        cls, task, beam: float, max_active: int = 0,
        sorted_graph: Optional[SortedWfst] = None,
    ) -> "SweepWorkload":
        return cls(
            graph=task.graph,
            scores=[u.scores for u in task.utterances],
            beam=beam,
            max_active=max_active,
            sorted_graph=sorted_graph,
        )


@dataclass
class SweepPoint:
    """One priced configuration of a sweep."""

    label: str
    overrides: Dict[str, Any]
    config: AcceleratorConfig
    beam: float
    cycles: int                 #: total cycles over all utterances
    seconds: float              #: wall-clock at ``config.frequency_hz``
    decode_s_per_speech_s: float  #: the paper's headline metric
    energy_j: float
    avg_power_w: float
    stats: SimStats             #: merged cycle-level statistics
    search: SearchStats         #: merged functional statistics
    words: Tuple[Tuple[int, ...], ...]  #: decoded words per utterance
    log_likelihoods: Tuple[float, ...]  #: best-path score per utterance

    def row(self) -> Dict[str, Any]:
        """Flatten the point into one artifact row."""
        s = self.stats
        return {
            "label": self.label,
            "overrides": dict(self.overrides),
            "beam": self.beam,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "decode_s_per_speech_s": self.decode_s_per_speech_s,
            "energy_j": self.energy_j,
            "avg_power_w": self.avg_power_w,
            "state_miss_ratio": s.state_cache.miss_ratio,
            "arc_miss_ratio": s.arc_cache.miss_ratio,
            "token_miss_ratio": s.token_cache.miss_ratio,
            "hash_cycles_per_request": s.hash.avg_cycles_per_request,
            "hash_collisions": s.hash.collisions,
            "hash_overflows": s.hash.overflows,
            "dram_bytes": s.traffic.total_bytes(),
            "arcs_processed": s.arcs_processed,
            "epsilon_arcs_processed": s.epsilon_arcs_processed,
            "states_fetched": s.states_fetched,
            "states_direct": s.states_direct,
            "frames": s.frames,
            "mean_active_tokens": self.search.mean_active_tokens,
        }


@dataclass
class SweepResult:
    """All priced points of one sweep plus provenance."""

    points: List[SweepPoint]
    speech_seconds: float
    elapsed_seconds: float
    trace_recordings: int  #: functional searches run (vs. cache hits)
    trace_cache_hits: int
    processes: int

    def __len__(self) -> int:
        return len(self.points)

    def point(self, label: str) -> SweepPoint:
        for p in self.points:
            if p.label == label:
                return p
        raise ConfigError(f"no sweep point labelled {label!r}")

    def rows(self) -> List[Dict[str, Any]]:
        return [p.row() for p in self.points]

    def to_json(self, path: str) -> str:
        """Write the machine-readable artifact; returns the path."""
        payload = {
            "speech_seconds": self.speech_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "trace_recordings": self.trace_recordings,
            "trace_cache_hits": self.trace_cache_hits,
            "processes": self.processes,
            "points": self.rows(),
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def to_csv(self, path: str) -> str:
        """Write one CSV row per point; returns the path."""
        rows = self.rows()
        for row in rows:
            row["overrides"] = " ".join(
                f"{k}={v}" for k, v in row["overrides"].items()
            )
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", newline="") as fh:
            if not rows:
                return path
            writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        return path


# ----------------------------------------------------------------------
# Worker-process plumbing.  The parent publishes the (large, numpy-backed)
# graphs and traces in a module global before forking, so children inherit
# them via copy-on-write instead of pickling.
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {}


def _evaluate(
    graph: CompiledWfst,
    sorted_graph: Optional[SortedWfst],
    config: AcceleratorConfig,
    traces: Sequence[DecodeTrace],
    energy_model: AcceleratorEnergyModel,
) -> Tuple[SimStats, SearchStats, float]:
    replayer = TraceReplayer(graph, config, sorted_graph=sorted_graph)
    results = [replayer.replay(t) for t in traces]
    stats = SimStats.merge([r.stats for r in results])
    search = SearchStats.merge([r.search for r in results])
    energy = sum(
        energy_model.energy(config, r.stats).total_j for r in results
    )
    return stats, search, energy


def _worker_evaluate(task):
    index, config, layout_id, trace_key = task
    graph, sorted_graph = _WORKER_STATE["layouts"][layout_id]
    traces = _WORKER_STATE["traces"][trace_key]
    stats, search, energy = _evaluate(
        graph, sorted_graph, config, traces, _WORKER_STATE["energy_model"]
    )
    return index, stats, search, energy


class SweepRunner:
    """Price a parameter grid against one workload, trace-once/replay-many.

    Args:
        workload: anything exposing ``graph`` / ``scores`` / ``beam`` /
            ``max_active`` (and optionally ``sorted_graph``) -- see
            :class:`SweepWorkload`.
        base_config: configuration every point starts from (Table I by
            default).
        energy_model: prices energy/power per point.
        trace_cache: shared trace store; pass one with a directory for a
            persistent on-disk cache.  A fresh in-memory cache otherwise.
        processes: worker processes for the replay fan-out.  ``None``
            auto-sizes to the CPU count; values <= 1 run serially.  Fork
            is required for the fan-out (the default on Linux); other
            start methods fall back to serial execution.
    """

    def __init__(
        self,
        workload,
        base_config: Optional[AcceleratorConfig] = None,
        energy_model: Optional[AcceleratorEnergyModel] = None,
        trace_cache: Optional[TraceCache] = None,
        processes: Optional[int] = 1,
    ) -> None:
        self.workload = workload
        self.base_config = base_config or AcceleratorConfig()
        self.energy_model = energy_model or AcceleratorEnergyModel()
        self.trace_cache = trace_cache or TraceCache()
        self.processes = processes
        self._sorted_layouts: Dict[Optional[int], SortedWfst] = {}

    # ------------------------------------------------------------------
    def sorted_layout(self, max_direct_arcs: Optional[int] = None) -> SortedWfst:
        """The Section IV-B sorted layout for comparator count N (cached).

        ``None`` means the workload's own sorted graph (or the default N).
        """
        return self._sorted_layout(max_direct_arcs)

    def _sorted_layout(self, max_direct_arcs: Optional[int]) -> SortedWfst:
        cached = self._sorted_layouts.get(max_direct_arcs)
        if cached is not None:
            return cached
        layout = getattr(self.workload, "sorted_graph", None)
        if max_direct_arcs is None:
            if layout is None:
                layout = sort_states_by_arc_count(self.workload.graph)
        elif layout is None or layout.max_direct_arcs != max_direct_arcs:
            layout = sort_states_by_arc_count(
                self.workload.graph, max_direct_arcs=max_direct_arcs
            )
        self._sorted_layouts[max_direct_arcs] = layout
        return layout

    def run(
        self,
        grid: Union[ParameterGrid, Sequence[Dict[str, Any]]],
        labels: Optional[Sequence[str]] = None,
    ) -> SweepResult:
        """Price every point of ``grid`` (a grid or explicit override list)."""
        t_start = time.perf_counter()
        if isinstance(grid, ParameterGrid):
            points = grid.points()
        else:
            points = [dict(p) for p in grid]
        if not points:
            raise ConfigError("a sweep needs at least one point")
        if labels is None:
            labels = [describe_point(p) for p in points]
        elif len(labels) != len(points):
            raise ConfigError("labels and grid points must align")

        workload = self.workload
        max_active = getattr(workload, "max_active", 0)
        rec_before = self.trace_cache.recordings
        hits_before = self.trace_cache.hits

        # Resolve each point to (config, layout, search-config) and record
        # the traces each distinct (layout, search-config) needs -- once.
        plans = []
        layouts: Dict[Tuple, Tuple[CompiledWfst, Optional[SortedWfst]]] = {}
        traces: Dict[Tuple, List[DecodeTrace]] = {}
        for overrides in points:
            config = apply_overrides(self.base_config, overrides)
            beam = float(overrides.get("beam", workload.beam))
            if beam <= 0:
                raise ConfigError("beam must be positive")
            pruning = str(
                overrides.get("pruning", getattr(workload, "pruning", "beam"))
            )
            target_active = int(
                overrides.get(
                    "target_active", getattr(workload, "target_active", 0)
                )
            )
            if pruning != "adaptive":
                # target_active cannot change a fixed-beam search; keep
                # the trace key strategy-normalized so grid points that
                # differ only in the ignored axis share one recording.
                target_active = 0
            search_config = DecoderConfig(
                beam=beam, max_active=max_active,
                pruning=pruning, target_active=target_active,
            )
            if config.state_direct_enabled:
                n = overrides.get(
                    "sorted.max_direct_arcs", config.state_direct_max_arcs
                )
                sorted_graph = self._sorted_layout(n)
                layout_id = ("sorted", sorted_graph.max_direct_arcs)
                trace_graph = sorted_graph.graph
            else:
                sorted_graph = None
                layout_id = ("flat",)
                trace_graph = workload.graph
            layouts[layout_id] = (workload.graph, sorted_graph)
            trace_key = (layout_id, beam, pruning, target_active)
            if trace_key not in traces:
                traces[trace_key] = self.trace_cache.get(
                    trace_graph, workload.scores, config=search_config
                )
            plans.append((config, layout_id, trace_key))

        outcomes = self._execute(plans, layouts, traces)

        speech_seconds = 0.01 * sum(
            t.num_frames for t in next(iter(traces.values()))
        )
        result_points = []
        for i, (overrides, label) in enumerate(zip(points, labels)):
            config, _layout_id, trace_key = plans[i]
            stats, search, energy = outcomes[i]
            seconds = stats.seconds(config.frequency_hz)
            result_points.append(
                SweepPoint(
                    label=label,
                    overrides=overrides,
                    config=config,
                    beam=float(overrides.get("beam", workload.beam)),
                    cycles=stats.cycles,
                    seconds=seconds,
                    decode_s_per_speech_s=stats.decode_time_per_speech_second(
                        config.frequency_hz
                    ),
                    energy_j=energy,
                    avg_power_w=energy / seconds if seconds else 0.0,
                    stats=stats,
                    search=search,
                    words=tuple(t.words for t in traces[trace_key]),
                    log_likelihoods=tuple(
                        t.log_likelihood for t in traces[trace_key]
                    ),
                )
            )
        return SweepResult(
            points=result_points,
            speech_seconds=speech_seconds,
            elapsed_seconds=time.perf_counter() - t_start,
            trace_recordings=self.trace_cache.recordings - rec_before,
            trace_cache_hits=self.trace_cache.hits - hits_before,
            processes=self._effective_processes(len(points)),
        )

    # ------------------------------------------------------------------
    def _effective_processes(self, num_points: int) -> int:
        procs = self.processes
        if procs is None:
            procs = os.cpu_count() or 1
        procs = min(procs, num_points)
        if procs > 1 and "fork" not in multiprocessing.get_all_start_methods():
            procs = 1
        return max(procs, 1)

    def _execute(self, plans, layouts, traces):
        procs = self._effective_processes(len(plans))
        if procs <= 1:
            return [
                _evaluate(
                    *layouts[layout_id], config, traces[trace_key],
                    self.energy_model,
                )
                for config, layout_id, trace_key in plans
            ]

        # Fork-based fan-out: publish the heavy shared state, fork, and
        # collect per-point summaries.
        global _WORKER_STATE
        _WORKER_STATE = {
            "layouts": layouts,
            "traces": traces,
            "energy_model": self.energy_model,
        }
        tasks = [
            (i, config, layout_id, trace_key)
            for i, (config, layout_id, trace_key) in enumerate(plans)
        ]
        outcomes: List[Optional[Tuple[SimStats, SearchStats, float]]]
        outcomes = [None] * len(plans)
        ctx = multiprocessing.get_context("fork")
        try:
            with ctx.Pool(processes=procs) as pool:
                for index, stats, search, energy in pool.imap_unordered(
                    _worker_evaluate, tasks
                ):
                    outcomes[index] = (stats, search, energy)
        finally:
            _WORKER_STATE = {}
        return outcomes


def run_sweep(
    workload,
    grid: Union[ParameterGrid, Sequence[Dict[str, Any]], Sequence[Tuple[str, Sequence[Any]]]],
    labels: Optional[Sequence[str]] = None,
    base_config: Optional[AcceleratorConfig] = None,
    trace_cache: Optional[TraceCache] = None,
    processes: Optional[int] = 1,
) -> SweepResult:
    """One-call sweep: accepts a grid, dimension pairs or override dicts."""
    if (
        not isinstance(grid, ParameterGrid)
        and grid
        and isinstance(grid[0], tuple)
    ):
        grid = ParameterGrid(grid)
    runner = SweepRunner(
        workload,
        base_config=base_config,
        trace_cache=trace_cache,
        processes=processes,
    )
    return runner.run(grid, labels=labels)
