"""Design-space exploration over the accelerator configuration (paper,
Section IV and Figures 4-14).

The paper's evaluation is a sweep: hold the workload fixed, vary the
hardware -- cache capacities (Figure 4), hash sizing (Figure 5), prefetch
depth, comparator count, memory latency -- and re-price the same beam
search under each point.  This package makes that a first-class, shared
operation instead of a copy-pasted loop per figure:

* :class:`~repro.explore.grid.ParameterGrid` -- declarative parameter
  grids over dotted :class:`~repro.accel.config.AcceleratorConfig` field
  paths (``"arc_cache.size_bytes"``), plus the workload-level ``"beam"``
  and layout-level ``"sorted.max_direct_arcs"`` axes;
* :class:`~repro.explore.cache.TraceCache` -- records each workload's
  functional :class:`~repro.accel.trace.DecodeTrace` once per graph
  layout and beam, in memory and optionally on disk (content-addressed,
  so a changed workload can never replay a stale trace);
* :class:`~repro.explore.runner.SweepRunner` -- prices every grid point
  with a :class:`~repro.accel.replay.TraceReplayer` (optionally fanned
  out across processes) and returns :class:`~repro.explore.runner.SweepResult`
  rows with cycles, miss ratios, hash behaviour, DRAM traffic, energy and
  power, exportable as JSON/CSV artifacts.

The figure/ablation benchmarks, ``examples/design_space.py`` and the
``repro sweep`` CLI subcommand are all built on this runner.
"""

from repro.explore.grid import ParameterGrid, apply_overrides, parse_sweep_value
from repro.explore.cache import TraceCache, workload_fingerprint
from repro.explore.runner import (
    SweepPoint,
    SweepResult,
    SweepRunner,
    SweepWorkload,
    run_sweep,
)

__all__ = [
    "ParameterGrid",
    "apply_overrides",
    "parse_sweep_value",
    "TraceCache",
    "workload_fingerprint",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepWorkload",
    "run_sweep",
]
