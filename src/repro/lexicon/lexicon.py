"""Pronunciation lexicon: word ids and their phone sequences (feeds the
Section II L transducer).

The reproduction has no access to a real 125k-word dictionary, so
:func:`generate_lexicon` synthesises one: phonotactically plausible
pronunciations (alternating consonant/vowel clusters) with a realistic
length distribution.  Word ids start at 1 -- id 0 is epsilon in the WFST
output-label space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.lexicon.phones import PhoneSet

_VOWELS = (
    "aa", "ae", "ah", "ao", "aw", "ay", "eh", "er", "ey", "ih",
    "iy", "ow", "oy", "uh", "uw",
)


@dataclass(frozen=True)
class Lexicon:
    """An immutable word -> pronunciation table.

    Attributes:
        phones: the phone inventory the pronunciations are drawn from.
        words: word symbols; ``words[i]`` has word id ``i + 1``.
        pronunciations: ``pronunciations[i]`` is the phone-id tuple of word
            id ``i + 1``.
    """

    phones: PhoneSet
    words: Tuple[str, ...]
    pronunciations: Tuple[Tuple[int, ...], ...]

    @property
    def vocab_size(self) -> int:
        return len(self.words)

    def word_id(self, word: str) -> int:
        try:
            return self.words.index(word) + 1
        except ValueError:
            raise ConfigError(f"unknown word: {word!r}") from None

    def word_of(self, word_id: int) -> str:
        if not 1 <= word_id <= len(self.words):
            raise ConfigError(f"word id out of range: {word_id}")
        return self.words[word_id - 1]

    def pronunciation(self, word_id: int) -> Tuple[int, ...]:
        if not 1 <= word_id <= len(self.pronunciations):
            raise ConfigError(f"word id out of range: {word_id}")
        return self.pronunciations[word_id - 1]

    def word_ids(self) -> List[int]:
        return list(range(1, len(self.words) + 1))


def generate_lexicon(
    vocab_size: int,
    seed: int = 0,
    min_phones: int = 2,
    max_phones: int = 8,
    phones: PhoneSet = None,
) -> Lexicon:
    """Generate a synthetic lexicon of ``vocab_size`` distinct words.

    Pronunciations alternate consonants and vowels (a crude syllable model)
    and are guaranteed unique, which keeps the lexicon transducer
    deterministic enough for the decoder to settle word identities.
    """
    if vocab_size < 1:
        raise ConfigError("vocab_size must be >= 1")
    if not 1 <= min_phones <= max_phones:
        raise ConfigError("need 1 <= min_phones <= max_phones")

    phone_set = phones if phones is not None else PhoneSet()
    rng = make_rng(seed, "lexicon")

    vowel_ids = [phone_set.id_of(v) for v in _VOWELS if v in phone_set.symbols()]
    consonant_ids = [
        i for i in phone_set.non_silence_ids() if i not in set(vowel_ids)
    ]
    if not vowel_ids or not consonant_ids:
        raise ConfigError("phone set must contain both vowels and consonants")

    seen: Dict[Tuple[int, ...], int] = {}
    words: List[str] = []
    prons: List[Tuple[int, ...]] = []
    attempts = 0
    max_attempts = vocab_size * 200
    while len(words) < vocab_size:
        attempts += 1
        if attempts > max_attempts:
            raise ConfigError(
                "could not generate enough unique pronunciations; "
                "increase max_phones or phone inventory"
            )
        length = int(rng.integers(min_phones, max_phones + 1))
        start_with_vowel = bool(rng.integers(0, 2))
        pron: List[int] = []
        for k in range(length):
            use_vowel = (k % 2 == 0) == start_with_vowel
            pool = vowel_ids if use_vowel else consonant_ids
            pron.append(int(rng.choice(pool)))
        key = tuple(pron)
        if key in seen:
            continue
        seen[key] = len(words)
        words.append("w%05d" % len(words))
        prons.append(key)

    return Lexicon(phone_set, tuple(words), tuple(prons))
