"""Phone inventory (the label alphabet of the Section II decoding graph's
input side and of the DNN's output).

A compact English-like phone set (ARPAbet-style symbols).  Phone ids start
at 1 -- id 0 is reserved for epsilon in the WFST label space.  The DNN
acoustic model emits one posterior per phone, so the phone id doubles as the
column index into each frame's acoustic-likelihood vector (the accelerator's
Acoustic Likelihood Buffer is indexed the same way).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigError

#: ARPAbet-like inventory: vowels, stops, fricatives, nasals, liquids.
DEFAULT_PHONES: Tuple[str, ...] = (
    "aa", "ae", "ah", "ao", "aw", "ay", "eh", "er", "ey", "ih",
    "iy", "ow", "oy", "uh", "uw",
    "b", "ch", "d", "dh", "f", "g", "hh", "jh", "k", "l",
    "m", "n", "ng", "p", "r", "s", "sh", "t", "th", "v",
    "w", "y", "z", "zh",
)

#: Dedicated silence phone, always present (id = last).
SILENCE_PHONE: str = "sil"


class PhoneSet:
    """Bidirectional mapping between phone symbols and integer ids."""

    def __init__(self, phones: Sequence[str] = DEFAULT_PHONES) -> None:
        symbols = list(phones)
        if SILENCE_PHONE not in symbols:
            symbols.append(SILENCE_PHONE)
        if len(set(symbols)) != len(symbols):
            raise ConfigError("duplicate phone symbols in inventory")
        self._symbols: List[str] = symbols
        self._ids: Dict[str, int] = {p: i + 1 for i, p in enumerate(symbols)}

    @property
    def num_phones(self) -> int:
        """Number of phones (ids run 1..num_phones)."""
        return len(self._symbols)

    @property
    def silence_id(self) -> int:
        return self._ids[SILENCE_PHONE]

    def id_of(self, symbol: str) -> int:
        if symbol not in self._ids:
            raise ConfigError(f"unknown phone symbol: {symbol!r}")
        return self._ids[symbol]

    def symbol_of(self, phone_id: int) -> str:
        if not 1 <= phone_id <= len(self._symbols):
            raise ConfigError(f"phone id out of range: {phone_id}")
        return self._symbols[phone_id - 1]

    def symbols(self) -> List[str]:
        return list(self._symbols)

    def ids(self) -> List[int]:
        return list(range(1, len(self._symbols) + 1))

    def non_silence_ids(self) -> List[int]:
        sil = self.silence_id
        return [i for i in self.ids() if i != sil]
