"""Lexicon transducer (L): phone sequences -> word sequences (paper,
Section II -- the L of the composed L ∘ G decoding graph).

The classic construction: a root state with one linear phone chain per word.
The word label is emitted on the first phone arc (early emission keeps
composition small); the chain returns to the root through an epsilon arc so
the transducer accepts any word sequence.  Optional silence can be consumed
between words via a self-loop on the root.

Each phone state carries a self-loop on the same phone -- the single-state
HMM topology that lets a phone span multiple 10 ms frames.  In a full Kaldi
HCLG this duration modelling lives in the H transducer; folding it into L
keeps the composed graph structure identical from the decoder's point of
view (states, emitting arcs, epsilon arcs) without a separate H level.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigError
from repro.common.logmath import from_prob
from repro.lexicon.lexicon import Lexicon
from repro.wfst.fst import EPSILON, Fst


def build_lexicon_fst(
    lexicon: Lexicon,
    silence_prob: float = 0.2,
    self_loop_prob: float = 0.8,
) -> Fst:
    """Build the L transducer for ``lexicon``.

    Args:
        lexicon: the pronunciation table.
        silence_prob: probability of an optional silence phone between
            words; 0 disables the silence loop.
        self_loop_prob: probability of staying in a phone for another frame
            (mean duration = 1 / (1 - p) frames); 0 disables self-loops.

    Returns:
        A mutable FST with phone input labels and word output labels.
    """
    if not 0.0 <= silence_prob < 1.0:
        raise ConfigError("silence_prob must be in [0, 1)")
    if not 0.0 <= self_loop_prob < 1.0:
        raise ConfigError("self_loop_prob must be in [0, 1)")

    loop_weight = from_prob(self_loop_prob) if self_loop_prob > 0 else None
    exit_weight = (
        math.log(1.0 - self_loop_prob) if self_loop_prob > 0 else 0.0
    )

    fst = Fst()
    root = fst.add_state()
    fst.set_start(root)
    fst.set_final(root, 0.0)

    if silence_prob > 0.0:
        sil = lexicon.phones.silence_id
        # Enter a silence segment, dwell on it, then return to the root.
        sil_state = fst.add_state()
        fst.add_arc(root, sil, EPSILON, from_prob(silence_prob), sil_state)
        if loop_weight is not None:
            fst.add_arc(sil_state, sil, EPSILON, loop_weight, sil_state)
        fst.add_arc(sil_state, EPSILON, EPSILON, exit_weight, root)

    for word_id in lexicon.word_ids():
        pron = lexicon.pronunciation(word_id)
        prev = root
        for k, phone in enumerate(pron):
            olabel = word_id if k == 0 else EPSILON
            # Entering a phone costs the exit of the previous one; the
            # self-loop on the destination models the dwell time.
            weight = 0.0 if k == 0 else exit_weight
            dest = fst.add_state()
            fst.add_arc(prev, phone, olabel, weight, dest)
            if loop_weight is not None:
                fst.add_arc(dest, phone, EPSILON, loop_weight, dest)
            if k == len(pron) - 1:
                # Return to the root without consuming input.
                fst.add_arc(dest, EPSILON, EPSILON, exit_weight, root)
            prev = dest

    return fst
