"""Pronunciation lexicon substrate: phone inventory, lexicon, L transducer
(the L half of the Section II decoding graph, composed with G into the
accelerator's dataset)."""

from repro.lexicon.phones import PhoneSet, DEFAULT_PHONES, SILENCE_PHONE
from repro.lexicon.lexicon import Lexicon, generate_lexicon
from repro.lexicon.lexicon_fst import build_lexicon_fst

__all__ = [
    "PhoneSet",
    "DEFAULT_PHONES",
    "SILENCE_PHONE",
    "Lexicon",
    "generate_lexicon",
    "build_lexicon_fst",
]
