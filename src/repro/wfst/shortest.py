"""Single-source shortest-distance over the max/plus semiring (WFST
toolkit support for the Section II Viterbi formulation; also powers
lattice N-best heuristics).

``shortest_distance`` computes, for every state, the likelihood of the
best label-sequence-agnostic path from the start state (or to a final
state with ``reverse=True``).  Log-probability weights are non-positive,
so no positive cycles exist and the relaxation converges.

Uses: search-space diagnostics (how much of the graph is reachable within
a budget), lattice-style pruning bounds, and test oracles -- the beam
decoder's best path can never beat ``forward[s] + backward[s]`` for any
state on it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

import numpy as np

from repro.common.errors import GraphError
from repro.common.logmath import LOG_ZERO
from repro.wfst.layout import CompiledWfst


def shortest_distance(
    graph: CompiledWfst,
    reverse: bool = False,
    max_relaxations: int = 50_000_000,
) -> np.ndarray:
    """Best-path log likelihood per state.

    Args:
        graph: the compiled WFST.
        reverse: if False, distances *from the start state*; if True,
            distances *to the best final state* (including its final
            weight).
        max_relaxations: safety bound for adversarial graphs.

    Returns:
        float64 array of length ``num_states`` (``LOG_ZERO`` where
        unreachable).
    """
    n = graph.num_states
    dist = np.full(n, LOG_ZERO)
    on_queue = np.zeros(n, dtype=bool)
    queue: Deque[int] = deque()

    if reverse:
        preds = _predecessors(graph)
        finals = graph.final_states()
        for s in finals:
            dist[s] = graph.final_weight(s)
            queue.append(s)
            on_queue[s] = True
    else:
        dist[graph.start] = 0.0
        queue.append(graph.start)
        on_queue[graph.start] = True

    relaxations = 0
    while queue:
        s = queue.popleft()
        on_queue[s] = False
        base = dist[s]
        if reverse:
            edges = preds[s]
        else:
            first, n_non_eps, n_eps = graph.arc_range(s)
            edges = [
                (int(graph.arc_dest[a]), float(graph.arc_weight[a]))
                for a in range(first, first + n_non_eps + n_eps)
            ]
        for dest, weight in edges:
            relaxations += 1
            if relaxations > max_relaxations:
                raise GraphError("shortest_distance relaxation budget exceeded")
            new = base + weight
            if new > dist[dest]:
                dist[dest] = new
                if not on_queue[dest]:
                    queue.append(dest)
                    on_queue[dest] = True
    return dist


def best_complete_path_score(graph: CompiledWfst) -> float:
    """Likelihood of the best start-to-final path (acoustics ignored)."""
    dist = shortest_distance(graph)
    best = LOG_ZERO
    for s in graph.final_states():
        total = dist[s] + graph.final_weight(s)
        if total > best:
            best = total
    return float(best)


def _predecessors(graph: CompiledWfst) -> List[List]:
    """Per-state list of (source, weight) incoming edges."""
    preds: List[List] = [[] for _ in range(graph.num_states)]
    for s in range(graph.num_states):
        first, n_non_eps, n_eps = graph.arc_range(s)
        for a in range(first, first + n_non_eps + n_eps):
            preds[int(graph.arc_dest[a])].append(
                (s, float(graph.arc_weight[a]))
            )
    return preds
