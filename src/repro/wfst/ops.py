"""Graph operations on mutable WFSTs.

Implements the operations the decoding-graph builder needs: composition
(L ∘ G), connection (trimming unreachable / dead states), arc sorting, and a
check that epsilon arcs cannot loop forever (the decoders process epsilon
closures per frame and require epsilon-acyclicity, which real decoding graphs
satisfy).

Every operation here is *pure*: it returns a new :class:`~repro.wfst.fst.Fst`
(or, for :func:`check_epsilon_acyclic`, returns nothing) and never mutates
its argument.  Mutation-style helpers live on :class:`~repro.wfst.fst.Fst`
itself and carry mutator names (``replace_arcs``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.common.errors import GraphError
from repro.wfst.fst import EPSILON, Arc, Fst
from repro.wfst.semiring import LogProbSemiring


def compose(left: Fst, right: Fst) -> Fst:
    """Compose two transducers: output labels of ``left`` feed inputs of ``right``.

    Uses the standard epsilon-matching construction with an epsilon filter
    simplification: an epsilon output on the left may advance the left side
    alone, and an epsilon input on the right may advance the right side
    alone.  This can create redundant epsilon paths but never changes the
    best-path semantics under the max/plus semiring, which is all the decoder
    uses.
    """
    out = Fst()
    pair_to_state: Dict[Tuple[int, int], int] = {}
    queue: deque = deque()

    def get_state(ls: int, rs: int) -> int:
        key = (ls, rs)
        if key not in pair_to_state:
            pair_to_state[key] = out.add_state()
            queue.append(key)
        return pair_to_state[key]

    start = get_state(left.start, right.start)
    out.set_start(start)

    while queue:
        ls, rs = queue.popleft()
        src = pair_to_state[(ls, rs)]

        lw = left.final_weight(ls)
        rw = right.final_weight(rs)
        if left.is_final(ls) and right.is_final(rs):
            out.set_final(src, LogProbSemiring.times(lw, rw))

        for la in left.arcs(ls):
            if la.olabel == EPSILON:
                # Left side advances alone.
                dest = get_state(la.dest, rs)
                out.add_arc(src, la.ilabel, EPSILON, la.weight, dest)
            else:
                for ra in right.arcs(rs):
                    if ra.ilabel == la.olabel:
                        dest = get_state(la.dest, ra.dest)
                        weight = LogProbSemiring.times(la.weight, ra.weight)
                        out.add_arc(src, la.ilabel, ra.olabel, weight, dest)
        for ra in right.arcs(rs):
            if ra.ilabel == EPSILON:
                # Right side advances alone.
                dest = get_state(ls, ra.dest)
                out.add_arc(src, EPSILON, ra.olabel, ra.weight, dest)

    return connect(out)


def connect(fst: Fst) -> Fst:
    """Trim states that are unreachable from the start or cannot reach a final."""
    if not fst.has_start:
        raise GraphError("cannot connect an FST without a start state")

    forward = _reachable_forward(fst)
    backward = _reachable_backward(fst)
    keep = forward & backward
    if fst.start not in keep:
        raise GraphError("start state cannot reach any final state")

    remap: Dict[int, int] = {}
    out = Fst()
    for s in sorted(keep):
        remap[s] = out.add_state()
    out.set_start(remap[fst.start])
    for s in sorted(keep):
        if fst.is_final(s):
            out.set_final(remap[s], fst.final_weight(s))
        for arc in fst.arcs(s):
            if arc.dest in keep:
                out.add_arc(
                    remap[s], arc.ilabel, arc.olabel, arc.weight, remap[arc.dest]
                )
    return out


def arc_sort_key(arc: Arc) -> Tuple[bool, int, int, int]:
    """The canonical arc ordering: non-epsilon first, then by labels.

    Shared by :func:`arcsort` and the packed-layout builder
    (:meth:`repro.wfst.layout.CompiledWfst.from_fst`) so both produce the
    same order.
    """
    return (arc.is_epsilon, arc.ilabel, arc.olabel, arc.dest)


def arcsort(fst: Fst) -> Fst:
    """Return a copy of ``fst`` with each state's arcs sorted.

    Non-epsilon arcs come first, then input label: the memory layout
    requirement of the accelerator (paper, Section III): "the non-epsilon
    arcs are stored first, followed by the epsilon arcs".  Like every
    operation in this module the input is left untouched.
    """
    out = Fst()
    out.add_states(fst.num_states)
    if fst.has_start:
        out.set_start(fst.start)
    for s in fst.states():
        if fst.is_final(s):
            out.set_final(s, fst.final_weight(s))
        for arc in sorted(fst.arcs(s), key=arc_sort_key):
            out.add_arc(s, arc.ilabel, arc.olabel, arc.weight, arc.dest)
    return out


def check_epsilon_acyclic(fst: Fst) -> None:
    """Raise :class:`GraphError` if the epsilon subgraph contains a cycle.

    A pure check, not a transformation: decoding graphs built by this
    library are epsilon-acyclic by construction, so instead of rewriting
    weights (full epsilon removal, :mod:`repro.wfst.epsilon_removal`) we
    verify the property and fail loudly when violated.
    """
    color: Dict[int, int] = {}  # 0 = visiting, 1 = done

    for root in fst.states():
        if root in color:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        while stack:
            node, idx = stack.pop()
            if idx == 0:
                if color.get(node) == 1:
                    continue
                color[node] = 0
            eps_dests = [a.dest for a in fst.arcs(node) if a.is_epsilon]
            if idx < len(eps_dests):
                stack.append((node, idx + 1))
                child = eps_dests[idx]
                state = color.get(child)
                if state == 0:
                    raise GraphError(
                        f"epsilon cycle detected through state {child}"
                    )
                if state is None:
                    stack.append((child, 0))
            else:
                color[node] = 1


def _reachable_forward(fst: Fst) -> set:
    seen = {fst.start}
    stack = [fst.start]
    while stack:
        s = stack.pop()
        for arc in fst.arcs(s):
            if arc.dest not in seen:
                seen.add(arc.dest)
                stack.append(arc.dest)
    return seen


def _reachable_backward(fst: Fst) -> set:
    preds: Dict[int, List[int]] = {s: [] for s in fst.states()}
    finals: List[int] = []
    for s in fst.states():
        if fst.is_final(s):
            finals.append(s)
        for arc in fst.arcs(s):
            preds[arc.dest].append(s)
    seen = set(finals)
    stack = list(finals)
    while stack:
        s = stack.pop()
        for p in preds[s]:
            if p not in seen:
                seen.add(p)
                stack.append(p)
    return seen
