"""Arc-count-sorted WFST layout (paper, Section IV-B).

The bandwidth-saving technique re-orders states so that all states with at
most N outgoing arcs come first, grouped and sorted by arc count.  Inside the
group of states with exactly ``k`` arcs, arc records are laid out densely, so
the first-arc index of a state is a linear function of its state index:

    ``arc_index = state_index * k + offset[k]``

The hardware realises this with N parallel comparators against the running
group boundaries (S1, S1+S2, ...) plus a 16-entry offset table, and thereby
skips the state fetch entirely for those states.  States with more than N
arcs keep the indirect 64-bit state record.

:class:`SortedWfst` produces the re-ordered :class:`CompiledWfst` together
with the comparator/offset metadata, and :meth:`SortedWfst.direct_lookup`
models the comparator bank: it returns the arc range without touching the
states array whenever the state is in the sorted region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import GraphError
from repro.wfst.layout import CompiledWfst, StateRecord

#: Paper's operating point: direct arc computation for states with <= 16 arcs.
DEFAULT_MAX_DIRECT_ARCS: int = 16


@dataclass(frozen=True)
class DirectLookupTables:
    """Comparator boundaries and offset table for the State Issuer.

    Attributes:
        max_direct_arcs: N, the largest out-degree handled directly.
        boundaries: cumulative state-count boundaries; ``boundaries[k-1]`` is
            the index of the first state with more than ``k`` arcs among the
            sorted groups (the values S1, S1+S2, ... fed to the comparators).
        group_start: first state index of each group ``k`` (1-based key).
        offsets: per-group additive term so that
            ``arc = state * k + offsets[k]``.
    """

    max_direct_arcs: int
    boundaries: Tuple[int, ...]
    group_start: Dict[int, int]
    offsets: Dict[int, int]


class SortedWfst:
    """A decoding graph in the bandwidth-optimised sorted layout."""

    def __init__(
        self,
        graph: CompiledWfst,
        tables: DirectLookupTables,
        old_to_new: np.ndarray,
    ) -> None:
        self.graph = graph
        self.tables = tables
        self.old_to_new = old_to_new

    @property
    def max_direct_arcs(self) -> int:
        return self.tables.max_direct_arcs

    def direct_lookup(self, state: int) -> Optional[StateRecord]:
        """Model the comparator bank of the modified State Issuer.

        Returns the state record computed arithmetically when ``state`` lies
        in the sorted region (out-degree <= N), or ``None`` when the
        indirect state fetch is required.  The returned record's epsilon
        split is not known without reading the arcs, so ``num_non_eps``
        carries the total count and ``num_eps`` is zero; the Arc Issuer
        discovers epsilon arcs from the arc records themselves (ilabel 0).
        """
        boundaries = self.tables.boundaries
        if not boundaries or state >= boundaries[-1]:
            return None
        # The comparator bank: find the first boundary exceeding the index.
        for k, bound in enumerate(boundaries, start=1):
            if state < bound:
                first_arc = state * k + self.tables.offsets[k]
                return StateRecord(first_arc, k, 0)
        return None

    def covered_state_fraction(self) -> float:
        """Static fraction of states whose arc index is directly computable."""
        if self.graph.num_states == 0:
            return 0.0
        if not self.tables.boundaries:
            return 0.0
        return self.tables.boundaries[-1] / self.graph.num_states


def sort_states_by_arc_count(
    graph: CompiledWfst,
    max_direct_arcs: int = DEFAULT_MAX_DIRECT_ARCS,
) -> SortedWfst:
    """Re-order a compiled graph into the sorted layout.

    States with out-degree in ``1..max_direct_arcs`` are moved to the front,
    grouped by out-degree ascending; remaining states (including out-degree
    zero, which needs no arc lookup but would corrupt the dense grouping)
    follow in original order.
    """
    if max_direct_arcs < 1:
        raise GraphError("max_direct_arcs must be >= 1")

    n = graph.num_states
    degrees = np.array([graph.out_degree(s) for s in range(n)], dtype=np.int64)

    groups: Dict[int, List[int]] = {k: [] for k in range(1, max_direct_arcs + 1)}
    rest: List[int] = []
    for s in range(n):
        d = int(degrees[s])
        if 1 <= d <= max_direct_arcs:
            groups[d].append(s)
        else:
            rest.append(s)

    new_order: List[int] = []
    boundaries: List[int] = []
    group_start: Dict[int, int] = {}
    for k in range(1, max_direct_arcs + 1):
        group_start[k] = len(new_order)
        new_order.extend(groups[k])
        boundaries.append(len(new_order))
    new_order.extend(rest)

    old_to_new = np.zeros(n, dtype=np.int64)
    for new_id, old_id in enumerate(new_order):
        old_to_new[old_id] = new_id

    # Rebuild arc arrays in the new state order; arcs of one state stay
    # contiguous and in their original relative order.
    n_arcs = graph.num_arcs
    arc_dest = np.zeros(n_arcs, dtype=np.uint32)
    arc_weight = np.zeros(n_arcs, dtype=np.float32)
    arc_ilabel = np.zeros(n_arcs, dtype=np.uint32)
    arc_olabel = np.zeros(n_arcs, dtype=np.uint32)
    states_packed = np.zeros(n, dtype=np.uint64)
    final_weights = np.zeros(n, dtype=np.float64)

    offsets: Dict[int, int] = {}
    cursor = 0
    for new_id, old_id in enumerate(new_order):
        first, n_non_eps, n_eps = graph.arc_range(old_id)
        count = n_non_eps + n_eps
        states_packed[new_id] = CompiledWfst.pack_state(
            StateRecord(cursor, n_non_eps, n_eps)
        )
        final_weights[new_id] = graph.final_weights[old_id]
        src = slice(first, first + count)
        dst = slice(cursor, cursor + count)
        arc_dest[dst] = old_to_new[graph.arc_dest[src].astype(np.int64)]
        arc_weight[dst] = graph.arc_weight[src]
        arc_ilabel[dst] = graph.arc_ilabel[src]
        arc_olabel[dst] = graph.arc_olabel[src]
        cursor += count

    # Derive the offset table: within group k the states are dense, so the
    # first arc of the group anchors the linear map.
    for k in range(1, max_direct_arcs + 1):
        start_state = group_start[k]
        group_size = len(groups[k])
        if group_size == 0:
            # Keep the linear map consistent with neighbouring groups by
            # anchoring at where the group would begin.
            anchor_arc = _first_arc_at(states_packed, start_state, n)
            offsets[k] = anchor_arc - start_state * k
            continue
        rec = CompiledWfst.unpack_state(states_packed[start_state])
        offsets[k] = rec.first_arc - start_state * k

    sorted_graph = CompiledWfst(
        start=int(old_to_new[graph.start]),
        states_packed=states_packed,
        arc_dest=arc_dest,
        arc_weight=arc_weight,
        arc_ilabel=arc_ilabel,
        arc_olabel=arc_olabel,
        final_weights=final_weights,
    )
    tables = DirectLookupTables(
        max_direct_arcs=max_direct_arcs,
        boundaries=tuple(boundaries),
        group_start=group_start,
        offsets=offsets,
    )
    return SortedWfst(sorted_graph, tables, old_to_new)


def _first_arc_at(states_packed: np.ndarray, state: int, n_states: int) -> int:
    """First-arc index at ``state``, or total arc count when past the end."""
    if state < n_states:
        return CompiledWfst.unpack_state(states_packed[state]).first_arc
    if n_states == 0:
        return 0
    rec = CompiledWfst.unpack_state(states_packed[n_states - 1])
    return rec.first_arc + rec.num_arcs
