"""Serialisation of compiled decoding graphs (the Section III dataset the
accelerator walks, persisted in its packed binary layout).

Graphs are stored as ``.npz`` archives holding the packed arrays unchanged,
so a load/save round trip is bit-exact.
"""

from __future__ import annotations

import os

import numpy as np

from repro.common.errors import GraphError
from repro.wfst.layout import CompiledWfst

_FORMAT_VERSION = 1


def save_wfst(graph: CompiledWfst, path: str) -> None:
    """Write a compiled graph to ``path`` (npz format)."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        start=np.int64(graph.start),
        states_packed=graph.states_packed,
        arc_dest=graph.arc_dest,
        arc_weight=graph.arc_weight,
        arc_ilabel=graph.arc_ilabel,
        arc_olabel=graph.arc_olabel,
        final_weights=graph.final_weights,
    )


def load_wfst(path: str) -> CompiledWfst:
    """Load a compiled graph previously written by :func:`save_wfst`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise GraphError(f"unsupported graph format version {version}")
        return CompiledWfst(
            start=int(data["start"]),
            states_packed=data["states_packed"].copy(),
            arc_dest=data["arc_dest"].copy(),
            arc_weight=data["arc_weight"].copy(),
            arc_ilabel=data["arc_ilabel"].copy(),
            arc_olabel=data["arc_olabel"].copy(),
            final_weights=data["final_weights"].copy(),
        )
