"""Serialisation of compiled decoding graphs (the Section III dataset the
accelerator walks, persisted in its packed binary layout).

Three on-disk formats live here, all holding the packed arrays unchanged
so a load/save round trip is bit-exact:

* **plain graphs** (:func:`save_wfst` / :func:`load_wfst`) -- just the
  packed arrays plus a format version, in one ``.npz`` archive;
* **graph bundles** (:func:`save_graph_bundle` / :func:`load_graph_bundle`)
  -- a plain graph extended with compiler provenance: the recipe that
  produced it, its content fingerprint and the per-pass statistics.  This
  is the artifact format of the content-addressed graph cache
  (:mod:`repro.graph.cache`);
* **mmap layouts** (:func:`save_graph_mmap` / :func:`load_graph_mmap`) --
  a directory of uncompressed ``.npy`` files, one per packed array, plus a
  ``meta.json``.  Because nothing is compressed, every worker process of
  the serving tier (:mod:`repro.system.tier`) can ``np.load(...,
  mmap_mode="r")`` the arrays, so the OS page cache shares one physical
  copy of the graph across the whole worker pool.

All entry points accept ``str`` or :class:`pathlib.Path` and raise
:class:`~repro.common.errors.GraphError` on missing files or format-version
mismatches, so callers handle one exception type for every load failure.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.common.errors import GraphError
from repro.wfst.layout import CompiledWfst

PathLike = Union[str, Path]

_FORMAT_VERSION = 1
#: Version of the bundle (graph + provenance) archive layout.
BUNDLE_FORMAT_VERSION = 1


def _resolve(path: PathLike) -> str:
    """Normalise to ``str``, appending ``.npz`` when only that file exists."""
    path = os.fspath(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    if not os.path.exists(path):
        raise GraphError(f"graph file not found: {path!r}")
    return path


def _graph_payload(graph: CompiledWfst) -> Dict[str, np.ndarray]:
    """The packed arrays, as stored in both archive formats."""
    return dict(
        start=np.int64(graph.start),
        states_packed=graph.states_packed,
        arc_dest=graph.arc_dest,
        arc_weight=graph.arc_weight,
        arc_ilabel=graph.arc_ilabel,
        arc_olabel=graph.arc_olabel,
        final_weights=graph.final_weights,
    )


def _graph_from_archive(data: Mapping[str, np.ndarray]) -> CompiledWfst:
    return CompiledWfst(
        start=int(data["start"]),
        states_packed=data["states_packed"].copy(),
        arc_dest=data["arc_dest"].copy(),
        arc_weight=data["arc_weight"].copy(),
        arc_ilabel=data["arc_ilabel"].copy(),
        arc_olabel=data["arc_olabel"].copy(),
        final_weights=data["final_weights"].copy(),
    )


def save_wfst(graph: CompiledWfst, path: PathLike) -> None:
    """Write a compiled graph to ``path`` (npz format)."""
    np.savez_compressed(
        os.fspath(path),
        version=np.int64(_FORMAT_VERSION),
        **_graph_payload(graph),
    )


def load_wfst(path: PathLike) -> CompiledWfst:
    """Load a compiled graph previously written by :func:`save_wfst`.

    Raises:
        GraphError: when the file does not exist or was written by an
            unsupported format version.
    """
    with np.load(_resolve(path)) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise GraphError(f"unsupported graph format version {version}")
        return _graph_from_archive(data)


def save_graph_bundle(
    graph: CompiledWfst,
    path: PathLike,
    *,
    fingerprint: str,
    recipe: Dict[str, Any],
    passes: List[Dict[str, Any]],
) -> None:
    """Write a graph artifact bundle: packed arrays + compiler provenance.

    ``recipe`` and ``passes`` are JSON-serialisable dicts/lists (the graph
    compiler passes the recipe's field dict and the per-pass statistics).
    """
    meta = json.dumps(
        {"fingerprint": fingerprint, "recipe": recipe, "passes": passes},
        sort_keys=True,
    )
    np.savez_compressed(
        os.fspath(path),
        bundle_version=np.int64(BUNDLE_FORMAT_VERSION),
        meta=np.frombuffer(meta.encode(), dtype=np.uint8),
        **_graph_payload(graph),
    )


def load_graph_bundle(path: PathLike) -> Tuple[CompiledWfst, Dict]:
    """Load a bundle written by :func:`save_graph_bundle`.

    Returns the graph (with its stored content fingerprint already
    stamped, so it is never recomputed) and the provenance dict
    (``fingerprint`` / ``recipe`` / ``passes``).

    Raises:
        GraphError: on a missing file, a non-bundle archive, or a bundle
            format version this build does not support.
    """
    resolved = _resolve(path)
    with np.load(resolved) as data:
        if "bundle_version" not in data:
            raise GraphError(f"{resolved!r} is not a graph bundle")
        version = int(data["bundle_version"])
        if version != BUNDLE_FORMAT_VERSION:
            raise GraphError(f"unsupported graph bundle version {version}")
        meta = json.loads(bytes(data["meta"]).decode())
        graph = _graph_from_archive(data)
    graph._fingerprint = meta["fingerprint"]
    return graph, meta


def load_any_graph(path: PathLike) -> CompiledWfst:
    """Load a plain graph, a bundle, or an mmap layout, whichever ``path``
    holds (directories are treated as mmap layouts)."""
    if os.path.isdir(os.fspath(path)):
        return load_graph_mmap(path)
    resolved = _resolve(path)
    with np.load(resolved) as data:
        is_bundle = "bundle_version" in data
    if is_bundle:
        graph, _ = load_graph_bundle(resolved)
        return graph
    return load_wfst(resolved)


# ----------------------------------------------------------------------
# Memory-mapped layout (the serving tier's shared-graph format)
# ----------------------------------------------------------------------
#: Version of the mmap directory layout.
MMAP_FORMAT_VERSION = 1

_MMAP_META = "meta.json"
_MMAP_ARRAYS = (
    "states_packed",
    "arc_dest",
    "arc_weight",
    "arc_ilabel",
    "arc_olabel",
    "final_weights",
)


def save_graph_mmap(
    graph: CompiledWfst,
    directory: PathLike,
    *,
    fingerprint: Optional[str] = None,
) -> str:
    """Materialise ``graph`` as an mmap layout directory; returns its path.

    Arrays are written as uncompressed ``.npy`` files so they can be
    memory-mapped read-only by any number of processes.  The write is
    atomic (temp directory + rename): a crashed or concurrent writer can
    never leave a torn layout at the target path, and if another process
    materialised the same directory first, its copy wins and the
    temporary one is discarded (content-addressed layouts are
    interchangeable).
    """
    directory = os.fspath(directory)
    if _valid_mmap_dir(directory):
        return directory
    parent = os.path.dirname(os.path.abspath(directory))
    os.makedirs(parent, exist_ok=True)
    tmp = f"{directory}.{os.getpid()}.tmp"
    os.makedirs(tmp, exist_ok=True)
    try:
        for name in _MMAP_ARRAYS:
            np.save(
                os.path.join(tmp, f"{name}.npy"),
                np.ascontiguousarray(getattr(graph, name)),
            )
        meta = {
            "version": MMAP_FORMAT_VERSION,
            "start": graph.start,
            "fingerprint": fingerprint or graph.fingerprint(),
        }
        with open(os.path.join(tmp, _MMAP_META), "w") as fh:
            json.dump(meta, fh, sort_keys=True)
        try:
            os.rename(tmp, directory)
        except OSError:
            if not _valid_mmap_dir(directory):
                raise
    finally:
        if os.path.isdir(tmp):
            shutil.rmtree(tmp, ignore_errors=True)
    return directory


def _valid_mmap_dir(directory: str) -> bool:
    return os.path.exists(os.path.join(directory, _MMAP_META))


def load_graph_mmap(directory: PathLike) -> CompiledWfst:
    """Load an mmap layout written by :func:`save_graph_mmap`.

    The returned graph's arrays are read-only memory maps: constructing it
    touches no array data, and concurrent loaders share the OS page cache
    instead of each holding a private copy.

    Raises:
        GraphError: on a missing or torn layout, or one written by an
            unsupported format version.
    """
    directory = os.fspath(directory)
    meta_path = os.path.join(directory, _MMAP_META)
    if not os.path.exists(meta_path):
        raise GraphError(f"graph mmap layout not found: {directory!r}")
    try:
        with open(meta_path) as fh:
            meta = json.load(fh)
    except (OSError, ValueError) as exc:
        raise GraphError(f"unreadable mmap layout meta: {exc}") from exc
    version = meta.get("version")
    if version != MMAP_FORMAT_VERSION:
        raise GraphError(f"unsupported graph mmap layout version {version}")
    arrays = {}
    for name in _MMAP_ARRAYS:
        path = os.path.join(directory, f"{name}.npy")
        try:
            arrays[name] = np.load(path, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise GraphError(
                f"torn graph mmap layout {directory!r}: {exc}"
            ) from exc
    graph = CompiledWfst(start=int(meta["start"]), **arrays)
    graph._fingerprint = meta.get("fingerprint")
    return graph
