"""Mutable weighted finite-state transducer.

The mutable :class:`Fst` is the construction-time representation: the
lexicon/grammar builders create and compose these, and the result is then
frozen into the packed array layout (:mod:`repro.wfst.layout`) that the
decoders and the accelerator simulator read.

Weights are log probabilities (see :mod:`repro.wfst.semiring`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.common.errors import GraphError
from repro.common.logmath import LOG_ZERO

#: Reserved label id for epsilon (no input consumed / no output emitted).
EPSILON: int = 0


@dataclass(frozen=True)
class Arc:
    """A single WFST transition.

    Attributes:
        ilabel: input label (phoneme id), ``EPSILON`` for epsilon arcs.
        olabel: output label (word id), ``EPSILON`` when no word is emitted.
        weight: transition log probability.
        dest: destination state id.
    """

    ilabel: int
    olabel: int
    weight: float
    dest: int

    @property
    def is_epsilon(self) -> bool:
        """True when this arc consumes no input label."""
        return self.ilabel == EPSILON


@dataclass
class _State:
    arcs: List[Arc] = field(default_factory=list)
    final_weight: float = LOG_ZERO


class Fst:
    """A mutable WFST with a single start state and weighted final states."""

    def __init__(self) -> None:
        self._states: List[_State] = []
        self._start: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_state(self) -> int:
        """Append a fresh state and return its id."""
        self._states.append(_State())
        return len(self._states) - 1

    def add_states(self, count: int) -> List[int]:
        """Append ``count`` fresh states and return their ids."""
        return [self.add_state() for _ in range(count)]

    def add_arc(
        self,
        src: int,
        ilabel: int,
        olabel: int,
        weight: float,
        dest: int,
    ) -> None:
        """Add an arc from ``src`` to ``dest``."""
        self._check_state(src)
        self._check_state(dest)
        if ilabel < 0 or olabel < 0:
            raise GraphError(f"labels must be non-negative: {ilabel}, {olabel}")
        self._states[src].arcs.append(Arc(ilabel, olabel, weight, dest))

    def set_start(self, state: int) -> None:
        self._check_state(state)
        self._start = state

    def set_final(self, state: int, weight: float = 0.0) -> None:
        self._check_state(state)
        self._states[state].final_weight = weight

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def start(self) -> int:
        if self._start is None:
            raise GraphError("start state has not been set")
        return self._start

    @property
    def has_start(self) -> bool:
        return self._start is not None

    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def num_arcs(self) -> int:
        return sum(len(s.arcs) for s in self._states)

    def arcs(self, state: int) -> List[Arc]:
        """All outgoing arcs of ``state`` (construction order)."""
        self._check_state(state)
        return self._states[state].arcs

    def final_weight(self, state: int) -> float:
        self._check_state(state)
        return self._states[state].final_weight

    def is_final(self, state: int) -> bool:
        return self.final_weight(state) > LOG_ZERO / 2

    def states(self) -> Iterator[int]:
        return iter(range(len(self._states)))

    def num_epsilon_arcs(self) -> int:
        """Total number of epsilon (no input label) arcs in the graph."""
        return sum(
            1 for s in self._states for a in s.arcs if a.is_epsilon
        )

    def out_degree(self, state: int) -> int:
        self._check_state(state)
        return len(self._states[state].arcs)

    # ------------------------------------------------------------------
    # Mutation helpers used by graph ops
    # ------------------------------------------------------------------
    def replace_arcs(self, state: int, arcs: Iterable[Arc]) -> None:
        """Replace the arc list of ``state`` wholesale."""
        self._check_state(state)
        self._states[state].arcs = list(arcs)

    # ------------------------------------------------------------------
    def _check_state(self, state: int) -> None:
        if not 0 <= state < len(self._states):
            raise GraphError(
                f"state {state} out of range (have {len(self._states)})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Fst(states={self.num_states}, arcs={self.num_arcs}, "
            f"start={self._start})"
        )
