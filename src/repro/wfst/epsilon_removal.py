"""Weighted epsilon removal for epsilon-acyclic WFSTs.

Folds *output-free* epsilon paths into their non-epsilon neighbours: after
removal, the only epsilon arcs left are those carrying an output label
(which cannot be folded without re-timing word emissions).  In the graphs
this library builds, epsilon arcs are LM backoffs and lexicon
return-to-root transitions -- all output-free -- so removal yields fully
epsilon-free graphs.

Epsilon-free graphs matter for the accelerator: every epsilon arc is a
second intra-frame pass through the pipeline (Section III-B), so removal
trades graph size (folded arcs are duplicated per predecessor) for
pipeline work.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.wfst.fst import EPSILON, Fst
from repro.wfst.ops import check_epsilon_acyclic, connect
from repro.wfst.semiring import LogProbSemiring


def remove_epsilons(fst: Fst) -> Fst:
    """Return an equivalent FST whose output-free epsilon arcs are folded.

    Raises:
        GraphError: if the epsilon subgraph is cyclic.
    """
    check_epsilon_acyclic(fst)

    out = Fst()
    out.add_states(fst.num_states)
    out.set_start(fst.start)

    for s in fst.states():
        closure = _free_epsilon_closure(fst, s)

        # Finality folds through output-free epsilon paths.
        best_final = fst.final_weight(s)
        for state, weight in closure.items():
            total = LogProbSemiring.times(weight, fst.final_weight(state))
            best_final = LogProbSemiring.plus(best_final, total)
        if best_final > LogProbSemiring.zero / 2:
            out.set_final(s, best_final)

        emitted = set()

        def add(ilabel: int, olabel: int, weight: float, dest: int) -> None:
            key = (ilabel, olabel, round(weight, 12), dest)
            if key in emitted:
                return
            emitted.add(key)
            out.add_arc(s, ilabel, olabel, weight, dest)

        # Arcs of s itself and of everything in its free-epsilon closure.
        sources = [(s, 0.0)] + list(closure.items())
        for state, path_weight in sources:
            for arc in fst.arcs(state):
                if arc.is_epsilon and arc.olabel == EPSILON:
                    continue  # folded into the closure
                add(
                    arc.ilabel,
                    arc.olabel,
                    path_weight + arc.weight,
                    arc.dest,
                )

    return connect(out)


def count_epsilon_arcs(fst: Fst) -> Tuple[int, int]:
    """``(output_free, output_carrying)`` epsilon-arc counts."""
    free = carrying = 0
    for s in fst.states():
        for arc in fst.arcs(s):
            if not arc.is_epsilon:
                continue
            if arc.olabel == EPSILON:
                free += 1
            else:
                carrying += 1
    return free, carrying


def _free_epsilon_closure(fst: Fst, start: int) -> Dict[int, float]:
    """Best output-free epsilon-path weight to every reachable state."""
    closure: Dict[int, float] = {}
    stack: List[Tuple[int, float]] = [
        (arc.dest, arc.weight)
        for arc in fst.arcs(start)
        if arc.is_epsilon and arc.olabel == EPSILON
    ]
    while stack:
        state, weight = stack.pop()
        if state in closure and closure[state] >= weight:
            continue
        closure[state] = weight
        for arc in fst.arcs(state):
            if arc.is_epsilon and arc.olabel == EPSILON:
                stack.append((arc.dest, weight + arc.weight))
    return closure
