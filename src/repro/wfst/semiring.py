"""Semirings for WFST weights.

Two semirings are provided:

* :class:`LogProbSemiring` -- weights are log probabilities (``<= 0``);
  ``times`` is addition in log space, ``plus`` is max (Viterbi
  approximation).  This is the semiring the paper's Equation 1 computes in,
  and the one the accelerator implements with adders and comparators.
* :class:`TropicalSemiring` -- weights are non-negative costs; ``times`` is
  addition, ``plus`` is min.  Equivalent to the log-prob semiring under
  negation; provided because decoding-graph literature (and Kaldi) speaks in
  costs.
"""

from __future__ import annotations

from repro.common.logmath import LOG_ZERO, is_log_zero


class LogProbSemiring:
    """Max/plus semiring over log probabilities."""

    zero: float = LOG_ZERO
    one: float = 0.0

    @staticmethod
    def times(a: float, b: float) -> float:
        if is_log_zero(a) or is_log_zero(b):
            return LOG_ZERO
        return a + b

    @staticmethod
    def plus(a: float, b: float) -> float:
        return a if a >= b else b

    @staticmethod
    def better(a: float, b: float) -> bool:
        """True when ``a`` is a strictly better (more likely) weight."""
        return a > b

    @staticmethod
    def is_zero(a: float) -> bool:
        return is_log_zero(a)


class TropicalSemiring:
    """Min/plus semiring over costs (negated log probabilities)."""

    zero: float = float("inf")
    one: float = 0.0

    @staticmethod
    def times(a: float, b: float) -> float:
        return a + b

    @staticmethod
    def plus(a: float, b: float) -> float:
        return a if a <= b else b

    @staticmethod
    def better(a: float, b: float) -> bool:
        return a < b

    @staticmethod
    def is_zero(a: float) -> bool:
        return a == float("inf")
