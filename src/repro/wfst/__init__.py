"""Weighted finite-state transducer (WFST) toolkit.

This subpackage is the recognition-network substrate of the reproduction:
a from-scratch WFST library covering what the paper's decoding graphs need --
construction, composition, connection, and the two packed memory layouts the
accelerator reads (baseline and arc-count-sorted, paper Sections III and
IV-B).

Labels follow ASR convention: input labels are phoneme ids, output labels are
word ids, and label ``0`` (EPSILON) marks an epsilon transition.
"""

from repro.wfst.fst import Arc, Fst, EPSILON
from repro.wfst.semiring import LogProbSemiring, TropicalSemiring
from repro.wfst.ops import compose, connect, arcsort, check_epsilon_acyclic
from repro.wfst.layout import (
    ARC_BYTES,
    STATE_BYTES,
    CompiledWfst,
    FlatLayout,
    StateRecord,
)
from repro.wfst.sorted_layout import SortedWfst, sort_states_by_arc_count
from repro.wfst.io import (
    load_any_graph,
    load_graph_bundle,
    load_graph_mmap,
    load_wfst,
    save_graph_bundle,
    save_graph_mmap,
    save_wfst,
)
from repro.wfst.shortest import best_complete_path_score, shortest_distance
from repro.wfst.epsilon_removal import count_epsilon_arcs, remove_epsilons

__all__ = [
    "Arc",
    "Fst",
    "EPSILON",
    "LogProbSemiring",
    "TropicalSemiring",
    "compose",
    "connect",
    "arcsort",
    "check_epsilon_acyclic",
    "CompiledWfst",
    "FlatLayout",
    "StateRecord",
    "ARC_BYTES",
    "STATE_BYTES",
    "SortedWfst",
    "sort_states_by_arc_count",
    "save_wfst",
    "load_wfst",
    "save_graph_bundle",
    "load_graph_bundle",
    "save_graph_mmap",
    "load_graph_mmap",
    "load_any_graph",
    "best_complete_path_score",
    "shortest_distance",
    "count_epsilon_arcs",
    "remove_epsilons",
]
