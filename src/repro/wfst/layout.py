"""Packed binary memory layout of a decoding graph.

This mirrors the layout the accelerator reads from main memory (paper,
Section III, following Choi et al. [2]):

* **States array** -- one 64-bit record per state: index of the first
  outgoing arc (32 bits), number of non-epsilon arcs (16 bits), number of
  epsilon arcs (16 bits).
* **Arcs array** -- one 128-bit record per arc: destination state id,
  transition weight, input label (phoneme id) and output label (word id),
  32 bits each.  All outgoing arcs of a state are contiguous, non-epsilon
  arcs first.

The simulator computes DRAM addresses from these records, so the layout is
kept byte-exact: :data:`STATE_BYTES` = 8 and :data:`ARC_BYTES` = 16.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.common.errors import GraphError
from repro.common.logmath import LOG_ZERO
from repro.wfst.fst import EPSILON, Fst
from repro.wfst.ops import arc_sort_key

#: Bytes per packed state record (paper: 64-bit structure).
STATE_BYTES: int = 8
#: Bytes per packed arc record (paper: 128 bits).
ARC_BYTES: int = 16

_MAX_U16 = (1 << 16) - 1
_MAX_U32 = (1 << 32) - 1


@dataclass(frozen=True)
class StateRecord:
    """Unpacked view of one 64-bit state record."""

    first_arc: int
    num_non_eps: int
    num_eps: int

    @property
    def num_arcs(self) -> int:
        return self.num_non_eps + self.num_eps


@dataclass(frozen=True)
class FlatLayout:
    """Structure-of-Arrays view of a compiled graph for vectorized decoding.

    The packed 64-bit state records are great for modelling the hardware but
    force per-state Python unpacking in the software decoders.  This view
    unpacks them once into parallel CSR-style arrays so a whole frontier of
    active states can be expanded with numpy gathers:

    * ``first_arc[s]`` / ``num_non_eps[s]`` / ``num_eps[s]`` -- the CSR
      offsets of state ``s``'s contiguous arc block (non-epsilon arcs first,
      exactly as stored in the packed layout);
    * ``eps_first[s]`` -- ``first_arc[s] + num_non_eps[s]``, the start of the
      epsilon sub-block;
    * ``arc_dest`` / ``arc_ilabel`` / ``arc_olabel`` -- the arc columns
      widened to ``int64`` so they can index numpy arrays directly;
    * ``arc_weight64`` -- arc weights widened ``float32 -> float64``, making
      vectorized score accumulation bit-identical to the scalar decoder's
      ``float(arc_weight[a])`` arithmetic.

    All arrays are read-only views shared by every decoder on the graph,
    and all are guaranteed **C-contiguous**: each state's arc block is a
    dense ``[first_arc, first_arc + out_degree)`` slice of the arc
    columns (non-epsilon arcs first), so compiled kernel backends
    (:mod:`repro.decoder.backends`) can walk ``arc_dest`` /
    ``arc_ilabel`` / ``arc_olabel`` / ``arc_weight64`` with unit-stride
    loads and no per-call copies.
    """

    first_arc: np.ndarray
    num_non_eps: np.ndarray
    num_eps: np.ndarray
    eps_first: np.ndarray
    out_degree: np.ndarray
    arc_dest: np.ndarray
    arc_ilabel: np.ndarray
    arc_olabel: np.ndarray
    arc_weight64: np.ndarray
    final_weights: np.ndarray

    @property
    def num_states(self) -> int:
        return len(self.first_arc)

    @property
    def num_arcs(self) -> int:
        return len(self.arc_dest)

    @classmethod
    def from_compiled(cls, graph: "CompiledWfst") -> "FlatLayout":
        """Unpack a compiled graph's state records into SoA form."""
        packed = graph.states_packed
        first_arc = (packed & np.uint64(_MAX_U32)).astype(np.int64)
        num_non_eps = (
            (packed >> np.uint64(32)) & np.uint64(_MAX_U16)
        ).astype(np.int64)
        num_eps = (packed >> np.uint64(48)).astype(np.int64)
        arrays = dict(
            first_arc=first_arc,
            num_non_eps=num_non_eps,
            num_eps=num_eps,
            eps_first=first_arc + num_non_eps,
            out_degree=num_non_eps + num_eps,
            arc_dest=graph.arc_dest.astype(np.int64),
            arc_ilabel=graph.arc_ilabel.astype(np.int64),
            arc_olabel=graph.arc_olabel.astype(np.int64),
            arc_weight64=graph.arc_weight.astype(np.float64),
            final_weights=graph.final_weights.copy(),
        )
        # The contiguity guarantee compiled kernel backends rely on:
        # astype()/copy() already produce C-order arrays, but make it an
        # invariant of the view, not an accident of construction (the
        # source arrays may be mmap-backed or sliced).
        arrays = {
            name: np.ascontiguousarray(arr) for name, arr in arrays.items()
        }
        for arr in arrays.values():
            arr.setflags(write=False)
        return cls(**arrays)


class CompiledWfst:
    """Immutable, array-backed decoding graph.

    Arc attributes are stored as parallel numpy arrays for fast access from
    the decoders; :meth:`pack_state` / :meth:`unpack_state` and
    :meth:`pack_arc` / :meth:`unpack_arc` demonstrate the bit-exact hardware
    encoding and are exercised by the test suite.
    """

    def __init__(
        self,
        start: int,
        states_packed: np.ndarray,
        arc_dest: np.ndarray,
        arc_weight: np.ndarray,
        arc_ilabel: np.ndarray,
        arc_olabel: np.ndarray,
        final_weights: np.ndarray,
    ) -> None:
        self.start = int(start)
        self.states_packed = states_packed
        self.arc_dest = arc_dest
        self.arc_weight = arc_weight
        self.arc_ilabel = arc_ilabel
        self.arc_olabel = arc_olabel
        self.final_weights = final_weights
        self._flat: Optional[FlatLayout] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_fst(cls, fst: Fst, arcsort: bool = True) -> "CompiledWfst":
        """Freeze a mutable FST into the packed layout without mutating it.

        With ``arcsort=True`` (the default) each state's arcs are packed in
        the canonical sorted order (non-epsilon first, then by input
        label -- see :func:`repro.wfst.ops.arc_sort_key`).  With
        ``arcsort=False`` arcs keep their construction order, only
        partitioned so non-epsilon arcs come first (the layout's hard
        requirement).
        """
        n_states = fst.num_states
        n_arcs = fst.num_arcs
        if n_states > _MAX_U32 or n_arcs > _MAX_U32:
            raise GraphError("graph exceeds 32-bit index space")

        states_packed = np.zeros(n_states, dtype=np.uint64)
        arc_dest = np.zeros(n_arcs, dtype=np.uint32)
        arc_weight = np.zeros(n_arcs, dtype=np.float32)
        arc_ilabel = np.zeros(n_arcs, dtype=np.uint32)
        arc_olabel = np.zeros(n_arcs, dtype=np.uint32)
        final_weights = np.full(n_states, LOG_ZERO, dtype=np.float64)

        cursor = 0
        for s in fst.states():
            arcs = fst.arcs(s)
            if arcsort:
                arcs = sorted(arcs, key=arc_sort_key)
            non_eps = [a for a in arcs if not a.is_epsilon]
            eps = [a for a in arcs if a.is_epsilon]
            if len(non_eps) > _MAX_U16 or len(eps) > _MAX_U16:
                raise GraphError(f"state {s} exceeds 16-bit arc counts")
            states_packed[s] = cls.pack_state(
                StateRecord(cursor, len(non_eps), len(eps))
            )
            for arc in non_eps + eps:
                arc_dest[cursor] = arc.dest
                arc_weight[cursor] = arc.weight
                arc_ilabel[cursor] = arc.ilabel
                arc_olabel[cursor] = arc.olabel
                cursor += 1
            final_weights[s] = fst.final_weight(s)

        return cls(
            fst.start,
            states_packed,
            arc_dest,
            arc_weight,
            arc_ilabel,
            arc_olabel,
            final_weights,
        )

    def to_fst(self) -> Fst:
        """Rebuild a mutable :class:`Fst` from the packed layout.

        The inverse of :meth:`from_fst` (up to arc order, which is already
        canonical in the packed form): used to re-enter the graph-op world,
        e.g. to run epsilon removal on an already-compiled graph.
        """
        fst = Fst()
        fst.add_states(self.num_states)
        fst.set_start(self.start)
        for s in range(self.num_states):
            first, n_non_eps, n_eps = self.arc_range(s)
            for a in range(first, first + n_non_eps + n_eps):
                fst.add_arc(
                    s,
                    int(self.arc_ilabel[a]),
                    int(self.arc_olabel[a]),
                    float(self.arc_weight[a]),
                    int(self.arc_dest[a]),
                )
            if self.is_final(s):
                fst.set_final(s, self.final_weight(s))
        return fst

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content fingerprint of the packed layout (32 hex chars).

        Covers every packed array plus the start state, so two graphs share
        a fingerprint iff they are bit-identical in memory.  Computed once
        and cached on the instance; the graph compiler
        (:mod:`repro.graph`) persists it in artifact bundles so cache-hit
        loads skip the hash as well.  This is the single graph identity the
        trace/replay layer and the sweep caches key on.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(struct.pack("<q", self.start))
            for arr in (
                self.states_packed,
                self.arc_dest,
                self.arc_weight,
                self.arc_ilabel,
                self.arc_olabel,
                self.final_weights,
            ):
                h.update(np.ascontiguousarray(arr).tobytes())
            self._fingerprint = h.hexdigest()[:32]
        return self._fingerprint

    # ------------------------------------------------------------------
    # Bit-exact packing
    # ------------------------------------------------------------------
    @staticmethod
    def pack_state(record: StateRecord) -> int:
        """Pack a state record into its 64-bit hardware encoding."""
        if not 0 <= record.first_arc <= _MAX_U32:
            raise GraphError(f"first_arc out of range: {record.first_arc}")
        if not 0 <= record.num_non_eps <= _MAX_U16:
            raise GraphError(f"num_non_eps out of range: {record.num_non_eps}")
        if not 0 <= record.num_eps <= _MAX_U16:
            raise GraphError(f"num_eps out of range: {record.num_eps}")
        return (
            record.first_arc
            | (record.num_non_eps << 32)
            | (record.num_eps << 48)
        )

    @staticmethod
    def unpack_state(packed: int) -> StateRecord:
        """Unpack a 64-bit state record."""
        packed = int(packed)
        return StateRecord(
            first_arc=packed & _MAX_U32,
            num_non_eps=(packed >> 32) & _MAX_U16,
            num_eps=(packed >> 48) & _MAX_U16,
        )

    @staticmethod
    def pack_arc(dest: int, weight: float, ilabel: int, olabel: int) -> bytes:
        """Pack one arc into its 128-bit hardware encoding."""
        buf = np.zeros(1, dtype=[("d", "<u4"), ("w", "<f4"), ("i", "<u4"), ("o", "<u4")])
        buf[0] = (dest, weight, ilabel, olabel)
        return buf.tobytes()

    @staticmethod
    def unpack_arc(raw: bytes) -> Tuple[int, float, int, int]:
        """Unpack one 128-bit arc record."""
        if len(raw) != ARC_BYTES:
            raise GraphError(f"arc record must be {ARC_BYTES} bytes")
        buf = np.frombuffer(
            raw, dtype=[("d", "<u4"), ("w", "<f4"), ("i", "<u4"), ("o", "<u4")]
        )[0]
        return int(buf["d"]), float(buf["w"]), int(buf["i"]), int(buf["o"])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.states_packed)

    @property
    def num_arcs(self) -> int:
        return len(self.arc_dest)

    @property
    def states_size_bytes(self) -> int:
        return self.num_states * STATE_BYTES

    @property
    def arcs_size_bytes(self) -> int:
        return self.num_arcs * ARC_BYTES

    @property
    def total_size_bytes(self) -> int:
        return self.states_size_bytes + self.arcs_size_bytes

    def flat(self) -> FlatLayout:
        """The Structure-of-Arrays view, built lazily and cached."""
        if self._flat is None:
            self._flat = FlatLayout.from_compiled(self)
        return self._flat

    def state_record(self, state: int) -> StateRecord:
        """The unpacked 64-bit record for ``state``."""
        return self.unpack_state(self.states_packed[state])

    def out_degree(self, state: int) -> int:
        rec = self.state_record(state)
        return rec.num_arcs

    def arc_range(self, state: int) -> Tuple[int, int, int]:
        """``(first_arc, num_non_eps, num_eps)`` for ``state``."""
        rec = self.state_record(state)
        return rec.first_arc, rec.num_non_eps, rec.num_eps

    def final_weight(self, state: int) -> float:
        return float(self.final_weights[state])

    def is_final(self, state: int) -> bool:
        return self.final_weights[state] > LOG_ZERO / 2

    def final_states(self) -> List[int]:
        return [int(s) for s in np.nonzero(self.final_weights > LOG_ZERO / 2)[0]]

    # Address map (used by the accelerator memory model) ----------------
    def state_address(self, state: int, base: int = 0) -> int:
        """Byte address of the packed record of ``state``."""
        return base + state * STATE_BYTES

    def arc_address(self, arc_index: int, base: int = 0) -> int:
        """Byte address of the packed record of arc ``arc_index``."""
        return base + arc_index * ARC_BYTES

    def epsilon_fraction(self) -> float:
        """Fraction of arcs that are epsilon (Kaldi's graph: 11.5%)."""
        if self.num_arcs == 0:
            return 0.0
        return float(np.count_nonzero(self.arc_ilabel == EPSILON)) / self.num_arcs
