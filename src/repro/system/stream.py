"""Streaming recognition simulation.

The analytical pipeline model (:mod:`repro.system.pipeline`) answers
throughput questions; this module simulates the *latency* behaviour of the
overall ASR system of Section III-A event by event: audio frames arrive in
real time (10 ms apart), the GPU produces acoustic scores batch by batch,
scores DMA into the double-buffered Acoustic Likelihood Buffer, and the
accelerator searches each batch while the GPU computes the next one.

The simulation reports per-batch and end-to-end latencies (time from a
frame being spoken to its batch being decoded), the metric a voice
assistant actually cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class StreamConfig:
    """Streaming setup."""

    batch_frames: int = 50
    frame_period_s: float = 0.01
    dnn_seconds_per_frame: float = 4e-5
    search_seconds_per_frame: float = 3e-5
    transfer_seconds_per_batch: float = 1e-4

    def __post_init__(self) -> None:
        if self.batch_frames < 1:
            raise ConfigError("batch_frames must be >= 1")
        if min(
            self.frame_period_s,
            self.dnn_seconds_per_frame,
            self.search_seconds_per_frame,
            self.transfer_seconds_per_batch,
        ) < 0:
            raise ConfigError("times must be non-negative")


@dataclass(frozen=True)
class BatchTiming:
    """Timeline of one batch through the pipeline."""

    batch: int
    audio_complete_s: float
    dnn_done_s: float
    transfer_done_s: float
    search_done_s: float

    @property
    def latency_s(self) -> float:
        """Time from the last frame of the batch being spoken to its
        words being available."""
        return self.search_done_s - self.audio_complete_s


@dataclass
class StreamReport:
    """Result of a streaming simulation."""

    batches: List[BatchTiming] = field(default_factory=list)

    @property
    def mean_latency_s(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.latency_s for b in self.batches) / len(self.batches)

    @property
    def max_latency_s(self) -> float:
        if not self.batches:
            return 0.0
        return max(b.latency_s for b in self.batches)

    @property
    def keeps_up(self) -> bool:
        """True when latency does not grow across the stream (the pipeline
        sustains real time)."""
        if len(self.batches) < 4:
            return True
        half = len(self.batches) // 2
        early = sum(b.latency_s for b in self.batches[:half]) / half
        late = sum(b.latency_s for b in self.batches[half:]) / (
            len(self.batches) - half
        )
        return late <= early * 1.5 + 1e-9


@dataclass(frozen=True)
class BatchedStreamConfig:
    """Multi-user serving setup: one engine advances all streams in lockstep.

    Models the serving shape of :class:`repro.decoder.batch.BatchDecoder`:
    ``num_streams`` concurrent users, every stream's batch searched in one
    vectorized sweep.  The marginal cost of each extra stream is a fraction
    of the single-stream cost (``*_batch_efficiency``; 1.0 = no benefit,
    0.0 = free), the regime measured by
    ``benchmarks/bench_batch_throughput.py``.
    """

    num_streams: int = 8
    batch_frames: int = 50
    frame_period_s: float = 0.01
    dnn_seconds_per_frame: float = 4e-5
    search_seconds_per_frame: float = 3e-5
    transfer_seconds_per_batch: float = 1e-4
    dnn_batch_efficiency: float = 0.5
    search_batch_efficiency: float = 0.25

    def __post_init__(self) -> None:
        if self.num_streams < 1:
            raise ConfigError("num_streams must be >= 1")
        if self.batch_frames < 1:
            raise ConfigError("batch_frames must be >= 1")
        if min(
            self.frame_period_s,
            self.dnn_seconds_per_frame,
            self.search_seconds_per_frame,
            self.transfer_seconds_per_batch,
        ) < 0:
            raise ConfigError("times must be non-negative")
        for eff in (self.dnn_batch_efficiency, self.search_batch_efficiency):
            if not 0.0 <= eff <= 1.0:
                raise ConfigError("batch efficiencies must be in [0, 1]")

    def _cost_factor(self, efficiency: float) -> float:
        """Batched cost relative to a single stream."""
        return 1.0 + efficiency * (self.num_streams - 1)

    @property
    def dnn_seconds_per_batch_frame(self) -> float:
        """GPU seconds per frame slot with all streams batched."""
        return self.dnn_seconds_per_frame * self._cost_factor(
            self.dnn_batch_efficiency
        )

    @property
    def search_seconds_per_batch_frame(self) -> float:
        """Search seconds per frame slot with all streams batched."""
        return self.search_seconds_per_frame * self._cost_factor(
            self.search_batch_efficiency
        )


def simulate_batched_stream(
    total_frames: int, config: BatchedStreamConfig = BatchedStreamConfig()
) -> StreamReport:
    """Simulate ``num_streams`` synchronized real-time streams.

    All streams speak simultaneously, so every batch carries one chunk per
    stream; the reported latency is what each individual user observes.
    Reuses :class:`StreamReport` -- ``keeps_up`` answers whether the shared
    engine sustains this many users in real time.
    """
    single = StreamConfig(
        batch_frames=config.batch_frames,
        frame_period_s=config.frame_period_s,
        dnn_seconds_per_frame=config.dnn_seconds_per_batch_frame,
        search_seconds_per_frame=config.search_seconds_per_batch_frame,
        transfer_seconds_per_batch=config.transfer_seconds_per_batch,
    )
    return simulate_stream(total_frames, single)


def max_realtime_streams(
    config: BatchedStreamConfig = BatchedStreamConfig(),
    limit: int = 4096,
) -> int:
    """Largest stream count the pipeline sustains in real time.

    A stage keeps up when its busy time per batch fits inside the batch's
    audio window, i.e. its per-batch-frame cost stays below
    ``frame_period_s``; the bottleneck stage bounds the fleet.  With both
    batch efficiencies at 0 extra streams are free and no bottleneck ever
    appears, so the answer is unbounded: the search is capped at ``limit``
    and returns it (a floor, not a measured capacity, in that case).
    """
    best = 0
    for n in range(1, limit + 1):
        candidate = replace(config, num_streams=n)
        busiest = max(
            candidate.dnn_seconds_per_batch_frame,
            candidate.search_seconds_per_batch_frame,
        )
        if busiest > config.frame_period_s:
            break
        best = n
    return best


def simulate_stream(
    total_frames: int, config: StreamConfig = StreamConfig()
) -> StreamReport:
    """Simulate a continuous utterance of ``total_frames`` frames."""
    if total_frames < 1:
        raise ConfigError("total_frames must be >= 1")

    report = StreamReport()
    full, rem = divmod(total_frames, config.batch_frames)
    chunks = [config.batch_frames] * full + ([rem] if rem else [])

    gpu_free = 0.0
    accel_free = 0.0
    frames_spoken = 0
    for i, frames in enumerate(chunks):
        frames_spoken += frames
        audio_done = frames_spoken * config.frame_period_s

        # The GPU starts on the batch when its audio is complete and the
        # GPU is free (it computes batches in order).
        dnn_start = max(audio_done, gpu_free)
        dnn_done = dnn_start + frames * config.dnn_seconds_per_frame
        gpu_free = dnn_done

        # Scores DMA to the accelerator's double buffer; the transfer
        # overlaps the accelerator's work on the previous batch.
        transfer_done = dnn_done + config.transfer_seconds_per_batch

        search_start = max(transfer_done, accel_free)
        search_done = search_start + frames * config.search_seconds_per_frame
        accel_free = search_done

        report.batches.append(
            BatchTiming(i, audio_done, dnn_done, transfer_done, search_done)
        )
    return report
