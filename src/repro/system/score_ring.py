"""Double-buffered shared-memory score planes for the serving tier.

The executable analogue of the accelerator's Acoustic Likelihood Buffer
(paper, Section III): score frames live in a ``multiprocessing.shared_memory``
segment holding **two planes** per worker.  The front door writes score
rows into the plane currently being filled and ships only tiny
``(sid, generation, offset, frames)`` descriptors over the pipe; the
worker maps the same segment once and reads the rows **zero-copy** --
exactly the way it already mmaps the compiled graph -- acking a chunk
when its frames have been decoded, which releases the slot.

When the filling plane runs out of rows the writer *flips* to the other
plane -- legal only once every chunk written there has been acked (the
ALB stall: the GPU may fill plane ``t+1`` only while the Viterbi sweep
consumes plane ``t``).  ``try_alloc`` returns ``None`` on a stall so the
caller can drain acks and retry; with a plane at least as deep as the
tier's backpressure budget the stall is unreachable, because at most
``queue_depth`` unacked frames exist per worker.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError

_FLOAT64_BYTES = 8


class ScorePlaneRing:
    """Writer side: the front door's pair of score planes for one worker."""

    def __init__(self, plane_frames: int, width: int) -> None:
        if plane_frames < 1 or width < 1:
            raise ConfigError("plane_frames and width must be >= 1")
        self.plane_frames = plane_frames
        self.width = width
        size = 2 * plane_frames * width * _FLOAT64_BYTES
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._planes: np.ndarray = np.ndarray(
            (2, plane_frames, width), dtype=np.float64, buffer=self._shm.buf
        )
        #: Monotone plane generation; ``generation & 1`` indexes the
        #: plane currently being filled.
        self.generation = 0
        self._fill = 0                      #: next free row of that plane
        self._pending: List[int] = [0, 0]   #: unacked chunks per plane
        self.flips = 0
        self.stalls = 0

    @property
    def name(self) -> str:
        """Segment name the worker attaches by."""
        return self._shm.name

    @property
    def pending_chunks(self) -> int:
        return self._pending[0] + self._pending[1]

    def try_alloc(
        self, frames: int
    ) -> Optional[Tuple[int, int, np.ndarray]]:
        """Reserve ``frames`` rows of the filling plane.

        Returns ``(generation, offset, rows_view)``, flipping planes
        when the current one is full -- or ``None`` when the flip target
        still has unacked chunks (the ALB stall; drain acks and retry).
        """
        if frames < 1 or frames > self.plane_frames:
            raise ConfigError(
                f"chunk of {frames} frames does not fit a "
                f"{self.plane_frames}-frame score plane"
            )
        if self._fill + frames > self.plane_frames:
            if self._pending[(self.generation + 1) & 1]:
                self.stalls += 1
                return None
            self.generation += 1
            self._fill = 0
            self.flips += 1
        plane_index = self.generation & 1
        offset = self._fill
        self._fill += frames
        self._pending[plane_index] += 1
        return (
            self.generation,
            offset,
            self._planes[plane_index, offset: offset + frames],
        )

    def release(self, generation: int) -> None:
        """Ack from the worker: one chunk of ``generation`` is consumed."""
        if generation < 0:
            return  # zero-frame descriptor, nothing was allocated
        index = generation & 1
        if self._pending[index] > 0:
            self._pending[index] -= 1

    def close(self) -> None:
        """Release the mapping and unlink the segment (owner side)."""
        self._planes = None  # type: ignore[assignment]
        try:
            self._shm.close()
            self._shm.unlink()
        except (BufferError, FileNotFoundError, OSError):
            pass


class ScorePlaneView:
    """Reader side: a worker's zero-copy view of its ring segment."""

    def __init__(self, name: str, plane_frames: int, width: int) -> None:
        # Before 3.13 attaching also *registers* the segment with this
        # process's resource tracker, which then unlinks it (or warns
        # about a "leak") when the worker exits -- but the front door
        # owns the segment's lifetime.  There is no track=False until
        # 3.13, so suppress the registration around the attach.
        registered = resource_tracker.register
        resource_tracker.register = lambda *_args: None  # type: ignore[assignment]
        try:
            self._shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = registered
        self.width = width
        self._planes: np.ndarray = np.ndarray(
            (2, plane_frames, width), dtype=np.float64, buffer=self._shm.buf
        )

    def rows(self, generation: int, offset: int, frames: int) -> np.ndarray:
        """The chunk's score rows, read in place from shared memory."""
        return self._planes[generation & 1, offset: offset + frames]

    def close(self) -> None:
        self._planes = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except (BufferError, OSError):
            pass
