"""Continuous-batching streaming decode server (beyond-paper serving
tier: the executable counterpart of the Section VI server-workload
discussion, built on the software decoders).

:mod:`repro.system.stream` *models* the latency of serving many live
streams analytically; this module *executes* that serving shape.  A
:class:`StreamingServer` multiplexes any number of live
:class:`repro.decoder.session.DecodeSession` objects through one
vectorized engine:

* sessions **join and leave mid-flight** -- :meth:`open_session` admits a
  new stream at any time, a session retires the moment its input is
  closed and its buffered frames are drained;
* audio arrives as **ragged chunks** -- each :meth:`push` buffers any
  number of score frames per session, and every :meth:`step` advances up
  to ``max_batch`` ready sessions by exactly one frame in a single fused
  lockstep sweep (:func:`repro.decoder.session.advance_sessions`);
* **per-session latency and throughput** are recorded: queue wait per
  frame, attributed decode time, frames/s, plus server-level sweep
  occupancy and aggregate throughput.

Because the fused sweep is bit-identical to per-session decoding, a
server serving N streams produces exactly the words and path scores of N
one-shot ``BatchDecoder.decode`` calls -- the correctness anchor tested
in ``tests/test_streaming_server.py``.
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import AdmissionError, ConfigError, DecodeError
from repro.acoustic.batch_scorer import BatchScorer
from repro.acoustic.scorer import DnnScorer
from repro.decoder.batch import BatchDecoder
from repro.decoder.result import DecodeResult
from repro.decoder.session import Chunk, advance_sessions, chunk_matrix
from repro.decoder.viterbi import BeamSearchConfig
from repro.wfst.layout import CompiledWfst


@dataclass(frozen=True)
class ServerConfig:
    """Scheduler knobs.

    Attributes:
        max_batch: most sessions advanced per lockstep sweep; ready
            sessions beyond the cap wait for the next sweep, and served
            sessions rotate to the back of the queue (round-robin, so
            nobody starves).
        max_sessions: admission limit on concurrently live sessions;
            :meth:`StreamingServer.open_session` load-sheds with a typed
            :class:`~repro.common.errors.AdmissionError` once this many
            sessions are live (0 = unlimited).  The sharded tier uses it
            to bound each worker's sweep queue.
        fused: advance the sweep's sessions in one fused numpy pass
            (False falls back to per-session pushes -- same results,
            useful for benchmarking the fusion win).
    """

    max_batch: int = 64
    max_sessions: int = 0
    fused: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if self.max_sessions < 0:
            raise ConfigError("max_sessions must be >= 0")


@dataclass
class SessionStats:
    """Latency/throughput record of one session's life on the server."""

    session_id: int
    opened_s: float
    frames_pushed: int = 0
    frames_decoded: int = 0
    sweeps: int = 0
    wait_seconds_total: float = 0.0
    max_wait_s: float = 0.0
    decode_seconds: float = 0.0
    finalized_s: Optional[float] = None
    #: High-water mark of the session's traceback buffer, in bytes
    #: (bounded by the commit window under ``commit_interval > 0``).
    trace_peak_bytes: int = 0
    #: Frames whose words were committed (stable-prefix output).
    committed_frames: int = 0

    @property
    def mean_wait_s(self) -> float:
        """Mean time a frame sat buffered before its sweep decoded it."""
        if not self.frames_decoded:
            return 0.0
        return self.wait_seconds_total / self.frames_decoded

    @property
    def frames_per_second(self) -> float:
        """Decode throughput over this session's attributed sweep time."""
        if self.decode_seconds <= 0.0:
            return 0.0
        return self.frames_decoded / self.decode_seconds


@dataclass
class ServerStats:
    """Aggregate scheduler counters across every sweep.

    Kept as running totals (not per-sweep lists) so a server can run
    indefinitely with O(1) stats memory.
    """

    sweeps: int = 0
    frames_decoded: int = 0
    busy_seconds: float = 0.0
    sessions_opened: int = 0
    sessions_finalized: int = 0
    max_occupancy: int = 0
    #: Feature frames scored server-side (``mode="features"`` sessions),
    #: the time spent inside the stacked forward, and how many batched
    #: scoring calls covered them (scored_frames / score_batches = mean
    #: cross-session batch height).
    scored_frames: int = 0
    score_seconds: float = 0.0
    score_batches: int = 0

    @property
    def aggregate_frames_per_second(self) -> float:
        """Frames decoded per second of engine busy time, all sessions."""
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.frames_decoded / self.busy_seconds

    @property
    def scored_frames_per_second(self) -> float:
        """Feature frames scored per second spent in the stacked DNN."""
        if self.score_seconds <= 0.0:
            return 0.0
        return self.scored_frames / self.score_seconds

    @property
    def mean_occupancy(self) -> float:
        """Mean sessions advanced per sweep (the batching win); every
        ready session decodes exactly one frame per sweep."""
        if not self.sweeps:
            return 0.0
        return self.frames_decoded / self.sweeps


@dataclass
class SessionRecord:
    """Terminal state of a retired session."""

    session_id: int
    result: Optional[DecodeResult]
    error: Optional[str]
    stats: SessionStats

    @property
    def ok(self) -> bool:
        return self.result is not None


class _Live:
    """A session plus its buffered, timestamped score frames (and, for
    ``mode="features"`` sessions, the not-yet-scored feature chunks)."""

    __slots__ = ("session", "buffer", "features", "mode", "input_closed",
                 "stats")

    def __init__(self, session, stats: SessionStats,
                 mode: str = "scores") -> None:
        self.session = session
        self.buffer: Deque[Tuple[np.ndarray, float]] = deque()
        #: Pending feature chunks awaiting the next batched scoring pass.
        self.features: Deque[Tuple[np.ndarray, float]] = deque()
        self.mode = mode
        self.input_closed = False
        self.stats = stats


class StreamingServer:
    """Serve many live decode sessions through one vectorized engine."""

    def __init__(
        self,
        graph: CompiledWfst,
        search_config: BeamSearchConfig = BeamSearchConfig(),
        server_config: ServerConfig = ServerConfig(),
        clock: Callable[[], float] = time.perf_counter,
        scorer: Optional[DnnScorer] = None,
    ) -> None:
        self.decoder = BatchDecoder(graph, search_config)
        self.server_config = server_config
        self.stats = ServerStats()
        self._clock = clock
        self._live: "OrderedDict[int, _Live]" = OrderedDict()
        self._records: Dict[int, SessionRecord] = {}
        self._ids = itertools.count()
        # All sessions must push rows of one width so any subset can be
        # stacked into a fused sweep; pinned by the first push.
        self._frame_width: Optional[int] = None
        # Server-side acoustic scoring: feature-mode sessions push MFCC
        # chunks, and every step scores the pending chunks of *all* such
        # sessions in one stacked DNN forward (batch-stable, so the
        # scores match client-side per-session scoring bit for bit).
        self._batch_scorer = BatchScorer(scorer) if scorer is not None else None
        if self._batch_scorer is not None and (
            self._batch_scorer.width < self.decoder.min_score_width
        ):
            raise ConfigError(
                f"scorer produces {self._batch_scorer.width}-wide score "
                f"rows but the graph's phone ids need at least "
                f"{self.decoder.min_score_width}"
            )

    @property
    def kernel_backend(self) -> str:
        """Resolved kernel array backend the fused sweeps run on
        ("numpy"/"numba"; selected by ``search_config.backend``)."""
        return self.decoder.backend_name

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open_session(self, mode: str = "scores") -> int:
        """Admit a new live stream; returns its session id.

        Args:
            mode: ``"scores"`` (the client pushes pre-scored likelihood
                rows via :meth:`push`) or ``"features"`` (the client
                pushes MFCC features via :meth:`push_features` and the
                server scores them, batched across sessions).

        Raises:
            AdmissionError: when ``max_sessions`` live sessions already
                exist -- the join is load-shed without touching them.
            ConfigError: ``mode="features"`` on a server built without a
                ``scorer``, or an unknown mode.
        """
        if mode not in ("scores", "features"):
            raise ConfigError(f"unknown session mode {mode!r}")
        if mode == "features" and self._batch_scorer is None:
            raise ConfigError(
                "mode='features' needs a server constructed with scorer="
            )
        limit = self.server_config.max_sessions
        if limit and len(self._live) >= limit:
            raise AdmissionError(
                f"server at its admission limit ({limit} live sessions); "
                f"retry after a session retires"
            )
        sid = next(self._ids)
        self._live[sid] = _Live(
            self.decoder.open_session(), SessionStats(sid, self._clock()),
            mode=mode,
        )
        self.stats.sessions_opened += 1
        return sid

    def push(self, session_id: int, chunk: Chunk) -> int:
        """Buffer a chunk of acoustic score frames for a live session.

        Chunks are validated here -- wide enough for every phone id on
        the graph, and one width across all sessions -- so a malformed
        chunk is rejected at the door instead of aborting a later fused
        sweep that other sessions' frames already entered.
        """
        live = self._require_live(session_id)
        if live.input_closed:
            raise DecodeError(f"input of session {session_id} is closed")
        if live.mode != "scores":
            raise DecodeError(
                f"session {session_id} is a features-mode session; "
                f"push MFCC chunks via push_features"
            )
        matrix = chunk_matrix(chunk)
        if len(matrix):
            width = matrix.shape[1]
            if width < self.decoder.min_score_width:
                raise DecodeError(
                    f"score rows must have at least "
                    f"{self.decoder.min_score_width} entries (one per phone "
                    f"id on the graph), got {width}"
                )
            if self._frame_width is None:
                self._frame_width = width
            elif width != self._frame_width:
                raise DecodeError(
                    f"score rows must be {self._frame_width} wide like "
                    f"every other session's (got {width}); one server "
                    f"serves one acoustic model"
                )
        now = self._clock()
        for row in matrix:
            live.buffer.append((row, now))
        live.stats.frames_pushed += len(matrix)
        return len(matrix)

    def push_features(self, session_id: int, features: np.ndarray) -> int:
        """Buffer a chunk of MFCC feature rows for a features-mode session.

        The chunk is scored server-side on the next :meth:`step`, stacked
        with every other feature session's pending chunks into one DNN
        forward -- bit-identical to the client scoring it alone.
        """
        live = self._require_live(session_id)
        if live.input_closed:
            raise DecodeError(f"input of session {session_id} is closed")
        if live.mode != "features":
            raise DecodeError(
                f"session {session_id} is a scores-mode session; "
                f"push likelihood rows via push"
            )
        scorer = self._batch_scorer
        assert scorer is not None  # guaranteed by open_session
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != scorer.input_dim:
            raise DecodeError(
                f"feature chunks must be (frames, {scorer.input_dim}), "
                f"got shape {matrix.shape}"
            )
        if self._frame_width is None:
            self._frame_width = scorer.width
        elif scorer.width != self._frame_width:
            raise DecodeError(
                f"scored rows would be {scorer.width} wide but the fleet "
                f"pushes {self._frame_width}-wide rows; one server serves "
                f"one acoustic model"
            )
        if len(matrix):
            live.features.append((matrix, self._clock()))
        live.stats.frames_pushed += len(matrix)
        return len(matrix)

    def close_input(self, session_id: int) -> None:
        """Mark end of stream; the session retires once its buffer drains."""
        self._require_live(session_id).input_closed = True

    def partial(self, session_id: int) -> Optional[DecodeResult]:
        """Current best hypothesis of a live session (decoded frames only).

        Returns ``None`` once the session's beam has emptied -- it is
        dead but not yet retired; its error is recorded at retirement --
        so a fleet-wide partial poller never trips on a dying session.
        """
        live = self._require_live(session_id)
        if not live.session.alive:
            return None
        return live.session.partial()

    def result(self, session_id: int) -> SessionRecord:
        """Terminal record of a retired session."""
        record = self._records.get(session_id)
        if record is None:
            state = "still live" if session_id in self._live else "unknown"
            raise DecodeError(f"session {session_id} has no result ({state})")
        return record

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def step(self) -> int:
        """One lockstep sweep: up to ``max_batch`` ready sessions advance
        one buffered frame each; returns how many advanced.

        Served sessions rotate to the back of the queue, so when more
        than ``max_batch`` sessions are ready the cap round-robins over
        them instead of starving the newest arrivals."""
        self._score_pending()
        ready: List[_Live] = []
        for live in list(self._live.values()):
            if not live.buffer:
                continue
            if not live.session.alive:
                # The beam emptied this session's search on an earlier
                # frame; retire it with the engine's error instead of
                # poisoning the whole sweep.
                self._retire(
                    live,
                    error="beam emptied the search at frame "
                    f"{live.session.frames_pushed}",
                )
                continue
            ready.append(live)
            if len(ready) == self.server_config.max_batch:
                break

        if ready:
            pairs = []
            enqueued_at = []
            for live in ready:
                row, t_enq = live.buffer.popleft()
                pairs.append((live.session, row))
                enqueued_at.append(t_enq)
                self._live.move_to_end(live.stats.session_id)
            t0 = self._clock()
            if self.server_config.fused:
                advance_sessions(pairs)
            else:
                for session, row in pairs:
                    session.push_frame(row)
            elapsed = self._clock() - t0
            share = elapsed / len(ready)
            for live, t_enq in zip(ready, enqueued_at):
                stats = live.stats
                stats.frames_decoded += 1
                stats.sweeps += 1
                stats.decode_seconds += share
                # Queue wait runs to the sweep's start; the sweep itself
                # is accounted in decode_seconds.
                wait = max(0.0, t0 - t_enq)
                stats.wait_seconds_total += wait
                stats.max_wait_s = max(stats.max_wait_s, wait)
            self.stats.sweeps += 1
            self.stats.frames_decoded += len(ready)
            self.stats.busy_seconds += elapsed
            self.stats.max_occupancy = max(
                self.stats.max_occupancy, len(ready)
            )

        self._retire_finished()
        return len(ready)

    def drain(self) -> None:
        """Sweep until no session has buffered frames, retiring finished
        sessions along the way."""
        while self.step():
            pass

    def _score_pending(self) -> None:
        """Batched scoring pass: pack the pending feature chunks of all
        feature-mode sessions, run one stacked DNN forward, scatter the
        score rows into the sessions' frame buffers (the in-process
        score plane).  Original push timestamps are kept so queue-wait
        accounting spans scoring time too."""
        if self._batch_scorer is None:
            return
        owners: List[Tuple[_Live, float]] = []
        chunks: List[np.ndarray] = []
        for live in self._live.values():
            while live.features:
                matrix, t_enq = live.features.popleft()
                owners.append((live, t_enq))
                chunks.append(matrix)
        if not chunks:
            return
        t0 = self._clock()
        planes = self._batch_scorer.score_chunks(chunks)
        elapsed = self._clock() - t0
        total = 0
        for (live, t_enq), plane in zip(owners, planes):
            total += len(plane)
            for row in plane:
                live.buffer.append((row, t_enq))
        self.stats.scored_frames += total
        self.stats.score_seconds += elapsed
        self.stats.score_batches += 1

    # ------------------------------------------------------------------
    # Convenience driver
    # ------------------------------------------------------------------
    def serve_staggered(
        self,
        scores_batch: Sequence[Chunk],
        chunk_frames: int = 10,
        stagger: int = 0,
        on_join: Optional[Callable[[int, int, int], None]] = None,
        on_round: Optional[Callable[[int], None]] = None,
        mode: str = "scores",
    ) -> List[SessionRecord]:
        """Serve whole utterances as concurrent chunked live sessions.

        Each utterance becomes a session pushing ``chunk_frames``-sized
        chunks, all live sessions advancing in lockstep sweeps between
        chunk rounds -- the continuous-batching traffic shape.  With
        ``stagger > 0`` one session joins every ``stagger`` rounds
        (sessions join and leave mid-flight); ``stagger=0`` admits
        everyone up front.  ``on_join(round_no, index, session_id)`` and
        ``on_round(round_no)`` let callers narrate progress.  With
        ``mode="features"`` the inputs are MFCC feature matrices instead
        of score chunks and the server scores them in batched passes.
        Returns each session's terminal :class:`SessionRecord` in input
        order -- a session that died mid-stream has its remaining audio
        dropped and its engine error recorded.
        """
        if chunk_frames < 1:
            raise ConfigError("chunk_frames must be >= 1")
        if stagger < 0:
            raise ConfigError("stagger must be >= 0")
        push = self.push_features if mode == "features" else self.push
        matrices = [chunk_matrix(scores) for scores in scores_batch]
        sids: List[Optional[int]] = [None] * len(matrices)
        offsets = [0] * len(matrices)

        def admit(i: int, round_no: int) -> None:
            sids[i] = self.open_session(mode=mode)
            if len(matrices[i]) == 0:
                self.close_input(sids[i])
            if on_join is not None:
                on_join(round_no, i, sids[i])

        round_no = 0
        while True:
            if stagger == 0:
                while None in sids:
                    admit(sids.index(None), round_no)
            elif round_no % stagger == 0 and None in sids:
                admit(sids.index(None), round_no)
            pushed = 0
            for i, (sid, matrix) in enumerate(zip(sids, matrices)):
                if sid is None or offsets[i] >= len(matrix):
                    continue
                if not self.is_live(sid):
                    # The session died mid-stream (beam emptied); drop its
                    # remaining audio and keep the recorded error.
                    offsets[i] = len(matrix)
                    continue
                chunk = matrix[offsets[i]: offsets[i] + chunk_frames]
                push(sid, chunk)
                offsets[i] += len(chunk)
                pushed += 1
                if offsets[i] >= len(matrix):
                    self.close_input(sid)
            self.drain()
            if on_round is not None:
                on_round(round_no)
            round_no += 1
            if pushed == 0 and None not in sids:
                break
        self.drain()
        return [self.result(sid) for sid in sids]

    def decode_streaming(
        self,
        scores_batch: Sequence[Chunk],
        chunk_frames: int = 10,
    ) -> List[DecodeResult]:
        """Chunk-serve whole utterances; results in input order.

        Convenience wrapper over :meth:`serve_staggered` (all sessions
        admitted up front) that unwraps the records: output matches
        ``BatchDecoder.decode_batch`` exactly, and any session failure
        raises its ``DecodeError``.
        """
        records = self.serve_staggered(scores_batch, chunk_frames=chunk_frames)
        results = []
        for record in records:
            if record.error is not None:
                raise DecodeError(
                    f"session {record.session_id}: {record.error}"
                )
            results.append(record.result)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_live(self, session_id: int) -> bool:
        """True while the session accepts pushes (not yet retired)."""
        return session_id in self._live

    @property
    def live_session_ids(self) -> List[int]:
        return list(self._live.keys())

    @property
    def finished_session_ids(self) -> List[int]:
        return list(self._records.keys())

    @property
    def pending_frames(self) -> int:
        """Buffered frames not yet decoded, across all live sessions
        (scored rows plus feature frames awaiting the batched scorer)."""
        return sum(
            len(live.buffer) + sum(len(m) for m, _ in live.features)
            for live in self._live.values()
        )

    def frames_decoded(self, session_id: int) -> int:
        """Frames decoded so far for a live *or* retired session (the
        tier's workers use this to ack shared-memory chunks only once
        their rows have actually been consumed)."""
        live = self._live.get(session_id)
        if live is not None:
            return live.stats.frames_decoded
        record = self._records.get(session_id)
        if record is None:
            raise DecodeError(f"unknown session {session_id}")
        return record.stats.frames_decoded

    # ------------------------------------------------------------------
    def _require_live(self, session_id: int) -> _Live:
        live = self._live.get(session_id)
        if live is None:
            record = self._records.get(session_id)
            if record is None:
                raise DecodeError(f"unknown session {session_id}")
            why = record.error if record.error else "finished cleanly"
            raise DecodeError(f"session {session_id} already retired: {why}")
        return live

    def _retire(self, live: _Live, result: Optional[DecodeResult] = None,
                error: Optional[str] = None) -> None:
        stats = live.stats
        stats.finalized_s = self._clock()
        stats.trace_peak_bytes = live.session.trace_peak_bytes
        stats.committed_frames = live.session.committed_frames
        self._records[stats.session_id] = SessionRecord(
            stats.session_id, result=result, error=error, stats=stats
        )
        del self._live[stats.session_id]
        self.stats.sessions_finalized += 1

    def _retire_finished(self) -> None:
        finished = [
            live
            for live in self._live.values()
            if live.input_closed and not live.buffer and not live.features
        ]
        for live in finished:
            try:
                self._retire(live, result=live.session.finalize())
            except DecodeError as exc:
                self._retire(live, error=str(exc))
