"""Whole-pipeline ASR system models and the cross-platform experiment
harness (the paper's Figure 1 GPU+accelerator system view and the Section
VI evaluation loop over CPU / GPU / four accelerator configurations)."""

from repro.system.pipeline import AsrSystemModel, PipelineTimes
from repro.system.stream import (
    BatchedStreamConfig,
    BatchTiming,
    StreamConfig,
    StreamReport,
    max_realtime_streams,
    simulate_batched_stream,
    simulate_stream,
)
from repro.system.server import (
    ServerConfig,
    ServerStats,
    SessionRecord,
    SessionStats,
    StreamingServer,
)
from repro.system.score_ring import ScorePlaneRing, ScorePlaneView
from repro.system.tier import (
    ServingTier,
    TierConfig,
    TierStats,
)
from repro.system.experiment import (
    ComparisonResult,
    MemoryWorkload,
    PlatformRun,
    make_memory_workload,
    run_platform_comparison,
)

__all__ = [
    "AsrSystemModel",
    "PipelineTimes",
    "ComparisonResult",
    "MemoryWorkload",
    "PlatformRun",
    "make_memory_workload",
    "run_platform_comparison",
    "BatchedStreamConfig",
    "BatchTiming",
    "StreamConfig",
    "StreamReport",
    "max_realtime_streams",
    "simulate_batched_stream",
    "simulate_stream",
    "ServerConfig",
    "ServerStats",
    "SessionRecord",
    "SessionStats",
    "StreamingServer",
    "ScorePlaneRing",
    "ScorePlaneView",
    "ServingTier",
    "TierConfig",
    "TierStats",
]
