"""Sharded serving tier: a front door routing live sessions to a pool of
decode worker processes over one memory-mapped graph (beyond-paper
serving layer; the ROADMAP's "millions of users" scaling step over the
single-process :class:`~repro.system.server.StreamingServer`).

The shape is the classic datacenter serving tier the paper's Section VI
server-workload discussion assumes around the accelerator:

* **front door** (:class:`ServingTier`) -- admits sessions, applies
  admission control (``max_sessions`` live sessions tier-wide, load-shed
  with a typed :class:`~repro.common.errors.AdmissionError`) and
  backpressure (a bounded per-shard frame queue, saturated pushes shed
  with a typed :class:`~repro.common.errors.BackpressureError`), and
  routes every session **with affinity** to one shard: all of a
  session's chunks decode on the worker that admitted it, so streaming
  state never migrates.  Every method has an ``asyncio`` twin
  (:meth:`ServingTier.aopen_session` etc.) so an async gateway can drive
  the tier without blocking its event loop.
* **shards** -- ``num_workers`` processes, each running a
  :class:`StreamingServer` doing fused continuous-batching sweeps over
  its sessions.  Workers load the graph from an **mmap layout**
  (:func:`repro.wfst.io.load_graph_mmap`): uncompressed ``.npy`` arrays
  mapped read-only, so N workers share one physical copy of the graph
  through the OS page cache instead of N private copies.
* **SLO accounting** -- per-session end-to-end latency and queue-wait /
  decode-time records flow back with each retired session;
  :meth:`TierStats.slo` summarises server-level p50/p99.
* **batched in-tier scoring** (``scorer=`` + ``mode="features"``) -- a
  front-door scoring thread packs the pending MFCC chunks of *all* live
  feature sessions into one stacked, batch-stable DNN forward per pass
  (the paper's GPU batching half), writing the score rows straight into
  each worker's double-buffered **shared-memory score planes**
  (:mod:`repro.system.score_ring` -- the Acoustic Likelihood Buffer
  analogue).  Pipes carry only ``(sid, generation, offset, frames)``
  descriptors; workers read the rows zero-copy and ack after decode,
  which releases the plane slot.  The same transport carries
  :meth:`ServingTier.push` score chunks, so the per-push pickled matrix
  copy is gone from the scores path too.

Because each session decodes on exactly one worker's ``StreamingServer``
(bit-identical to one-shot decoding), the tier's per-session output is
word-for-word identical to ``BatchDecoder.decode`` -- the correctness
anchor of ``benchmarks/bench_serving_tier.py`` and
``tests/test_serving_tier.py``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import pickle
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.acoustic.batch_scorer import BatchScorer
from repro.acoustic.scorer import DnnScorer
from repro.common.errors import (
    AdmissionError,
    BackpressureError,
    ConfigError,
    DecodeError,
    ReproError,
    TierError,
)
from repro.decoder.backends import resolve_backend
from repro.decoder.kernel import DecoderConfig
from repro.decoder.result import DecodeResult
from repro.decoder.session import Chunk, chunk_matrix
from repro.system.score_ring import ScorePlaneRing, ScorePlaneView
from repro.system.server import (
    ServerConfig,
    ServerStats,
    SessionRecord,
    StreamingServer,
)
from repro.wfst.io import load_graph_mmap, save_graph_mmap
from repro.wfst.layout import CompiledWfst


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class TierConfig:
    """Front-door and shard knobs.

    Attributes:
        num_workers: decode worker processes (shards).
        max_sessions: tier-wide admission limit on concurrently live
            sessions; joins beyond it are load-shed with a typed
            :class:`AdmissionError` (0 = unlimited).
        queue_depth: bound on frames per shard that have been shipped but
            not yet acknowledged by the worker; pushes that would exceed
            it are load-shed with a typed :class:`BackpressureError`.
        max_batch: per-worker fused-sweep cap (forwarded to each shard's
            :class:`~repro.system.server.ServerConfig`).
        plane_frames: rows per score plane of each worker's double-
            buffered shared-memory ring (two planes per worker); ``0``
            sizes the plane automatically to cover the backpressure
            budget (``min(queue_depth, 8192)``), which makes the
            plane-flip stall unreachable.  Chunks larger than a plane
            are shipped as several descriptors.
        start_method: multiprocessing start method; ``None`` picks
            ``fork`` where available (workers then inherit the mapped
            graph pages directly), ``spawn`` elsewhere.
    """

    num_workers: int = 2
    max_sessions: int = 0
    queue_depth: int = 4096
    max_batch: int = 64
    plane_frames: int = 0
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        if self.max_sessions < 0:
            raise ConfigError("max_sessions must be >= 0")
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if self.plane_frames < 0:
            raise ConfigError("plane_frames must be >= 0 (0 = auto)")
        if self.start_method is not None and (
            self.start_method not in multiprocessing.get_all_start_methods()
        ):
            raise ConfigError(
                f"unknown start method {self.start_method!r} (available: "
                f"{multiprocessing.get_all_start_methods()})"
            )


@dataclass
class TierStats:
    """Front-door counters plus the per-session SLO samples."""

    #: Resolved kernel array backend every shard's fused sweeps run on
    #: ("numpy"/"numba"); recorded at tier construction from the search
    #: config (workers resolve the same config, so the names agree).
    kernel_backend: str = ""
    sessions_admitted: int = 0
    sessions_rejected: int = 0   #: joins shed at the admission limit
    pushes_shed: int = 0         #: pushes shed by shard backpressure
    sessions_finished: int = 0
    sessions_failed: int = 0
    frames_pushed: int = 0
    frames_decoded: int = 0
    #: end-to-end seconds from admission to the record arriving back.
    session_latencies_s: List[float] = field(default_factory=list)
    #: per-session mean frame queue-wait seconds (from the shard server).
    session_mean_waits_s: List[float] = field(default_factory=list)
    #: per-session attributed decode seconds.
    session_decode_s: List[float] = field(default_factory=list)
    #: wall-clock of the serving window (first admission -> last record).
    serving_seconds: float = 0.0
    #: largest per-session traceback-buffer high-water mark, in bytes --
    #: flat in session length once commits are enabled, the tier-level
    #: signal that long sessions do not grow memory without bound.
    trace_peak_bytes: int = 0
    #: committed (stable-prefix) frames summed over finished sessions.
    committed_frames: int = 0
    #: Batched in-tier scoring: feature frames scored by the front-door
    #: scoring thread, seconds inside the stacked DNN forward, and how
    #: many cross-session batches covered them.
    scored_frames: int = 0
    score_seconds: float = 0.0
    score_batches: int = 0
    #: Shared-memory transport accounting: score frames written into
    #: worker plane rings, push descriptors sent over the pipes, and the
    #: pickled bytes those descriptors cost (score matrices themselves
    #: never cross a pipe).
    frames_shipped: int = 0
    descriptors_shipped: int = 0
    ipc_bytes_shipped: int = 0
    #: Plane-flip stalls (writer waited for the consumed plane's acks).
    ring_stalls: int = 0

    @property
    def aggregate_frames_per_second(self) -> float:
        """Decoded frames per wall-clock second of the serving window."""
        if self.serving_seconds <= 0.0:
            return 0.0
        return self.frames_decoded / self.serving_seconds

    @property
    def scored_frames_per_second(self) -> float:
        """Feature frames scored per second spent in the stacked DNN."""
        if self.score_seconds <= 0.0:
            return 0.0
        return self.scored_frames / self.score_seconds

    @property
    def ipc_bytes_per_frame(self) -> float:
        """Pipe bytes per score frame shipped to a worker -- descriptor
        size with the shared-memory transport, versus a full pickled
        score row (``width * 8`` bytes and change) without it."""
        if not self.frames_shipped:
            return 0.0
        return self.ipc_bytes_shipped / self.frames_shipped

    def slo(self) -> Dict[str, float]:
        """Server-level SLO summary: p50/p99 latency and queue wait."""
        def pct(samples: List[float], q: float) -> float:
            return float(np.percentile(samples, q)) if samples else 0.0

        return {
            "sessions": self.sessions_finished,
            "p50_session_latency_s": pct(self.session_latencies_s, 50),
            "p99_session_latency_s": pct(self.session_latencies_s, 99),
            "p50_mean_wait_s": pct(self.session_mean_waits_s, 50),
            "p99_mean_wait_s": pct(self.session_mean_waits_s, 99),
            "aggregate_frames_per_second": self.aggregate_frames_per_second,
            "trace_memory_bytes": float(self.trace_peak_bytes),
            "committed_frames": float(self.committed_frames),
        }


class _TierSession:
    """Front-door view of one routed session."""

    __slots__ = (
        "sid", "worker", "opened_t", "closed", "record", "remote_error",
        "mode", "feature_pending", "close_sent",
    )

    def __init__(
        self,
        sid: int,
        worker: "_WorkerHandle",
        opened_t: float,
        mode: str = "scores",
    ) -> None:
        self.sid = sid
        self.worker = worker
        self.opened_t = opened_t
        self.closed = False
        self.record: Optional[SessionRecord] = None
        self.remote_error: Optional[str] = None
        self.mode = mode
        #: feature chunks accepted but not yet scored-and-shipped; a
        #: requested close is deferred until this drains so the worker
        #: sees every frame before end-of-stream.
        self.feature_pending = 0
        self.close_sent = False


class _WorkerHandle:
    """One shard: its process, duplex pipe, and load accounting."""

    __slots__ = (
        "index", "process", "conn", "live", "inflight_frames",
        "server_stats", "ring",
    )

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.live = 0                 #: sessions currently routed here
        self.inflight_frames = 0      #: shipped frames not yet acked
        self.server_stats: Optional[ServerStats] = None
        #: lazily created double-buffered score-plane segment (the first
        #: shipped chunk pins the tier's frame width).
        self.ring: Optional[ScorePlaneRing] = None


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(conn, graph_dir, search_config, server_config) -> None:
    """Shard main loop: a StreamingServer fed by the front-door pipe.

    Commands: ``("open", sid)``, ``("ring", name, plane_frames, width)``
    (once, before the first push -- the worker attaches the front door's
    shared-memory score planes), ``("push", sid, generation, offset,
    frames)`` (a descriptor naming rows of the mapped segment; the score
    matrix itself never crosses the pipe), ``("close", sid)``, and
    ``("stop",)``.  Replies: ``("ack", sid, frames, generation)`` once a
    chunk's rows have been *decoded* -- the ack releases both the front
    door's backpressure budget and the chunk's ring slot, so a plane is
    never overwritten under a zero-copy read -- ``("error", sid, type,
    text)`` when a command fails (followed by an immediate ack, since the
    rejected rows will never decode), ``("record", sid, SessionRecord)``
    when a session retires, and one final ``("stats", ServerStats)``
    before exit.

    The loop blocks on the pipe only when no frames are buffered;
    otherwise it polls and sweeps, so decode proceeds while the front
    door is busy elsewhere.
    """
    graph = load_graph_mmap(graph_dir)
    server = StreamingServer(graph, search_config, server_config)
    to_internal: Dict[int, int] = {}
    to_external: Dict[int, int] = {}
    shipped = set()
    running = True
    ring: Optional[ScorePlaneView] = None
    # Ack-after-decode ledger: per external sid, cumulative frames the
    # server accepted, and a FIFO of (generation, frames, cumulative
    # threshold) -- a chunk is acked once the session's decoded-frame
    # count reaches its threshold (or the session retired).
    accepted: Dict[int, int] = {}
    ledger: Dict[int, Deque[Tuple[int, int, int]]] = {}

    def ship_finished() -> None:
        for isid in server.finished_session_ids:
            ext = to_external.get(isid)
            if ext is None or ext in shipped:
                continue
            record = server.result(isid)
            record.stats.session_id = ext
            conn.send(("record", ext, dataclasses.replace(record, session_id=ext)))
            shipped.add(ext)

    def release_consumed() -> None:
        for ext in list(ledger):
            queue = ledger[ext]
            isid = to_internal[ext]
            while queue:
                generation, frames, threshold = queue[0]
                try:
                    done = server.frames_decoded(isid) >= threshold
                except ReproError:
                    done = True  # session vanished; nothing holds the slot
                if not done and server.is_live(isid):
                    break
                queue.popleft()
                conn.send(("ack", ext, frames, generation))
            if not queue:
                del ledger[ext]

    while True:
        idle = server.pending_frames == 0
        if conn.poll(None if (idle and running) else 0):
            try:
                msg = conn.recv()
            except EOFError:
                break
            op = msg[0]
            if op == "open":
                ext = msg[1]
                try:
                    isid = server.open_session()
                except ReproError as exc:
                    conn.send(("error", ext, type(exc).__name__, str(exc)))
                else:
                    to_internal[ext] = isid
                    to_external[isid] = ext
            elif op == "ring":
                ring = ScorePlaneView(msg[1], msg[2], msg[3])
            elif op == "push":
                ext, generation, offset, frames = msg[1], msg[2], msg[3], msg[4]
                if ring is None:
                    conn.send((
                        "error", ext, "TierError",
                        "push descriptor before ring announcement",
                    ))
                    conn.send(("ack", ext, frames, generation))
                    continue
                matrix = ring.rows(generation, offset, frames)
                try:
                    server.push(to_internal[ext], matrix)
                except (KeyError, ReproError) as exc:
                    conn.send(("error", ext, type(exc).__name__, str(exc)))
                    conn.send(("ack", ext, frames, generation))
                else:
                    accepted[ext] = accepted.get(ext, 0) + frames
                    ledger.setdefault(ext, deque()).append(
                        (generation, frames, accepted[ext])
                    )
            elif op == "close":
                ext = msg[1]
                try:
                    server.close_input(to_internal[ext])
                except (KeyError, ReproError):
                    pass  # already retired; its record is shipped below
            elif op == "stop":
                running = False
        elif server.pending_frames:
            server.step()
        ship_finished()
        release_consumed()
        if not running and not server.pending_frames:
            # Shutdown: close whatever input is still open so every
            # admitted session gets a terminal record.
            for isid in list(to_external):
                if server.is_live(isid):
                    try:
                        server.close_input(isid)
                    except ReproError:
                        pass
            server.drain()
            ship_finished()
            release_consumed()
            break
    if ring is not None:
        ring.close()
    conn.send(("stats", server.stats))
    conn.close()


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------
class ServingTier:
    """Route live decode sessions across a pool of worker shards.

    Construct from either an in-memory ``graph`` (materialised to an mmap
    layout in a temporary directory) or a pre-materialised ``graph_dir``
    (e.g. :meth:`repro.graph.cache.GraphCache.mmap_dir`).  Use as a
    context manager, or call :meth:`shutdown` explicitly.

    The synchronous methods are thread-safe; the ``a``-prefixed
    coroutines run them in a thread so an asyncio gateway can serve many
    connections over one tier without blocking its loop.
    """

    def __init__(
        self,
        graph: Optional[CompiledWfst] = None,
        search_config: DecoderConfig = DecoderConfig(),
        tier_config: TierConfig = TierConfig(),
        *,
        graph_dir: Optional[str] = None,
        clock: Callable[[], float] = time.perf_counter,
        scorer: Optional[DnnScorer] = None,
    ) -> None:
        if (graph is None) == (graph_dir is None):
            raise ConfigError(
                "construct ServingTier with exactly one of graph= or graph_dir="
            )
        if graph is not None:
            tmp = tempfile.mkdtemp(prefix="repro-tier-graph-")
            graph_dir = save_graph_mmap(graph, os.path.join(tmp, "graph.mmap"))
        self.graph_dir = graph_dir
        self.tier_config = tier_config
        self.search_config = search_config
        # Resolve here with the same rules every worker applies to the
        # pickled search config, so the recorded name matches the shards
        # (and any numba-missing fallback warns in the front door too).
        self.stats = TierStats(
            kernel_backend=resolve_backend(search_config.backend).name
        )
        self._clock = clock
        self._lock = threading.RLock()
        self._next_sid = 0
        self._sessions: Dict[int, _TierSession] = {}
        self._first_open_t: Optional[float] = None
        self._last_record_t: Optional[float] = None
        self._shut_down = False
        # The mapped load touches no array data; the front door only needs
        # the ilabel width to validate chunks before shipping them.
        front_graph = graph if graph is not None else load_graph_mmap(graph_dir)
        self._min_score_width = (
            int(front_graph.arc_ilabel.max()) + 1
            if len(front_graph.arc_ilabel)
            else 1
        )
        self._frame_width: Optional[int] = None

        # Batched in-tier acoustic scoring (the paper's GPU half): a
        # scoring thread packs the pending feature chunks of *all* live
        # feature-mode sessions, runs one stacked DNN forward straight
        # into the workers' shared-memory score planes, and ships the
        # descriptors.  Batch-stable gemm makes the rows bit-identical
        # to each session scoring alone.
        self._batch_scorer = BatchScorer(scorer) if scorer is not None else None
        if self._batch_scorer is not None and (
            self._batch_scorer.width < self._min_score_width
        ):
            raise ConfigError(
                f"scorer produces {self._batch_scorer.width}-wide score "
                f"rows but the graph's phone ids need at least "
                f"{self._min_score_width}"
            )
        self._pending_feats: List[Tuple[int, np.ndarray]] = []
        self._score_cv = threading.Condition(self._lock)
        self._score_thread: Optional[threading.Thread] = None

        ctx = multiprocessing.get_context(
            tier_config.start_method or _default_start_method()
        )
        shard_config = ServerConfig(max_batch=tier_config.max_batch)
        self._workers: List[_WorkerHandle] = []
        for index in range(tier_config.num_workers):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, graph_dir, search_config, shard_config),
                daemon=True,
                name=f"repro-tier-worker-{index}",
            )
            process.start()
            child_conn.close()
            self._workers.append(_WorkerHandle(index, process, parent_conn))

        if self._batch_scorer is not None:
            self._score_thread = threading.Thread(
                target=self._score_pump,
                daemon=True,
                name="repro-tier-scorer",
            )
            self._score_thread.start()

    # ------------------------------------------------------------------
    # Session lifecycle (sync front door)
    # ------------------------------------------------------------------
    def open_session(self, mode: str = "scores") -> int:
        """Admit a new live stream and route it to the least-loaded shard.

        Args:
            mode: ``"scores"`` (the client pushes pre-scored likelihood
                rows via :meth:`push`) or ``"features"`` (the client
                pushes MFCC features via :meth:`push_features`; the tier
                scores them batched across all live feature sessions).

        Raises:
            AdmissionError: the tier already serves ``max_sessions`` live
                sessions; the join is load-shed, nobody else is affected.
            ConfigError: ``mode="features"`` on a tier built without a
                ``scorer``, or an unknown mode.
        """
        if mode not in ("scores", "features"):
            raise ConfigError(f"unknown session mode {mode!r}")
        if mode == "features" and self._batch_scorer is None:
            raise ConfigError(
                "mode='features' needs a tier constructed with scorer="
            )
        with self._lock:
            self._require_up()
            self._pump()
            limit = self.tier_config.max_sessions
            live = sum(w.live for w in self._workers)
            if limit and live >= limit:
                self.stats.sessions_rejected += 1
                raise AdmissionError(
                    f"serving tier at its admission limit ({limit} live "
                    f"sessions); retry after a session retires"
                )
            worker = min(self._workers, key=lambda w: (w.live, w.index))
            sid = self._next_sid
            self._next_sid += 1
            now = self._clock()
            self._sessions[sid] = _TierSession(sid, worker, now, mode=mode)
            worker.live += 1
            worker.conn.send(("open", sid))
            self.stats.sessions_admitted += 1
            if self._first_open_t is None:
                self._first_open_t = now
            return sid

    def push(self, session_id: int, chunk: Chunk) -> int:
        """Validate a chunk at the door and ship it to the session's shard.

        Raises:
            DecodeError: unknown/retired session, or a malformed chunk
                (wrong rank, too narrow for the graph's phone ids, or a
                width disagreeing with the fleet's established width) --
                rejected here, before any IPC, so a bad chunk never
                reaches a shard where other sessions' frames are in
                flight.
            BackpressureError: the shard's bounded queue is saturated;
                the push is load-shed and may be retried.
        """
        matrix = chunk_matrix(chunk)
        width = matrix.shape[1] if len(matrix) else None
        with self._lock:
            self._require_up()
            self._pump()
            session = self._require_live(session_id)
            if session.mode != "scores":
                raise DecodeError(
                    f"session {session_id} is a features-mode session; "
                    f"push MFCC chunks via push_features"
                )
            if width is not None:
                if width < self._min_score_width:
                    raise DecodeError(
                        f"score rows must have at least "
                        f"{self._min_score_width} entries (one per phone id "
                        f"on the graph), got {width}"
                    )
                if self._frame_width is None:
                    self._frame_width = width
                elif width != self._frame_width:
                    raise DecodeError(
                        f"score rows must be {self._frame_width} wide like "
                        f"every other session's (got {width}); one tier "
                        f"serves one acoustic model"
                    )
            if not len(matrix):
                return 0
            worker = session.worker
            self._reserve(worker, len(matrix))
            self._ship_rows(worker, session_id, matrix)
            self.stats.frames_pushed += len(matrix)
            return len(matrix)

    def push_features(self, session_id: int, features: np.ndarray) -> int:
        """Accept a chunk of MFCC feature rows for a features-mode session.

        The chunk joins the scoring thread's next cross-session batch:
        one stacked DNN forward scores the pending chunks of *every*
        live feature session straight into the shard's shared-memory
        score planes -- bit-identical to the client scoring its own
        chunk and calling :meth:`push`.

        Raises:
            DecodeError: unknown/retired/closed session, a scores-mode
                session, or a malformed chunk (wrong rank or feature
                width).
            BackpressureError: the shard's bounded queue is saturated;
                the push is load-shed and may be retried.
        """
        if self._batch_scorer is None:
            raise DecodeError(
                "this tier scores nothing; construct it with scorer= "
                "and open sessions with mode='features'"
            )
        matrix = np.array(features, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self._batch_scorer.input_dim:
            raise DecodeError(
                f"feature chunks must be (frames, "
                f"{self._batch_scorer.input_dim}), got shape {matrix.shape}"
            )
        with self._score_cv:
            self._require_up()
            self._pump()
            session = self._require_live(session_id)
            if session.mode != "features":
                raise DecodeError(
                    f"session {session_id} is a scores-mode session; "
                    f"push likelihood rows via push"
                )
            if session.closed:
                raise DecodeError(f"input of session {session_id} is closed")
            width = self._batch_scorer.width
            if self._frame_width is None:
                self._frame_width = width
            elif width != self._frame_width:
                raise DecodeError(
                    f"scored rows would be {width} wide but the fleet "
                    f"pushes {self._frame_width}-wide rows; one tier "
                    f"serves one acoustic model"
                )
            if not len(matrix):
                return 0
            # Reserve the backpressure budget now -- the scoring thread
            # cannot shed -- and hand the chunk to the batcher.
            self._reserve(session.worker, len(matrix))
            session.worker.inflight_frames += len(matrix)
            session.feature_pending += 1
            self._pending_feats.append((session_id, matrix))
            self.stats.frames_pushed += len(matrix)
            self._score_cv.notify()
            return len(matrix)

    def _reserve(self, worker: "_WorkerHandle", frames: int) -> None:
        """Backpressure gate: shed the push if it would overflow the
        shard's unacked-frame budget (call with the lock held)."""
        if worker.inflight_frames + frames > self.tier_config.queue_depth:
            self._pump()  # acks may already be queued on the pipe
        if worker.inflight_frames + frames > self.tier_config.queue_depth:
            self.stats.pushes_shed += 1
            raise BackpressureError(
                f"shard {worker.index} queue saturated "
                f"({worker.inflight_frames} frames in flight, depth "
                f"{self.tier_config.queue_depth}); retry later"
            )

    # ------------------------------------------------------------------
    # Shared-memory score-plane transport
    # ------------------------------------------------------------------
    def _ensure_ring(self, worker: "_WorkerHandle") -> ScorePlaneRing:
        """The worker's double-buffered plane ring, created (and
        announced to the worker) on first ship.  Call with the lock held
        and ``self._frame_width`` established."""
        if worker.ring is None:
            assert self._frame_width is not None
            plane_frames = self.tier_config.plane_frames or min(
                self.tier_config.queue_depth, 8192
            )
            worker.ring = ScorePlaneRing(plane_frames, self._frame_width)
            worker.conn.send(
                ("ring", worker.ring.name, plane_frames, self._frame_width)
            )
        return worker.ring

    def _ring_alloc(
        self, worker: "_WorkerHandle", frames: int
    ) -> Tuple[int, int, np.ndarray]:
        """Reserve plane rows, draining acks through a flip stall (the
        ALB stall: the plane being flipped to still has unacked chunks).
        Every unacked chunk is decoding on the worker, so the stall
        always resolves; the deadline guards a dead worker."""
        ring = self._ensure_ring(worker)
        deadline = time.monotonic() + 30.0
        stalled = False
        while True:
            slot = ring.try_alloc(frames)
            if slot is not None:
                return slot
            if not stalled:
                stalled = True
                self.stats.ring_stalls += 1
            self._pump(block_worker=worker)
            if not worker.process.is_alive():
                raise TierError(
                    f"worker {worker.index} died with score-plane "
                    f"chunks outstanding"
                )
            if time.monotonic() > deadline:
                raise TierError(
                    f"worker {worker.index} acked no score-plane chunk "
                    f"for 30s; plane flip stalled"
                )

    def _ship_rows(
        self,
        worker: "_WorkerHandle",
        session_id: int,
        matrix: np.ndarray,
        reserved: bool = False,
    ) -> None:
        """Write score rows into the worker's plane ring and send the
        descriptors (call with the lock held).  Chunks larger than a
        plane ship as several descriptors."""
        ring = self._ensure_ring(worker)
        for start in range(0, len(matrix), ring.plane_frames):
            part = matrix[start: start + ring.plane_frames]
            generation, offset, view = self._ring_alloc(worker, len(part))
            view[:] = part
            self._send_descriptor(
                worker, session_id, generation, offset, len(part),
                reserved=reserved,
            )

    def _send_descriptor(
        self,
        worker: "_WorkerHandle",
        session_id: int,
        generation: int,
        offset: int,
        frames: int,
        reserved: bool = False,
    ) -> None:
        """Ship one ``(sid, generation, offset, frames)`` descriptor --
        the only bytes the transport ever pipes per chunk."""
        payload = pickle.dumps(
            ("push", session_id, generation, offset, frames),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        worker.conn.send_bytes(payload)
        if not reserved:
            worker.inflight_frames += frames
        self.stats.frames_shipped += frames
        self.stats.descriptors_shipped += 1
        self.stats.ipc_bytes_shipped += len(payload)

    def _score_pump(self) -> None:
        """Scoring-thread main loop: grab everything the fleet has
        pushed since the last pass and score it as one batch.  A batch
        failure (in practice: a dead worker detected mid-allocation)
        poisons its sessions and stops the thread; healthy paths cannot
        raise because chunks are validated at the door."""
        while True:
            with self._score_cv:
                while not self._pending_feats and not self._shut_down:
                    self._score_cv.wait(0.1)
                if not self._pending_feats:
                    return  # shut down with nothing left to ship
                batch = self._pending_feats
                self._pending_feats = []
            try:
                self._score_batch(batch)
            # A thread must never die silently mid-batch: poison the
            # batch's sessions with the error instead of hanging their
            # result() callers.
            except Exception as exc:  # repro-lint: disable=REP002
                with self._lock:
                    for sid, _ in batch:
                        session = self._sessions.get(sid)
                        if session is None:
                            continue
                        session.feature_pending = 0
                        if session.record is None:
                            session.remote_error = (
                                f"{type(exc).__name__}: {exc}"
                            )
                return

    def _score_batch(self, batch: List[Tuple[int, np.ndarray]]) -> None:
        """One batched scoring pass over everything the fleet pushed.

        The batch is expanded into plane-sized parts and shipped in
        **slices**: each slice allocates as many ring slots as the
        planes hold without a flip stall, runs one stacked forward
        straight into the shared-memory views, and sends the
        descriptors.  Only the *first* part of a slice may block on a
        stall -- at that point every earlier part's descriptor is on the
        pipe, so the worker can decode and ack it.  (Allocating a whole
        over-capacity batch before shipping anything would wait on acks
        for chunks the worker has never heard of.)
        """
        scorer = self._batch_scorer
        assert scorer is not None
        plane_frames = self.tier_config.plane_frames or min(
            self.tier_config.queue_depth, 8192
        )
        # (sid, part, is the last part of its push_features chunk)
        work: List[Tuple[int, np.ndarray, bool]] = []
        for sid, matrix in batch:
            starts = range(0, len(matrix), plane_frames)
            for start in starts:
                work.append((
                    sid,
                    matrix[start: start + plane_frames],
                    start == starts[-1],
                ))
        index = 0
        while index < len(work):
            index = self._score_slice(scorer, work, index)

    def _score_slice(
        self,
        scorer: BatchScorer,
        work: List[Tuple[int, np.ndarray, bool]],
        start: int,
    ) -> int:
        """Allocate, score, and ship one ring-capacity slice of
        ``work`` starting at ``start``; returns the index of the first
        part left for the next slice."""
        parts: List[np.ndarray] = []
        views: List[np.ndarray] = []
        dests: List[Tuple[_WorkerHandle, int, int, int, int, bool]] = []
        index = start
        with self._lock:
            while index < len(work):
                sid, part, last = work[index]
                session = self._sessions.get(sid)
                if session is None or session.record is not None:
                    # Retired under us; this part's share of the
                    # reservation dies with it.
                    if session is not None:
                        session.worker.inflight_frames = max(
                            0, session.worker.inflight_frames - len(part)
                        )
                    index += 1
                    if last:
                        self._finish_feature_push(sid)
                    continue
                worker = session.worker
                ring = self._ensure_ring(worker)
                slot = ring.try_alloc(len(part))
                if slot is None:
                    if parts:
                        break  # ship this slice; its acks free the flip
                    # First part of the slice: everything earlier has
                    # shipped, so acks can arrive -- drain them.
                    slot = self._ring_alloc(worker, len(part))
                generation, offset, view = slot
                parts.append(part)
                views.append(view)
                dests.append(
                    (worker, sid, generation, offset, len(part), last)
                )
                index += 1
        elapsed = 0.0
        if parts:
            t0 = time.perf_counter()
            scorer.score_chunks(parts, out=views)
            elapsed = time.perf_counter() - t0
        with self._lock:
            if parts:
                self.stats.scored_frames += sum(len(p) for p in parts)
                self.stats.score_seconds += elapsed
                self.stats.score_batches += 1
            for worker, sid, generation, offset, frames, last in dests:
                self._send_descriptor(
                    worker, sid, generation, offset, frames, reserved=True
                )
                if last:
                    self._finish_feature_push(sid)
        return index

    def _finish_feature_push(self, session_id: int) -> None:
        """The last part of one ``push_features`` chunk has shipped (or
        died with its session): release the pending count and send any
        deferred close (call with the lock held)."""
        session = self._sessions.get(session_id)
        if session is None:
            return
        session.feature_pending = max(0, session.feature_pending - 1)
        if (
            session.closed
            and session.feature_pending == 0
            and not session.close_sent
            and session.record is None
        ):
            session.close_sent = True
            session.worker.conn.send(("close", session_id))

    def close_input(self, session_id: int) -> None:
        """Mark end of stream; the shard retires the session after its
        buffered frames drain.  For a features session with chunks still
        awaiting the batched scorer, the close is deferred until the
        scoring thread ships the last of them."""
        with self._lock:
            self._require_up()
            session = self._require_live(session_id)
            if not session.closed:
                session.closed = True
                if session.feature_pending == 0:
                    session.close_sent = True
                    session.worker.conn.send(("close", session_id))

    def result(self, session_id: int, timeout: Optional[float] = None) -> SessionRecord:
        """Block until the session's terminal record arrives back.

        Raises:
            DecodeError: unknown session id.
            TierError: the record did not arrive within ``timeout``
                seconds, or the session's worker died.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                session = self._sessions.get(session_id)
                if session is None:
                    raise DecodeError(f"unknown session {session_id}")
                if session.record is not None:
                    return session.record
                self._pump(block_worker=session.worker)
                if session.record is not None:
                    return session.record
                if not session.worker.process.is_alive():
                    raise TierError(
                        f"worker {session.worker.index} died before "
                        f"returning session {session_id}"
                        + (f" (last error: {session.remote_error})"
                           if session.remote_error else "")
                    )
            if deadline is not None and time.monotonic() > deadline:
                raise TierError(
                    f"session {session_id} produced no record within "
                    f"{timeout:.1f}s"
                )

    def poll(self) -> None:
        """Drain any queued worker replies without blocking."""
        with self._lock:
            self._pump()

    # ------------------------------------------------------------------
    # Asyncio front door
    # ------------------------------------------------------------------
    async def aopen_session(self, mode: str = "scores") -> int:
        return await asyncio.to_thread(self.open_session, mode)

    async def apush(self, session_id: int, chunk: Chunk) -> int:
        return await asyncio.to_thread(self.push, session_id, chunk)

    async def apush_features(
        self, session_id: int, features: np.ndarray
    ) -> int:
        return await asyncio.to_thread(self.push_features, session_id, features)

    async def aclose_input(self, session_id: int) -> None:
        await asyncio.to_thread(self.close_input, session_id)

    async def aresult(
        self, session_id: int, timeout: Optional[float] = None
    ) -> SessionRecord:
        return await asyncio.to_thread(self.result, session_id, timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def live_sessions(self) -> int:
        """Sessions admitted whose terminal record has not arrived yet."""
        with self._lock:
            return sum(
                1 for s in self._sessions.values() if s.record is None
            )

    def worker_of(self, session_id: int) -> int:
        """Shard index the session is (or was) pinned to."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise DecodeError(f"unknown session {session_id}")
            return session.worker.index

    @property
    def worker_stats(self) -> List[Optional[ServerStats]]:
        """Each shard's final ServerStats (populated at shutdown)."""
        return [w.server_stats for w in self._workers]

    # ------------------------------------------------------------------
    # Convenience driver (mirrors StreamingServer.decode_streaming)
    # ------------------------------------------------------------------
    def decode_streaming(
        self,
        scores_batch: Sequence[Chunk],
        chunk_frames: int = 10,
        mode: str = "scores",
    ) -> List[DecodeResult]:
        """Serve whole utterances as concurrent chunked sessions.

        With ``mode="features"`` the inputs are MFCC feature matrices
        and the tier's scoring thread batches them across sessions.
        Results come back in input order and match
        ``BatchDecoder.decode_batch`` word for word; any session failure
        raises its error as a :class:`DecodeError`.
        """
        if chunk_frames < 1:
            raise ConfigError("chunk_frames must be >= 1")
        push = self.push_features if mode == "features" else self.push
        matrices = [chunk_matrix(scores) for scores in scores_batch]
        sids = [self.open_session(mode=mode) for _ in matrices]
        offsets = [0] * len(matrices)
        while True:
            pushed = False
            for i, (sid, matrix) in enumerate(zip(sids, matrices)):
                if offsets[i] >= len(matrix):
                    continue
                chunk = matrix[offsets[i]: offsets[i] + chunk_frames]
                push(sid, chunk)
                offsets[i] += len(chunk)
                pushed = True
            if not pushed:
                break
        for sid in sids:
            self.close_input(sid)
        records = [self.result(sid) for sid in sids]
        results = []
        for record in records:
            if record.error is not None:
                raise DecodeError(f"session {record.session_id}: {record.error}")
            results.append(record.result)
        return results

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every shard, collecting final records and shard stats.

        The scoring thread drains first (shipping any still-pending
        feature chunks and their deferred closes), then the workers are
        stopped, then the front door unlinks the score-plane segments it
        owns."""
        with self._score_cv:
            if self._shut_down:
                return
            self._shut_down = True
            self._score_cv.notify_all()
        if self._score_thread is not None:
            self._score_thread.join(timeout)
        with self._lock:
            for worker in self._workers:
                try:
                    worker.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
            deadline = time.monotonic() + timeout
            for worker in self._workers:
                while worker.server_stats is None and worker.process.is_alive():
                    if time.monotonic() > deadline:
                        break
                    self._pump(block_worker=worker)
                self._pump()
            for worker in self._workers:
                worker.process.join(max(0.1, deadline - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(1.0)
                worker.conn.close()
                if worker.ring is not None:
                    worker.ring.close()
                    worker.ring = None

    def __enter__(self) -> "ServingTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def _require_up(self) -> None:
        if self._shut_down:
            raise TierError("serving tier is shut down")

    def _require_live(self, session_id: int) -> _TierSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise DecodeError(f"unknown session {session_id}")
        if session.record is not None:
            why = session.record.error or "finished cleanly"
            raise DecodeError(f"session {session_id} already retired: {why}")
        return session

    def _pump(self, block_worker: Optional[_WorkerHandle] = None) -> None:
        """Drain worker replies; optionally wait briefly on one worker."""
        for worker in self._workers:
            timeout = 0.05 if worker is block_worker else 0
            while True:
                try:
                    if not worker.conn.poll(timeout):
                        break
                    msg = worker.conn.recv()
                except (EOFError, OSError):
                    break
                timeout = 0
                kind = msg[0]
                if kind == "ack":
                    worker.inflight_frames = max(
                        0, worker.inflight_frames - msg[2]
                    )
                    if worker.ring is not None:
                        worker.ring.release(msg[3])
                elif kind == "record":
                    self._finish(msg[1], msg[2])
                elif kind == "error":
                    session = self._sessions.get(msg[1])
                    if session is not None and session.record is None:
                        session.remote_error = f"{msg[2]}: {msg[3]}"
                elif kind == "stats":
                    worker.server_stats = msg[1]

    def _finish(self, session_id: int, record: SessionRecord) -> None:
        session = self._sessions.get(session_id)
        if session is None or session.record is not None:
            return
        session.record = record
        session.worker.live -= 1
        now = self._clock()
        self._last_record_t = now
        stats = self.stats
        if record.ok:
            stats.sessions_finished += 1
        else:
            stats.sessions_failed += 1
        stats.frames_decoded += record.stats.frames_decoded
        stats.session_latencies_s.append(max(0.0, now - session.opened_t))
        stats.session_mean_waits_s.append(record.stats.mean_wait_s)
        stats.session_decode_s.append(record.stats.decode_seconds)
        stats.trace_peak_bytes = max(
            stats.trace_peak_bytes, record.stats.trace_peak_bytes
        )
        stats.committed_frames += record.stats.committed_frames
        if self._first_open_t is not None:
            stats.serving_seconds = max(0.0, now - self._first_open_t)
