"""Sharded serving tier: a front door routing live sessions to a pool of
decode worker processes over one memory-mapped graph (beyond-paper
serving layer; the ROADMAP's "millions of users" scaling step over the
single-process :class:`~repro.system.server.StreamingServer`).

The shape is the classic datacenter serving tier the paper's Section VI
server-workload discussion assumes around the accelerator:

* **front door** (:class:`ServingTier`) -- admits sessions, applies
  admission control (``max_sessions`` live sessions tier-wide, load-shed
  with a typed :class:`~repro.common.errors.AdmissionError`) and
  backpressure (a bounded per-shard frame queue, saturated pushes shed
  with a typed :class:`~repro.common.errors.BackpressureError`), and
  routes every session **with affinity** to one shard: all of a
  session's chunks decode on the worker that admitted it, so streaming
  state never migrates.  Every method has an ``asyncio`` twin
  (:meth:`ServingTier.aopen_session` etc.) so an async gateway can drive
  the tier without blocking its event loop.
* **shards** -- ``num_workers`` processes, each running a
  :class:`StreamingServer` doing fused continuous-batching sweeps over
  its sessions.  Workers load the graph from an **mmap layout**
  (:func:`repro.wfst.io.load_graph_mmap`): uncompressed ``.npy`` arrays
  mapped read-only, so N workers share one physical copy of the graph
  through the OS page cache instead of N private copies.
* **SLO accounting** -- per-session end-to-end latency and queue-wait /
  decode-time records flow back with each retired session;
  :meth:`TierStats.slo` summarises server-level p50/p99.

Because each session decodes on exactly one worker's ``StreamingServer``
(bit-identical to one-shot decoding), the tier's per-session output is
word-for-word identical to ``BatchDecoder.decode`` -- the correctness
anchor of ``benchmarks/bench_serving_tier.py`` and
``tests/test_serving_tier.py``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.common.errors import (
    AdmissionError,
    BackpressureError,
    ConfigError,
    DecodeError,
    ReproError,
    TierError,
)
from repro.decoder.backends import resolve_backend
from repro.decoder.kernel import DecoderConfig
from repro.decoder.result import DecodeResult
from repro.decoder.session import Chunk, chunk_matrix
from repro.system.server import (
    ServerConfig,
    ServerStats,
    SessionRecord,
    StreamingServer,
)
from repro.wfst.io import load_graph_mmap, save_graph_mmap
from repro.wfst.layout import CompiledWfst


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class TierConfig:
    """Front-door and shard knobs.

    Attributes:
        num_workers: decode worker processes (shards).
        max_sessions: tier-wide admission limit on concurrently live
            sessions; joins beyond it are load-shed with a typed
            :class:`AdmissionError` (0 = unlimited).
        queue_depth: bound on frames per shard that have been shipped but
            not yet acknowledged by the worker; pushes that would exceed
            it are load-shed with a typed :class:`BackpressureError`.
        max_batch: per-worker fused-sweep cap (forwarded to each shard's
            :class:`~repro.system.server.ServerConfig`).
        start_method: multiprocessing start method; ``None`` picks
            ``fork`` where available (workers then inherit the mapped
            graph pages directly), ``spawn`` elsewhere.
    """

    num_workers: int = 2
    max_sessions: int = 0
    queue_depth: int = 4096
    max_batch: int = 64
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        if self.max_sessions < 0:
            raise ConfigError("max_sessions must be >= 0")
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if self.start_method is not None and (
            self.start_method not in multiprocessing.get_all_start_methods()
        ):
            raise ConfigError(
                f"unknown start method {self.start_method!r} (available: "
                f"{multiprocessing.get_all_start_methods()})"
            )


@dataclass
class TierStats:
    """Front-door counters plus the per-session SLO samples."""

    #: Resolved kernel array backend every shard's fused sweeps run on
    #: ("numpy"/"numba"); recorded at tier construction from the search
    #: config (workers resolve the same config, so the names agree).
    kernel_backend: str = ""
    sessions_admitted: int = 0
    sessions_rejected: int = 0   #: joins shed at the admission limit
    pushes_shed: int = 0         #: pushes shed by shard backpressure
    sessions_finished: int = 0
    sessions_failed: int = 0
    frames_pushed: int = 0
    frames_decoded: int = 0
    #: end-to-end seconds from admission to the record arriving back.
    session_latencies_s: List[float] = field(default_factory=list)
    #: per-session mean frame queue-wait seconds (from the shard server).
    session_mean_waits_s: List[float] = field(default_factory=list)
    #: per-session attributed decode seconds.
    session_decode_s: List[float] = field(default_factory=list)
    #: wall-clock of the serving window (first admission -> last record).
    serving_seconds: float = 0.0
    #: largest per-session traceback-buffer high-water mark, in bytes --
    #: flat in session length once commits are enabled, the tier-level
    #: signal that long sessions do not grow memory without bound.
    trace_peak_bytes: int = 0
    #: committed (stable-prefix) frames summed over finished sessions.
    committed_frames: int = 0

    @property
    def aggregate_frames_per_second(self) -> float:
        """Decoded frames per wall-clock second of the serving window."""
        if self.serving_seconds <= 0.0:
            return 0.0
        return self.frames_decoded / self.serving_seconds

    def slo(self) -> Dict[str, float]:
        """Server-level SLO summary: p50/p99 latency and queue wait."""
        def pct(samples: List[float], q: float) -> float:
            return float(np.percentile(samples, q)) if samples else 0.0

        return {
            "sessions": self.sessions_finished,
            "p50_session_latency_s": pct(self.session_latencies_s, 50),
            "p99_session_latency_s": pct(self.session_latencies_s, 99),
            "p50_mean_wait_s": pct(self.session_mean_waits_s, 50),
            "p99_mean_wait_s": pct(self.session_mean_waits_s, 99),
            "aggregate_frames_per_second": self.aggregate_frames_per_second,
            "trace_memory_bytes": float(self.trace_peak_bytes),
            "committed_frames": float(self.committed_frames),
        }


class _TierSession:
    """Front-door view of one routed session."""

    __slots__ = ("sid", "worker", "opened_t", "closed", "record", "remote_error")

    def __init__(self, sid: int, worker: "_WorkerHandle", opened_t: float) -> None:
        self.sid = sid
        self.worker = worker
        self.opened_t = opened_t
        self.closed = False
        self.record: Optional[SessionRecord] = None
        self.remote_error: Optional[str] = None


class _WorkerHandle:
    """One shard: its process, duplex pipe, and load accounting."""

    __slots__ = ("index", "process", "conn", "live", "inflight_frames", "server_stats")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.live = 0                 #: sessions currently routed here
        self.inflight_frames = 0      #: shipped frames not yet acked
        self.server_stats: Optional[ServerStats] = None


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(conn, graph_dir, search_config, server_config) -> None:
    """Shard main loop: a StreamingServer fed by the front-door pipe.

    Commands: ``("open", sid)``, ``("push", sid, matrix)``,
    ``("close", sid)``, ``("stop",)``.  Replies: ``("ack", sid, frames)``
    for every push (consumed or not -- the ack releases the front door's
    backpressure budget), ``("error", sid, type, text)`` when a command
    fails, ``("record", sid, SessionRecord)`` when a session retires, and
    one final ``("stats", ServerStats)`` before exit.

    The loop blocks on the pipe only when no frames are buffered;
    otherwise it polls and sweeps, so decode proceeds while the front
    door is busy elsewhere.
    """
    graph = load_graph_mmap(graph_dir)
    server = StreamingServer(graph, search_config, server_config)
    to_internal: Dict[int, int] = {}
    to_external: Dict[int, int] = {}
    shipped = set()
    running = True

    def ship_finished() -> None:
        for isid in server.finished_session_ids:
            ext = to_external.get(isid)
            if ext is None or ext in shipped:
                continue
            record = server.result(isid)
            record.stats.session_id = ext
            conn.send(("record", ext, dataclasses.replace(record, session_id=ext)))
            shipped.add(ext)

    while True:
        idle = server.pending_frames == 0
        if conn.poll(None if (idle and running) else 0):
            try:
                msg = conn.recv()
            except EOFError:
                break
            op = msg[0]
            if op == "open":
                ext = msg[1]
                try:
                    isid = server.open_session()
                except ReproError as exc:
                    conn.send(("error", ext, type(exc).__name__, str(exc)))
                else:
                    to_internal[ext] = isid
                    to_external[isid] = ext
            elif op == "push":
                ext, matrix = msg[1], msg[2]
                try:
                    server.push(to_internal[ext], matrix)
                except (KeyError, ReproError) as exc:
                    conn.send(("error", ext, type(exc).__name__, str(exc)))
                conn.send(("ack", ext, len(matrix)))
            elif op == "close":
                ext = msg[1]
                try:
                    server.close_input(to_internal[ext])
                except (KeyError, ReproError):
                    pass  # already retired; its record is shipped below
            elif op == "stop":
                running = False
        elif server.pending_frames:
            server.step()
        ship_finished()
        if not running and not server.pending_frames:
            # Shutdown: close whatever input is still open so every
            # admitted session gets a terminal record.
            for isid in list(to_external):
                if server.is_live(isid):
                    try:
                        server.close_input(isid)
                    except ReproError:
                        pass
            server.drain()
            ship_finished()
            break
    conn.send(("stats", server.stats))
    conn.close()


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------
class ServingTier:
    """Route live decode sessions across a pool of worker shards.

    Construct from either an in-memory ``graph`` (materialised to an mmap
    layout in a temporary directory) or a pre-materialised ``graph_dir``
    (e.g. :meth:`repro.graph.cache.GraphCache.mmap_dir`).  Use as a
    context manager, or call :meth:`shutdown` explicitly.

    The synchronous methods are thread-safe; the ``a``-prefixed
    coroutines run them in a thread so an asyncio gateway can serve many
    connections over one tier without blocking its loop.
    """

    def __init__(
        self,
        graph: Optional[CompiledWfst] = None,
        search_config: DecoderConfig = DecoderConfig(),
        tier_config: TierConfig = TierConfig(),
        *,
        graph_dir: Optional[str] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if (graph is None) == (graph_dir is None):
            raise ConfigError(
                "construct ServingTier with exactly one of graph= or graph_dir="
            )
        if graph is not None:
            tmp = tempfile.mkdtemp(prefix="repro-tier-graph-")
            graph_dir = save_graph_mmap(graph, os.path.join(tmp, "graph.mmap"))
        self.graph_dir = graph_dir
        self.tier_config = tier_config
        self.search_config = search_config
        # Resolve here with the same rules every worker applies to the
        # pickled search config, so the recorded name matches the shards
        # (and any numba-missing fallback warns in the front door too).
        self.stats = TierStats(
            kernel_backend=resolve_backend(search_config.backend).name
        )
        self._clock = clock
        self._lock = threading.RLock()
        self._next_sid = 0
        self._sessions: Dict[int, _TierSession] = {}
        self._first_open_t: Optional[float] = None
        self._last_record_t: Optional[float] = None
        self._shut_down = False
        # The mapped load touches no array data; the front door only needs
        # the ilabel width to validate chunks before shipping them.
        front_graph = graph if graph is not None else load_graph_mmap(graph_dir)
        self._min_score_width = (
            int(front_graph.arc_ilabel.max()) + 1
            if len(front_graph.arc_ilabel)
            else 1
        )
        self._frame_width: Optional[int] = None

        ctx = multiprocessing.get_context(
            tier_config.start_method or _default_start_method()
        )
        shard_config = ServerConfig(max_batch=tier_config.max_batch)
        self._workers: List[_WorkerHandle] = []
        for index in range(tier_config.num_workers):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, graph_dir, search_config, shard_config),
                daemon=True,
                name=f"repro-tier-worker-{index}",
            )
            process.start()
            child_conn.close()
            self._workers.append(_WorkerHandle(index, process, parent_conn))

    # ------------------------------------------------------------------
    # Session lifecycle (sync front door)
    # ------------------------------------------------------------------
    def open_session(self) -> int:
        """Admit a new live stream and route it to the least-loaded shard.

        Raises:
            AdmissionError: the tier already serves ``max_sessions`` live
                sessions; the join is load-shed, nobody else is affected.
        """
        with self._lock:
            self._require_up()
            self._pump()
            limit = self.tier_config.max_sessions
            live = sum(w.live for w in self._workers)
            if limit and live >= limit:
                self.stats.sessions_rejected += 1
                raise AdmissionError(
                    f"serving tier at its admission limit ({limit} live "
                    f"sessions); retry after a session retires"
                )
            worker = min(self._workers, key=lambda w: (w.live, w.index))
            sid = self._next_sid
            self._next_sid += 1
            now = self._clock()
            self._sessions[sid] = _TierSession(sid, worker, now)
            worker.live += 1
            worker.conn.send(("open", sid))
            self.stats.sessions_admitted += 1
            if self._first_open_t is None:
                self._first_open_t = now
            return sid

    def push(self, session_id: int, chunk: Chunk) -> int:
        """Validate a chunk at the door and ship it to the session's shard.

        Raises:
            DecodeError: unknown/retired session, or a malformed chunk
                (wrong rank, too narrow for the graph's phone ids, or a
                width disagreeing with the fleet's established width) --
                rejected here, before any IPC, so a bad chunk never
                reaches a shard where other sessions' frames are in
                flight.
            BackpressureError: the shard's bounded queue is saturated;
                the push is load-shed and may be retried.
        """
        matrix = chunk_matrix(chunk)
        width = matrix.shape[1] if len(matrix) else None
        with self._lock:
            self._require_up()
            self._pump()
            session = self._require_live(session_id)
            if width is not None:
                if width < self._min_score_width:
                    raise DecodeError(
                        f"score rows must have at least "
                        f"{self._min_score_width} entries (one per phone id "
                        f"on the graph), got {width}"
                    )
                if self._frame_width is None:
                    self._frame_width = width
                elif width != self._frame_width:
                    raise DecodeError(
                        f"score rows must be {self._frame_width} wide like "
                        f"every other session's (got {width}); one tier "
                        f"serves one acoustic model"
                    )
            worker = session.worker
            if worker.inflight_frames + len(matrix) > self.tier_config.queue_depth:
                self._pump()  # acks may already be queued on the pipe
            if worker.inflight_frames + len(matrix) > self.tier_config.queue_depth:
                self.stats.pushes_shed += 1
                raise BackpressureError(
                    f"shard {worker.index} queue saturated "
                    f"({worker.inflight_frames} frames in flight, depth "
                    f"{self.tier_config.queue_depth}); retry later"
                )
            worker.conn.send(("push", session_id, np.ascontiguousarray(matrix)))
            worker.inflight_frames += len(matrix)
            self.stats.frames_pushed += len(matrix)
            return len(matrix)

    def close_input(self, session_id: int) -> None:
        """Mark end of stream; the shard retires the session after its
        buffered frames drain."""
        with self._lock:
            self._require_up()
            session = self._require_live(session_id)
            if not session.closed:
                session.closed = True
                session.worker.conn.send(("close", session_id))

    def result(self, session_id: int, timeout: Optional[float] = None) -> SessionRecord:
        """Block until the session's terminal record arrives back.

        Raises:
            DecodeError: unknown session id.
            TierError: the record did not arrive within ``timeout``
                seconds, or the session's worker died.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                session = self._sessions.get(session_id)
                if session is None:
                    raise DecodeError(f"unknown session {session_id}")
                if session.record is not None:
                    return session.record
                self._pump(block_worker=session.worker)
                if session.record is not None:
                    return session.record
                if not session.worker.process.is_alive():
                    raise TierError(
                        f"worker {session.worker.index} died before "
                        f"returning session {session_id}"
                        + (f" (last error: {session.remote_error})"
                           if session.remote_error else "")
                    )
            if deadline is not None and time.monotonic() > deadline:
                raise TierError(
                    f"session {session_id} produced no record within "
                    f"{timeout:.1f}s"
                )

    def poll(self) -> None:
        """Drain any queued worker replies without blocking."""
        with self._lock:
            self._pump()

    # ------------------------------------------------------------------
    # Asyncio front door
    # ------------------------------------------------------------------
    async def aopen_session(self) -> int:
        return await asyncio.to_thread(self.open_session)

    async def apush(self, session_id: int, chunk: Chunk) -> int:
        return await asyncio.to_thread(self.push, session_id, chunk)

    async def aclose_input(self, session_id: int) -> None:
        await asyncio.to_thread(self.close_input, session_id)

    async def aresult(
        self, session_id: int, timeout: Optional[float] = None
    ) -> SessionRecord:
        return await asyncio.to_thread(self.result, session_id, timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def live_sessions(self) -> int:
        """Sessions admitted whose terminal record has not arrived yet."""
        with self._lock:
            return sum(
                1 for s in self._sessions.values() if s.record is None
            )

    def worker_of(self, session_id: int) -> int:
        """Shard index the session is (or was) pinned to."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise DecodeError(f"unknown session {session_id}")
            return session.worker.index

    @property
    def worker_stats(self) -> List[Optional[ServerStats]]:
        """Each shard's final ServerStats (populated at shutdown)."""
        return [w.server_stats for w in self._workers]

    # ------------------------------------------------------------------
    # Convenience driver (mirrors StreamingServer.decode_streaming)
    # ------------------------------------------------------------------
    def decode_streaming(
        self,
        scores_batch: Sequence[Chunk],
        chunk_frames: int = 10,
    ) -> List[DecodeResult]:
        """Serve whole utterances as concurrent chunked sessions.

        Results come back in input order and match
        ``BatchDecoder.decode_batch`` word for word; any session failure
        raises its error as a :class:`DecodeError`.
        """
        if chunk_frames < 1:
            raise ConfigError("chunk_frames must be >= 1")
        matrices = [chunk_matrix(scores) for scores in scores_batch]
        sids = [self.open_session() for _ in matrices]
        offsets = [0] * len(matrices)
        while True:
            pushed = False
            for i, (sid, matrix) in enumerate(zip(sids, matrices)):
                if offsets[i] >= len(matrix):
                    continue
                chunk = matrix[offsets[i]: offsets[i] + chunk_frames]
                self.push(sid, chunk)
                offsets[i] += len(chunk)
                pushed = True
            if not pushed:
                break
        for sid in sids:
            self.close_input(sid)
        records = [self.result(sid) for sid in sids]
        results = []
        for record in records:
            if record.error is not None:
                raise DecodeError(f"session {record.session_id}: {record.error}")
            results.append(record.result)
        return results

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every shard, collecting final records and shard stats."""
        with self._lock:
            if self._shut_down:
                return
            self._shut_down = True
            for worker in self._workers:
                try:
                    worker.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
            deadline = time.monotonic() + timeout
            for worker in self._workers:
                while worker.server_stats is None and worker.process.is_alive():
                    if time.monotonic() > deadline:
                        break
                    self._pump(block_worker=worker)
                self._pump()
            for worker in self._workers:
                worker.process.join(max(0.1, deadline - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(1.0)
                worker.conn.close()

    def __enter__(self) -> "ServingTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def _require_up(self) -> None:
        if self._shut_down:
            raise TierError("serving tier is shut down")

    def _require_live(self, session_id: int) -> _TierSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise DecodeError(f"unknown session {session_id}")
        if session.record is not None:
            why = session.record.error or "finished cleanly"
            raise DecodeError(f"session {session_id} already retired: {why}")
        return session

    def _pump(self, block_worker: Optional[_WorkerHandle] = None) -> None:
        """Drain worker replies; optionally wait briefly on one worker."""
        for worker in self._workers:
            timeout = 0.05 if worker is block_worker else 0
            while True:
                try:
                    if not worker.conn.poll(timeout):
                        break
                    msg = worker.conn.recv()
                except (EOFError, OSError):
                    break
                timeout = 0
                kind = msg[0]
                if kind == "ack":
                    worker.inflight_frames = max(
                        0, worker.inflight_frames - msg[2]
                    )
                elif kind == "record":
                    self._finish(msg[1], msg[2])
                elif kind == "error":
                    session = self._sessions.get(msg[1])
                    if session is not None and session.record is None:
                        session.remote_error = f"{msg[2]}: {msg[3]}"
                elif kind == "stats":
                    worker.server_stats = msg[1]

    def _finish(self, session_id: int, record: SessionRecord) -> None:
        session = self._sessions.get(session_id)
        if session is None or session.record is not None:
            return
        session.record = record
        session.worker.live -= 1
        now = self._clock()
        self._last_record_t = now
        stats = self.stats
        if record.ok:
            stats.sessions_finished += 1
        else:
            stats.sessions_failed += 1
        stats.frames_decoded += record.stats.frames_decoded
        stats.session_latencies_s.append(max(0.0, now - session.opened_t))
        stats.session_mean_waits_s.append(record.stats.mean_wait_s)
        stats.session_decode_s.append(record.stats.decode_seconds)
        stats.trace_peak_bytes = max(
            stats.trace_peak_bytes, record.stats.trace_peak_bytes
        )
        stats.committed_frames += record.stats.committed_frames
        if self._first_open_t is not None:
            stats.serving_seconds = max(0.0, now - self._first_open_t)
