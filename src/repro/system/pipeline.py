"""Overall ASR system: GPU (DNN) + accelerator (Viterbi), pipelined.

Paper, Section III-A and VI: input frames are grouped into batches; the GPU
evaluates the DNN for batch *i* while the accelerator searches batch *i-1*.
Acoustic scores stream into the double-buffered Acoustic Likelihood Buffer,
overlapping the transfer with decoding.  The paper reports 1.87x for this
hybrid system over running both stages sequentially on the GPU.

The model computes steady-state pipeline throughput: per batch the system
advances at the pace of the slower stage, plus the one-time fill latency of
the first batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class PipelineTimes:
    """Timing of the two pipeline stages over one batch of frames."""

    dnn_seconds: float
    search_seconds: float
    transfer_seconds: float = 0.0

    @property
    def bottleneck_seconds(self) -> float:
        """Steady-state time per batch: the slower stage dominates; the
        score transfer is hidden by the double buffer unless it exceeds
        the search time."""
        return max(
            self.dnn_seconds, max(self.search_seconds, self.transfer_seconds)
        )


@dataclass(frozen=True)
class AsrSystemModel:
    """End-to-end latency/throughput of hybrid and GPU-only systems."""

    batch_frames: int = 100
    pcie_gbs: float = 12.0  # effective PCIe 3.0 x16 bandwidth

    def transfer_seconds(self, score_bytes_per_frame: int) -> float:
        """DMA time for one batch of acoustic scores."""
        if score_bytes_per_frame < 0:
            raise ConfigError("score bytes must be non-negative")
        total = score_bytes_per_frame * self.batch_frames
        return total / (self.pcie_gbs * 1e9)

    def hybrid_seconds(
        self,
        total_frames: int,
        dnn_seconds_per_frame: float,
        accel_search_seconds_per_frame: float,
        score_bytes_per_frame: int = 0,
    ) -> float:
        """GPU(DNN) + accelerator(search), pipelined over batches.

        Exact two-stage pipeline makespan: the first batch's DNN fills the
        pipeline, each further step advances at the slower of (next
        batch's DNN) and (previous batch's search + transfer), and the
        last batch's search drains it.
        """
        if total_frames <= 0:
            raise ConfigError("total_frames must be positive")
        full, rem = divmod(total_frames, self.batch_frames)
        chunks = [self.batch_frames] * full + ([rem] if rem else [])

        def transfer(frames: int) -> float:
            return frames * score_bytes_per_frame / (self.pcie_gbs * 1e9)

        dnn_t = [c * dnn_seconds_per_frame for c in chunks]
        search_t = [
            max(c * accel_search_seconds_per_frame, transfer(c))
            for c in chunks
        ]
        time = dnn_t[0]
        for i in range(1, len(chunks)):
            time += max(dnn_t[i], search_t[i - 1])
        return time + search_t[-1]

    def gpu_only_seconds(
        self,
        total_frames: int,
        dnn_seconds_per_frame: float,
        gpu_search_seconds_per_frame: float,
    ) -> float:
        """Both stages run sequentially on the GPU (no overlap possible:
        the search depends on the scores of its own batch and both stages
        contend for the same device)."""
        if total_frames <= 0:
            raise ConfigError("total_frames must be positive")
        return total_frames * (
            dnn_seconds_per_frame + gpu_search_seconds_per_frame
        )

    def hybrid_speedup(
        self,
        total_frames: int,
        dnn_seconds_per_frame: float,
        gpu_search_seconds_per_frame: float,
        accel_search_seconds_per_frame: float,
        score_bytes_per_frame: int = 0,
    ) -> float:
        """The paper's in-text result: hybrid vs GPU-only (1.87x)."""
        gpu_only = self.gpu_only_seconds(
            total_frames, dnn_seconds_per_frame, gpu_search_seconds_per_frame
        )
        hybrid = self.hybrid_seconds(
            total_frames,
            dnn_seconds_per_frame,
            accel_search_seconds_per_frame,
            score_bytes_per_frame,
        )
        return gpu_only / hybrid
