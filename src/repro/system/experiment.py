"""Cross-platform experiment harness.

Runs the same workload through every platform the paper compares --
CPU (software decoder + timing model), GPU (data-parallel decoder + timing
model) and the four accelerator configurations (ASIC, ASIC+State, ASIC+Arc,
ASIC+State&Arc) -- and assembles the results the evaluation figures need.
The accelerator variants share one recorded decode trace per graph layout
and are priced by replay (:mod:`repro.accel.replay`), so adding
configurations costs replays, not full simulations.

Workloads come in two flavours:

* :func:`repro.datasets.generate_task` tasks -- full ASR pipelines with
  ground truth (used by the correctness-oriented experiments);
* :func:`make_memory_workload` -- large synthetic Kaldi-like graphs with
  random acoustic scores, exercising the memory system at a realistic
  dataset-to-cache ratio (used by the performance/energy figures; caches
  are scaled with the graph so miss ratios land in the paper's regime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.acoustic.scorer import AcousticScores
from repro.accel.config import AcceleratorConfig
from repro.accel.replay import TraceReplayer
from repro.accel.simulator import AcceleratorResult
from repro.accel.stats import SimStats
from repro.accel.trace import DecodeTrace, TraceRecorder
from repro.datasets.synthetic_graph import SyntheticGraphConfig
from repro.decoder.result import SearchStats
from repro.decoder.viterbi import BeamSearchConfig, ViterbiDecoder
from repro.energy.components import AcceleratorEnergyModel
from repro.energy.cpu_model import CpuTimingModel
from repro.energy.report import EnergyReport, PlatformResult
from repro.gpu.decoder import GpuViterbiDecoder, GpuWorkload
from repro.gpu.model import GpuTimingModel
from repro.wfst.layout import CompiledWfst
from repro.wfst.sorted_layout import SortedWfst, sort_states_by_arc_count

_EPS_COLUMN_SCORE = -1.0e9


@dataclass
class MemoryWorkload:
    """A graph plus score matrices, ready to decode on every platform."""

    graph: CompiledWfst
    sorted_graph: SortedWfst
    scores: List[AcousticScores]
    beam: float
    num_phones: int
    max_active: int = 0

    @property
    def total_frames(self) -> int:
        return sum(s.num_frames for s in self.scores)

    @property
    def speech_seconds(self) -> float:
        return self.total_frames * 0.01


def make_memory_workload(
    num_states: int = 50_000,
    num_utterances: int = 2,
    frames_per_utterance: int = 50,
    num_phones: int = 40,
    beam: float = 8.0,
    max_active: int = 4000,
    score_separation: float = 2.0,
    score_noise: float = 1.0,
    seed: int = 0,
    graph_config: Optional[SyntheticGraphConfig] = None,
    graph: Optional[CompiledWfst] = None,
    graph_cache: Optional["GraphCache"] = None,
) -> MemoryWorkload:
    """Build a memory-system workload on a Kaldi-like synthetic graph.

    Scores follow the hybrid-DNN texture: each frame has a hidden "true"
    phone scoring near zero while every other phone scores around
    ``-score_separation`` with ``score_noise`` jitter.  Paths tracking the
    hidden sequence stay near the beam's best while a broad, sparsely
    distributed cloud of competitors survives within the beam -- the
    active-set behaviour the paper's memory-system study depends on.  The
    active set size is controlled by ``beam`` / ``score_separation`` /
    ``score_noise`` and stays stable across utterance lengths (unlike
    i.i.d. random scores, which are critically unstable).

    The graph comes from the staged graph compiler
    (:func:`repro.graph.compile_graph` on a synthetic recipe); pass
    ``graph_cache`` to share compiled graphs across workloads and runs,
    or ``graph`` to decode a pre-compiled graph directly (``num_phones``
    is then derived from its input labels).
    """
    from repro.graph import GraphRecipe, compile_graph

    if graph is None:
        if graph_config is None:
            graph_config = SyntheticGraphConfig(
                num_states=num_states, num_phones=num_phones, seed=seed
            )
        artifact = compile_graph(
            GraphRecipe.synthetic_graph(graph_config), cache=graph_cache
        )
        graph = artifact.graph
        num_phones = graph_config.num_phones
    else:
        num_phones = int(graph.arc_ilabel.max())
    sorted_graph = sort_states_by_arc_count(graph)

    rng = make_rng(seed, "memory-workload-scores")
    scores = []
    for _ in range(num_utterances):
        frames = frames_per_utterance
        matrix = rng.normal(
            -score_separation,
            score_noise,
            size=(frames, num_phones + 1),
        )
        true_phones = rng.integers(1, num_phones + 1, size=frames)
        matrix[np.arange(frames), true_phones] = rng.normal(
            -0.2, 0.2, size=frames
        )
        matrix[:, 0] = _EPS_COLUMN_SCORE
        matrix[:, 1:] = np.minimum(matrix[:, 1:], -1e-3)
        scores.append(AcousticScores(matrix))
    return MemoryWorkload(
        graph, sorted_graph, scores, beam, num_phones, max_active
    )


@dataclass
class PlatformRun:
    """Aggregated outcome of one platform over a workload."""

    name: str
    decode_seconds: float
    energy_j: float
    search: SearchStats
    sim_stats: Optional[SimStats] = None


@dataclass
class ComparisonResult:
    """All platform runs over one workload."""

    runs: Dict[str, PlatformRun] = field(default_factory=dict)
    speech_seconds: float = 0.0

    def report(self) -> EnergyReport:
        return EnergyReport(
            [
                PlatformResult(
                    name=r.name,
                    decode_seconds=r.decode_seconds,
                    energy_j=r.energy_j,
                    speech_seconds=self.speech_seconds,
                )
                for r in self.runs.values()
            ]
        )


#: The four accelerator configurations of the evaluation (Figure 9).
ASIC_CONFIG_NAMES = ("ASIC", "ASIC+State", "ASIC+Arc", "ASIC+State&Arc")


def accelerator_configs(
    base: AcceleratorConfig,
) -> Dict[str, AcceleratorConfig]:
    """The paper's four accelerator variants from a base configuration."""
    return {
        "ASIC": base,
        "ASIC+State": base.with_state_direct(),
        "ASIC+Arc": base.with_prefetch(),
        "ASIC+State&Arc": base.with_both(),
    }


def run_platform_comparison(
    workload: MemoryWorkload,
    base_config: AcceleratorConfig = AcceleratorConfig(),
    cpu_model: CpuTimingModel = CpuTimingModel(),
    gpu_model: GpuTimingModel = GpuTimingModel(),
    energy_model: AcceleratorEnergyModel = AcceleratorEnergyModel(),
    include: Optional[List[str]] = None,
    check_consistency: bool = True,
) -> ComparisonResult:
    """Decode the workload on every platform and collect times/energies.

    Args:
        include: restrict to a subset of platform names (default: all six).
        check_consistency: assert that the accelerator configurations find
            paths of the same likelihood as the software reference.
    """
    wanted = include or ["CPU", "GPU", *ASIC_CONFIG_NAMES]
    result = ComparisonResult(speech_seconds=workload.speech_seconds)

    ref_results = None
    if "CPU" in wanted or check_consistency:
        decoder = ViterbiDecoder(
            workload.graph,
            BeamSearchConfig(
                beam=workload.beam, max_active=workload.max_active
            ),
        )
        ref_results = [decoder.decode(s) for s in workload.scores]

    if "CPU" in wanted:
        merged = _merge_search_stats([r.stats for r in ref_results])
        seconds = sum(cpu_model.search_seconds(r.stats) for r in ref_results)
        result.runs["CPU"] = PlatformRun(
            "CPU", seconds, seconds * cpu_model.spec.avg_power_w, merged
        )

    if "GPU" in wanted:
        gpu_decoder = GpuViterbiDecoder(
            workload.graph,
            beam=workload.beam,
            max_active=workload.max_active,
        )
        total_work = GpuWorkload()
        gpu_stats: List[SearchStats] = []
        for s in workload.scores:
            decode, work = gpu_decoder.decode(s)
            gpu_stats.append(decode.stats)
            _accumulate_gpu_work(total_work, work)
        seconds = gpu_model.search_seconds(total_work)
        result.runs["GPU"] = PlatformRun(
            "GPU",
            seconds,
            seconds * gpu_model.spec.avg_power_w,
            _merge_search_stats(gpu_stats),
        )

    # The accelerator variants differ only in timing, so the functional
    # search runs once per graph layout (baseline + Section IV-B sorted)
    # and each configuration re-prices the recorded trace.
    traces_by_layout: Dict[bool, List[DecodeTrace]] = {}
    for name, config in accelerator_configs(base_config).items():
        if name not in wanted:
            continue
        sorted_layout = config.state_direct_enabled
        traces = traces_by_layout.get(sorted_layout)
        if traces is None:
            trace_graph = (
                workload.sorted_graph.graph if sorted_layout
                else workload.graph
            )
            recorder = TraceRecorder(
                trace_graph, beam=workload.beam,
                max_active=workload.max_active,
            )
            traces = [recorder.record(s) for s in workload.scores]
            traces_by_layout[sorted_layout] = traces
        replayer = TraceReplayer(
            workload.graph,
            config,
            sorted_graph=(workload.sorted_graph if sorted_layout else None),
        )
        sim_results: List[AcceleratorResult] = [
            replayer.replay(t) for t in traces
        ]
        if check_consistency and ref_results is not None:
            for ref, got in zip(ref_results, sim_results):
                if abs(ref.log_likelihood - got.log_likelihood) > 1e-6:
                    raise ConfigError(
                        f"{name} diverged from the reference decoder: "
                        f"{got.log_likelihood} != {ref.log_likelihood}"
                    )
        stats = _merge_sim_stats([r.stats for r in sim_results])
        seconds = stats.seconds(config.frequency_hz)
        energy = sum(
            energy_model.energy(config, r.stats).total_j for r in sim_results
        )
        result.runs[name] = PlatformRun(
            name,
            seconds,
            energy,
            _merge_search_stats([r.search for r in sim_results]),
            sim_stats=stats,
        )

    return result


def _merge_search_stats(stats_list: List[SearchStats]) -> SearchStats:
    return SearchStats.merge(stats_list)


def _merge_sim_stats(stats_list: List[SimStats]) -> SimStats:
    return SimStats.merge(stats_list)


def _accumulate_gpu_work(total: GpuWorkload, work: GpuWorkload) -> None:
    total.frames += work.frames
    total.kernel_launches += work.kernel_launches
    total.arcs_expanded += work.arcs_expanded
    total.epsilon_arcs_expanded += work.epsilon_arcs_expanded
    total.atomic_updates += work.atomic_updates
    total.tokens_compacted += work.tokens_compacted
    total.epsilon_iterations += work.epsilon_iterations
