"""repro -- reproduction of "An Ultra Low-Power Hardware Accelerator for
Automatic Speech Recognition" (Yazdani et al., MICRO 2016).

The package builds the paper's entire system in Python:

* a WFST toolkit, lexicon/LM builders and synthetic datasets
  (:mod:`repro.wfst`, :mod:`repro.lexicon`, :mod:`repro.lm`,
  :mod:`repro.datasets`);
* the signal-processing front end and DNN acoustic model
  (:mod:`repro.frontend`, :mod:`repro.acoustic`);
* the software reference decoder and the data-parallel GPU baseline
  (:mod:`repro.decoder`, :mod:`repro.gpu`);
* the cycle-accurate accelerator simulator -- the paper's contribution --
  with the prefetching architecture and the bandwidth-saving state layout
  (:mod:`repro.accel`);
* area/power/energy models and the whole-pipeline system model
  (:mod:`repro.energy`, :mod:`repro.system`);
* the trace-once/replay-many design-space sweep engine behind the
  paper's Figures 4-14 parameter studies (:mod:`repro.explore`);
* the staged graph compiler with its content-addressed artifact cache,
  the single graph-construction path under tasks, benches, sweeps and
  the CLI (:mod:`repro.graph`).

Quickstart::

    from repro.datasets import generate_task, TaskConfig
    from repro.decoder import ViterbiDecoder, BeamSearchConfig

    task = generate_task(TaskConfig(vocab_size=200))
    decoder = ViterbiDecoder(task.graph, BeamSearchConfig(beam=14.0))
    result = decoder.decode(task.utterances[0].scores)
"""

__version__ = "1.0.0"

from repro.accel import AcceleratorConfig, AcceleratorSimulator
from repro.datasets import AsrTask, TaskConfig, generate_task
from repro.decoder import BeamSearchConfig, ViterbiDecoder, word_error_rate
from repro.graph import GraphCache, GraphRecipe, compile_graph
from repro.wfst import CompiledWfst, Fst, sort_states_by_arc_count

__all__ = [
    "__version__",
    "AcceleratorConfig",
    "AcceleratorSimulator",
    "AsrTask",
    "TaskConfig",
    "generate_task",
    "BeamSearchConfig",
    "ViterbiDecoder",
    "word_error_rate",
    "CompiledWfst",
    "Fst",
    "sort_states_by_arc_count",
    "GraphRecipe",
    "GraphCache",
    "compile_graph",
]
