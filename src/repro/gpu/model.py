"""Analytical GTX 980 timing and power model.

The paper measures its CUDA baseline with nvprof on real hardware; offline
we model it analytically and calibrate the constants to the published
operating points:

* Viterbi search on the GPU runs at ~10x the CPU software decoder
  (Section I: "we obtained a speedup of 10x for the Viterbi search"),
  which at the paper's workload (~25k arcs/frame, 125k-word WFST) is a
  sustained ~82M arcs/s.
* The DNN runs 26x faster than on the CPU (Section I).
* Average power while recognising speech is 76.4 W (Section VI).

The timing model is a kernel-phase model: each frame pays per-kernel launch
overhead (the synchronisation cost that makes small active sets
inefficient -- the reason "the Viterbi search algorithm is hard to
parallelize") plus throughput terms for arc expansion and atomic-max
reductions.  With the paper's per-frame work the model lands on the
published numbers; with the scaled benchmark workloads the launch overhead
dominates exactly as it would on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.gpu.decoder import GpuWorkload


@dataclass(frozen=True)
class GpuSpec:
    """GPU hardware parameters (paper, Table III)."""

    name: str = "NVIDIA GeForce GTX 980"
    num_sms: int = 16
    threads_per_sm: int = 2048
    frequency_hz: float = 1.28e9
    technology_nm: int = 28
    l1_kb: int = 48
    l2_mb: int = 2
    mem_bandwidth_gbs: float = 224.0
    die_area_mm2: float = 398.0
    avg_power_w: float = 76.4


GTX980 = GpuSpec()


@dataclass(frozen=True)
class GpuTimingModel:
    """Kernel-phase timing model for the data-parallel Viterbi search.

    Attributes:
        kernel_launch_s: per-kernel launch + synchronisation overhead.
        arc_expand_s: sustained per-arc expansion time (memory-bound
            gather of 16-byte arc records over a sparse working set).
        atomic_update_s: per-atomic-max time including contention.
        token_compact_s: per-token stream-compaction time.
    """

    spec: GpuSpec = GTX980
    kernel_launch_s: float = 3.0e-6
    arc_expand_s: float = 2.8e-9
    atomic_update_s: float = 1.3e-9
    token_compact_s: float = 0.56e-9

    def search_seconds(self, work: GpuWorkload) -> float:
        """Viterbi-search time for one decoded utterance."""
        return (
            work.kernel_launches * self.kernel_launch_s
            + (work.arcs_expanded + work.epsilon_arcs_expanded)
            * self.arc_expand_s
            + work.atomic_updates * self.atomic_update_s
            + work.tokens_compacted * self.token_compact_s
        )

    def search_energy_j(self, work: GpuWorkload) -> float:
        return self.search_seconds(work) * self.spec.avg_power_w


@dataclass(frozen=True)
class GpuDnnModel:
    """DNN inference timing on the GPU.

    Effective throughput is calibrated so the DNN stage runs 26x faster
    than the CPU model's DNN stage, matching the paper's measurement.
    """

    spec: GpuSpec = GTX980
    effective_tflops: float = 1.43

    def seconds(self, flops: float) -> float:
        """Time to evaluate ``flops`` floating-point operations."""
        if flops < 0:
            raise ConfigError("flops must be non-negative")
        return flops / (self.effective_tflops * 1e12)

    def energy_j(self, flops: float) -> float:
        return self.seconds(flops) * self.spec.avg_power_w


def dnn_flops_per_frame(
    input_dim: int, hidden_dims, num_classes: int
) -> float:
    """Multiply-accumulate FLOPs for one frame through an MLP (2 per MAC)."""
    dims = [input_dim, *hidden_dims, num_classes]
    return float(
        sum(2 * a * b for a, b in zip(dims[:-1], dims[1:]))
    )
