"""Functional data-parallel Viterbi decoder (the CUDA baseline's algorithm).

Per frame, mirroring the kernel structure of the GPU implementation the
paper uses as baseline:

1. **Compact** the active token set and compute the pruning threshold
   (a parallel reduction in CUDA; ``max`` here).
2. **Expand** every non-epsilon arc of every surviving token in one shot:
   gather arc ranges, compute candidate scores vectorised, and reduce
   per-destination with an atomic-max equivalent (``np.maximum.at``).
3. **Epsilon passes** repeat the expansion over epsilon arcs until no token
   improves (real implementations run a fixed-point loop of kernels).

The decoder returns the same best path as the sequential reference (ties
may resolve differently; scores are identical) and records the per-frame
work counts the timing model consumes: arcs expanded, kernel phases,
tokens, reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.common.errors import DecodeError
from repro.common.logmath import LOG_ZERO
from repro.acoustic.scorer import AcousticScores
from repro.decoder.result import DecodeResult, SearchStats
from repro.wfst.layout import CompiledWfst

_NEG_INF = np.float64(LOG_ZERO)


@dataclass
class GpuWorkload:
    """Per-decode kernel work counts for the timing model."""

    frames: int = 0
    kernel_launches: int = 0
    arcs_expanded: int = 0
    epsilon_arcs_expanded: int = 0
    atomic_updates: int = 0
    tokens_compacted: int = 0
    epsilon_iterations: int = 0


class GpuViterbiDecoder:
    """Vectorised beam-search decoder with CUDA-like phase structure."""

    def __init__(
        self, graph: CompiledWfst, beam: float = 12.0, max_active: int = 0
    ) -> None:
        self.graph = graph
        self.beam = beam
        self.max_active = max_active
        # Precompute per-state arc ranges as arrays for vectorised gather.
        n = graph.num_states
        first = np.zeros(n, dtype=np.int64)
        n_non_eps = np.zeros(n, dtype=np.int64)
        n_eps = np.zeros(n, dtype=np.int64)
        for s in range(n):
            f, ne, ep = graph.arc_range(s)
            first[s], n_non_eps[s], n_eps[s] = f, ne, ep
        self._first = first
        self._n_non_eps = n_non_eps
        self._n_eps = n_eps
        self._weights = graph.arc_weight.astype(np.float64)
        self._ilabels = graph.arc_ilabel.astype(np.int64)
        self._olabels = graph.arc_olabel.astype(np.int64)
        self._dests = graph.arc_dest.astype(np.int64)

    # ------------------------------------------------------------------
    def decode(self, scores: AcousticScores) -> Tuple[DecodeResult, GpuWorkload]:
        """Decode one utterance; returns the result and GPU work counts."""
        if scores.num_frames == 0:
            raise DecodeError("no frames to decode")

        graph = self.graph
        work = GpuWorkload(frames=scores.num_frames)
        stats = SearchStats(frames=scores.num_frames)

        trace_prev: List[int] = [-1]
        trace_word: List[int] = [0]

        n = graph.num_states
        score_of = np.full(n, _NEG_INF)
        bp_of = np.full(n, -1, dtype=np.int64)
        score_of[graph.start] = 0.0
        bp_of[graph.start] = 0
        active = np.array([graph.start], dtype=np.int64)

        active, score_of, bp_of = self._epsilon_fixpoint(
            active, score_of, bp_of, trace_prev, trace_word, work, stats
        )

        for frame in range(scores.num_frames):
            frame_scores = scores.frame(frame)

            # Phase 1: reduction for the beam threshold + compaction.
            work.kernel_launches += 2
            best = score_of[active].max()
            keep = score_of[active] >= best - self.beam
            stats.tokens_pruned += int((~keep).sum())
            survivors = active[keep]
            if len(survivors) == 0:
                raise DecodeError(f"beam emptied the search at frame {frame}")
            if self.max_active and len(survivors) > self.max_active:
                # Histogram pruning (a k-selection kernel in CUDA).
                order = np.argsort(-score_of[survivors], kind="stable")
                stats.tokens_pruned += len(survivors) - self.max_active
                survivors = survivors[order[: self.max_active]]
                work.kernel_launches += 1
            work.tokens_compacted += len(survivors)
            stats.active_tokens_per_frame.append(len(survivors))

            # Phase 2: expand all non-epsilon arcs of all survivors.
            work.kernel_launches += 1
            arc_idx, src_state = self._gather_arcs(
                survivors, self._first, self._n_non_eps
            )
            stats.states_expanded += len(survivors)
            stats.arcs_processed += len(arc_idx)
            work.arcs_expanded += len(arc_idx)

            cand = (
                score_of[src_state]
                + self._weights[arc_idx]
                + frame_scores[self._ilabels[arc_idx]]
            )
            new_score = np.full(n, _NEG_INF)
            new_bp = np.full(n, -1, dtype=np.int64)
            dests = self._dests[arc_idx]
            np.maximum.at(new_score, dests, cand)
            work.atomic_updates += len(arc_idx)

            # Winner write-back (CUDA: ballot/atomicCAS second pass).
            winners = cand >= new_score[dests]
            win_arcs = arc_idx[winners]
            win_dests = dests[winners]
            win_src = src_state[winners]
            for a, d, s in zip(win_arcs, win_dests, win_src):
                trace_prev.append(int(bp_of[s]))
                trace_word.append(int(self._olabels[a]))
                new_bp[d] = len(trace_prev) - 1
            stats.tokens_created += int((new_score > _NEG_INF / 2).sum())

            score_of, bp_of = new_score, new_bp
            active = np.unique(win_dests)

            active, score_of, bp_of = self._epsilon_fixpoint(
                active, score_of, bp_of, trace_prev, trace_word, work, stats
            )

        return self._finalize(active, score_of, bp_of, trace_prev, trace_word, stats), work

    # ------------------------------------------------------------------
    def _gather_arcs(
        self,
        states: np.ndarray,
        first: np.ndarray,
        counts: np.ndarray,
        offset: np.ndarray = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flatten the arc ranges of ``states`` into one index array."""
        n_arcs = counts[states]
        starts = first[states] + (offset[states] if offset is not None else 0)
        total = int(n_arcs.sum())
        if total == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        src = np.repeat(states, n_arcs)
        # arange per segment: global arange minus per-segment base.
        seg_ends = np.cumsum(n_arcs)
        seg_starts = seg_ends - n_arcs
        local = np.arange(total) - np.repeat(seg_starts, n_arcs)
        return np.repeat(starts, n_arcs) + local, src

    def _epsilon_fixpoint(
        self,
        active: np.ndarray,
        score_of: np.ndarray,
        bp_of: np.ndarray,
        trace_prev: List[int],
        trace_word: List[int],
        work: GpuWorkload,
        stats: SearchStats,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run epsilon-expansion kernels until no token improves."""
        frontier = active
        while True:
            has_eps = frontier[self._n_eps[frontier] > 0]
            if len(has_eps) == 0:
                break
            work.kernel_launches += 1
            work.epsilon_iterations += 1
            arc_idx, src_state = self._gather_arcs(
                has_eps, self._first + self._n_non_eps, self._n_eps
            )
            if len(arc_idx) == 0:
                break
            stats.epsilon_arcs_processed += len(arc_idx)
            work.epsilon_arcs_expanded += len(arc_idx)

            cand = score_of[src_state] + self._weights[arc_idx]
            dests = self._dests[arc_idx]
            improved_mask = cand > score_of[dests]
            if not improved_mask.any():
                break
            arc_sel = arc_idx[improved_mask]
            dest_sel = dests[improved_mask]
            src_sel = src_state[improved_mask]
            cand_sel = cand[improved_mask]

            np.maximum.at(score_of, dest_sel, cand_sel)
            work.atomic_updates += len(arc_sel)
            winners = cand_sel >= score_of[dest_sel]
            changed: List[int] = []
            for a, d, s, ok in zip(arc_sel, dest_sel, src_sel, winners):
                if not ok:
                    continue
                trace_prev.append(int(bp_of[s]))
                trace_word.append(int(self._olabels[a]))
                bp_of[d] = len(trace_prev) - 1
                changed.append(int(d))
            if not changed:
                break
            new_frontier = np.unique(np.array(changed, dtype=np.int64))
            active = np.unique(np.concatenate([active, new_frontier]))
            frontier = new_frontier
        return active, score_of, bp_of

    def _finalize(
        self,
        active: np.ndarray,
        score_of: np.ndarray,
        bp_of: np.ndarray,
        trace_prev: List[int],
        trace_word: List[int],
        stats: SearchStats,
    ) -> DecodeResult:
        if len(active) == 0:
            raise DecodeError("no active tokens at the end of the utterance")
        finals = self.graph.final_weights[active]
        totals = score_of[active] + finals
        has_final = finals > LOG_ZERO / 2
        if has_final.any():
            idx = int(np.argmax(np.where(has_final, totals, _NEG_INF)))
            best_state = int(active[idx])
            likelihood = float(totals[idx])
            reached_final = True
        else:
            idx = int(np.argmax(score_of[active]))
            best_state = int(active[idx])
            likelihood = float(score_of[best_state])
            reached_final = False

        words: List[int] = []
        index = int(bp_of[best_state])
        while index >= 0:
            if trace_word[index] != 0:
                words.append(trace_word[index])
            index = trace_prev[index]
        words.reverse()
        return DecodeResult(
            words=tuple(words),
            log_likelihood=likelihood,
            reached_final=reached_final,
            stats=stats,
        )
