"""Functional data-parallel Viterbi decoder (the CUDA baseline's algorithm).

The GPU baseline runs the same per-frame recurrence as every other
engine; since the kernel refactor the search itself is the shared
vectorized :class:`~repro.decoder.kernel.SearchKernel` and this module
only *derives the GPU workload model* from it, via a
:class:`~repro.decoder.kernel.KernelObserver` that maps kernel stages to
CUDA kernel launches:

1. **Compact** -- each :class:`PruneEvent` is a parallel reduction plus a
   compaction kernel (and a k-selection kernel when the histogram cap
   actually truncates).
2. **Expand** -- each :class:`ExpandEvent` is one expansion kernel: every
   non-epsilon arc of every surviving token is one atomic-max update.
3. **Epsilon passes** -- each :class:`ClosureEvent` round is one
   fixed-point iteration kernel; candidates that improve their
   destination (against the pre-round scores) are atomic updates.

The decoder returns the same best path as the sequential reference (ties
may resolve differently; scores are identical) and the per-decode work
counts the timing model consumes: arcs expanded, kernel phases, tokens,
reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.common.errors import DecodeError
from repro.acoustic.scorer import AcousticScores
from repro.decoder.kernel import (
    ClosureEvent,
    DecoderConfig,
    ExpandEvent,
    KernelObserver,
    PruneEvent,
    SearchKernel,
)
from repro.decoder.result import DecodeResult
from repro.wfst.layout import CompiledWfst


@dataclass
class GpuWorkload:
    """Per-decode kernel work counts for the timing model."""

    frames: int = 0
    kernel_launches: int = 0
    arcs_expanded: int = 0
    epsilon_arcs_expanded: int = 0
    atomic_updates: int = 0
    tokens_compacted: int = 0
    epsilon_iterations: int = 0


class _GpuWorkloadObserver(KernelObserver):
    """Derives :class:`GpuWorkload` counters from the kernel event stream."""

    def __init__(self) -> None:
        self.work = GpuWorkload()

    def on_prune(self, event: PruneEvent) -> None:
        # Reduction for the beam threshold + compaction; histogram
        # pruning is an extra k-selection kernel when it truncates.
        self.work.kernel_launches += 2
        if event.cap_pruned:
            self.work.kernel_launches += 1
        self.work.tokens_compacted += len(event.survivor_states)

    def on_expand(self, event: ExpandEvent) -> None:
        n = len(event.arc_idx)
        self.work.kernel_launches += 1
        self.work.arcs_expanded += n
        self.work.atomic_updates += n

    def on_closure(self, event: ClosureEvent) -> None:
        self.work.kernel_launches += 1
        self.work.epsilon_iterations += 1
        self.work.epsilon_arcs_expanded += len(event.arc_idx)
        self.work.atomic_updates += int(np.count_nonzero(event.improved))


class GpuViterbiDecoder:
    """Beam-search decoder with CUDA-like phase accounting.

    Word output and functional counters come from the shared vectorized
    kernel; :meth:`decode` additionally returns the GPU work counts.
    """

    def __init__(
        self,
        graph: CompiledWfst,
        beam: float = 12.0,
        max_active: int = 0,
        config: Optional[DecoderConfig] = None,
    ) -> None:
        self.graph = graph
        self.config = config or DecoderConfig(beam=beam, max_active=max_active)
        self.beam = self.config.beam
        self.max_active = self.config.max_active
        self.kernel = SearchKernel(graph, self.config)

    # ------------------------------------------------------------------
    def decode(self, scores: AcousticScores) -> Tuple[DecodeResult, GpuWorkload]:
        """Decode one utterance; returns the result and GPU work counts."""
        observer = _GpuWorkloadObserver()
        observer.work.frames = scores.num_frames
        kernel = self.kernel
        if scores.num_frames == 0:
            raise DecodeError("no frames to decode")
        frontier = kernel.init_frontier(observers=(observer,))
        for frame in range(scores.num_frames):
            kernel.step_frame(frontier, frame, scores.frame(frame))
            frontier.num_frames += 1
            frontier.stats.frames += 1
        return kernel.finalize(frontier), observer.work
