"""GPU baseline: data-parallel Viterbi decoder + GTX 980 performance model.

The paper's strongest baseline is a CUDA decoder (Chong et al. [10], [30])
on an NVIDIA GeForce GTX 980 (Table III).  We reproduce it as:

* :class:`GpuViterbiDecoder` -- a *functional* data-parallel decoder whose
  per-frame structure mirrors the CUDA kernels (compact active set, expand
  all arcs in parallel with atomic-max reductions, epsilon passes); and
* :class:`GpuTimingModel` -- an analytical kernel-phase timing model of the
  GTX 980 calibrated to the paper's measured operating points (10x the CPU
  on the Viterbi search, 26x on the DNN, 76.4 W average power).
"""

from repro.gpu.decoder import GpuViterbiDecoder
from repro.gpu.model import (
    GTX980,
    GpuSpec,
    GpuTimingModel,
    GpuDnnModel,
)

__all__ = [
    "GpuViterbiDecoder",
    "GTX980",
    "GpuSpec",
    "GpuTimingModel",
    "GpuDnnModel",
]
