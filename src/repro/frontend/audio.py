"""Synthetic speech-like audio generation.

Each phone is assigned a stable spectral signature (two or three formant
frequencies plus a noise colour); an utterance is synthesised by emitting a
per-phone segment of formant sinusoids with amplitude jitter and additive
noise.  The result is not intelligible speech, but it has the property the
pipeline needs: frames of the same phone are spectrally similar and frames
of different phones are separable, so an MFCC + DNN chain trained on it
produces realistic, confusable acoustic likelihoods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.lexicon.phones import PhoneSet


@dataclass(frozen=True)
class PhoneAlignment:
    """Ground-truth alignment of an utterance.

    Attributes:
        phones: phone id per segment.
        num_frames: frames per segment (10 ms hop).
    """

    phones: Tuple[int, ...]
    num_frames: Tuple[int, ...]

    @property
    def total_frames(self) -> int:
        return sum(self.num_frames)

    def frame_labels(self) -> np.ndarray:
        """Per-frame phone id, expanded from the segment alignment."""
        return np.repeat(
            np.array(self.phones, dtype=np.int64),
            np.array(self.num_frames, dtype=np.int64),
        )


class AudioSynthesizer:
    """Deterministic formant-style synthesiser for a phone set."""

    def __init__(
        self,
        phone_set: PhoneSet,
        sample_rate: int = 16000,
        frame_hop_ms: float = 10.0,
        seed: int = 0,
    ) -> None:
        if sample_rate <= 0:
            raise ConfigError("sample_rate must be positive")
        self.phone_set = phone_set
        self.sample_rate = sample_rate
        self.hop_samples = int(round(sample_rate * frame_hop_ms / 1000.0))
        rng = make_rng(seed, "audio-formants")
        # Stable per-phone signature: 3 formants in 200..3800 Hz and a
        # noise mix; the silence phone is mostly noise at low energy.
        n = phone_set.num_phones
        self._formants = rng.uniform(200.0, 3800.0, size=(n, 3))
        self._formant_amps = rng.uniform(0.4, 1.0, size=(n, 3))
        self._noise_mix = rng.uniform(0.05, 0.25, size=n)
        sil = phone_set.silence_id - 1
        self._formant_amps[sil] *= 0.05
        self._noise_mix[sil] = 0.02

    def phone_durations(
        self,
        phones: Sequence[int],
        rng: np.random.Generator,
        mean_frames: int = 8,
        min_frames: int = 3,
    ) -> List[int]:
        """Draw a frame count per phone (geometric-ish around the mean)."""
        durations = []
        for _ in phones:
            extra = rng.poisson(max(mean_frames - min_frames, 0))
            durations.append(min_frames + int(extra))
        return durations

    def synthesize(
        self,
        phones: Sequence[int],
        seed: int,
        mean_frames: int = 8,
    ) -> Tuple[np.ndarray, PhoneAlignment]:
        """Synthesise an utterance.

        Args:
            phones: phone-id sequence (including any silences).
            seed: per-utterance randomness for durations / jitter.
            mean_frames: average 10 ms frames per phone.

        Returns:
            ``(waveform, alignment)`` -- float64 samples in [-1, 1] and the
            ground-truth phone alignment.
        """
        if len(phones) == 0:
            raise ConfigError("cannot synthesise an empty phone sequence")
        rng = make_rng(seed, "audio-utterance")
        durations = self.phone_durations(phones, rng, mean_frames=mean_frames)

        segments: List[np.ndarray] = []
        for phone, frames in zip(phones, durations):
            n_samples = frames * self.hop_samples
            t = np.arange(n_samples) / self.sample_rate
            idx = phone - 1
            wave = np.zeros(n_samples)
            for f, amp in zip(self._formants[idx], self._formant_amps[idx]):
                jitter = 1.0 + rng.normal(0.0, 0.01)
                phase = rng.uniform(0.0, 2.0 * np.pi)
                wave += amp * np.sin(2.0 * np.pi * f * jitter * t + phase)
            wave += self._noise_mix[idx] * rng.normal(0.0, 1.0, n_samples)
            # Soft attack/decay to avoid clicks at segment boundaries.
            ramp = min(self.hop_samples, n_samples // 2)
            if ramp > 0:
                env = np.ones(n_samples)
                env[:ramp] = np.linspace(0.2, 1.0, ramp)
                env[-ramp:] = np.linspace(1.0, 0.2, ramp)
                wave *= env
            segments.append(wave)

        waveform = np.concatenate(segments)
        peak = np.abs(waveform).max()
        if peak > 0:
            waveform = waveform / (peak * 1.05)
        alignment = PhoneAlignment(tuple(phones), tuple(durations))
        return waveform, alignment
