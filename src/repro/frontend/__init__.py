"""Signal-processing front end: synthetic audio and MFCC features.

The ASR pipeline's first stages (paper, Section II): segment audio into
10 ms frames and convert each frame into an MFCC feature vector.  Since the
reproduction has no Librispeech audio, :mod:`repro.frontend.audio`
synthesises formant-like waveforms from phone strings; the MFCC pipeline is
implemented from scratch on top of numpy.
"""

from repro.frontend.audio import AudioSynthesizer, PhoneAlignment
from repro.frontend.mfcc import MfccConfig, MfccExtractor, hz_to_mel, mel_to_hz
from repro.frontend.normalize import cmvn, splice

__all__ = [
    "AudioSynthesizer",
    "PhoneAlignment",
    "MfccConfig",
    "MfccExtractor",
    "hz_to_mel",
    "mel_to_hz",
    "cmvn",
    "splice",
]
