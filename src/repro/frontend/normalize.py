"""Feature post-processing: CMVN and frame splicing (the front-end half
of the paper's Section II hybrid pipeline; the Section V Kaldi setup
splices 11 MFCC frames into the DNN's 440-dim input).

Standard front-end steps between MFCC extraction and the DNN:

* **CMVN** (cepstral mean and variance normalisation) removes per-utterance
  channel effects -- each feature dimension is standardised over the
  utterance.
* **Splicing** stacks each frame with +/- ``context`` neighbours, giving
  the DNN the temporal context hybrid models rely on (the paper-era Kaldi
  recipe splices +/-5 frames into a 440-dim input).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError


def cmvn(features: np.ndarray, variance: bool = True) -> np.ndarray:
    """Per-utterance cepstral mean (and optionally variance) normalisation."""
    feats = np.asarray(features, dtype=np.float64)
    if feats.ndim != 2 or len(feats) == 0:
        raise ConfigError("features must be a non-empty 2-D array")
    out = feats - feats.mean(axis=0)
    if variance:
        out = out / np.maximum(feats.std(axis=0), 1e-6)
    return out


def splice(features: np.ndarray, context: int = 5) -> np.ndarray:
    """Stack each frame with ``context`` neighbours on both sides.

    Edge frames repeat the first/last frame, so the output has the same
    number of rows and ``(2 * context + 1) * dim`` columns.
    """
    if context < 0:
        raise ConfigError("context must be >= 0")
    feats = np.asarray(features, dtype=np.float64)
    if feats.ndim != 2 or len(feats) == 0:
        raise ConfigError("features must be a non-empty 2-D array")
    if context == 0:
        return feats.copy()
    padded = np.pad(feats, ((context, context), (0, 0)), mode="edge")
    n = len(feats)
    pieces = [padded[k : k + n] for k in range(2 * context + 1)]
    return np.hstack(pieces)
