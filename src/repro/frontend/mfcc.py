"""MFCC feature extraction, implemented from scratch.

Pipeline (paper, Section II, citing [17]): pre-emphasis -> 25 ms Hamming
windows with a 10 ms hop -> power spectrum -> mel filterbank -> log ->
DCT-II -> cepstral coefficients.  Output frames align one-to-one with the
10 ms frames the Viterbi search consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError


def hz_to_mel(hz: np.ndarray) -> np.ndarray:
    """Convert frequency in Hz to mel scale (O'Shaughnessy formula)."""
    return 2595.0 * np.log10(1.0 + np.asarray(hz, dtype=np.float64) / 700.0)


def mel_to_hz(mel: np.ndarray) -> np.ndarray:
    """Inverse of :func:`hz_to_mel`."""
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=np.float64) / 2595.0) - 1.0)


@dataclass(frozen=True)
class MfccConfig:
    """MFCC pipeline parameters (defaults follow common ASR practice)."""

    sample_rate: int = 16000
    frame_len_ms: float = 25.0
    frame_hop_ms: float = 10.0
    pre_emphasis: float = 0.97
    num_mel_filters: int = 26
    num_ceps: int = 13
    low_freq_hz: float = 20.0
    high_freq_hz: float = 7600.0
    include_energy: bool = True
    include_deltas: bool = True

    def __post_init__(self) -> None:
        if self.num_ceps > self.num_mel_filters:
            raise ConfigError("num_ceps cannot exceed num_mel_filters")
        if not 0.0 <= self.pre_emphasis < 1.0:
            raise ConfigError("pre_emphasis must be in [0, 1)")
        if self.high_freq_hz > self.sample_rate / 2:
            raise ConfigError("high_freq_hz above Nyquist")
        if self.frame_len_ms <= 0.0 or self.frame_hop_ms <= 0.0:
            raise ConfigError("frame_len_ms and frame_hop_ms must be positive")
        if not 0.0 <= self.low_freq_hz < self.high_freq_hz:
            raise ConfigError("low_freq_hz must be in [0, high_freq_hz)")

    @property
    def frame_len(self) -> int:
        return int(round(self.sample_rate * self.frame_len_ms / 1000.0))

    @property
    def frame_hop(self) -> int:
        return int(round(self.sample_rate * self.frame_hop_ms / 1000.0))

    @property
    def fft_size(self) -> int:
        n = 1
        while n < self.frame_len:
            n *= 2
        return n

    @property
    def feature_dim(self) -> int:
        base = self.num_ceps + (1 if self.include_energy else 0)
        return base * (3 if self.include_deltas else 1)


class MfccExtractor:
    """Stateless MFCC extractor; construct once, reuse across utterances."""

    def __init__(self, config: MfccConfig = MfccConfig()) -> None:
        self.config = config
        self._window = np.hamming(config.frame_len)
        self._filterbank = self._build_filterbank()
        self._dct = self._build_dct_matrix()

    def extract(self, waveform: np.ndarray) -> np.ndarray:
        """Compute the feature matrix ``(num_frames, feature_dim)``."""
        cfg = self.config
        signal = np.asarray(waveform, dtype=np.float64)
        if signal.ndim != 1:
            raise ConfigError("waveform must be 1-D")
        if len(signal) < cfg.frame_len:
            raise ConfigError("waveform shorter than one frame")

        emphasized = np.empty_like(signal)
        emphasized[0] = signal[0]
        emphasized[1:] = signal[1:] - cfg.pre_emphasis * signal[:-1]

        num_frames = 1 + (len(emphasized) - cfg.frame_len) // cfg.frame_hop
        idx = (
            np.arange(cfg.frame_len)[None, :]
            + cfg.frame_hop * np.arange(num_frames)[:, None]
        )
        frames = emphasized[idx] * self._window

        spectrum = np.fft.rfft(frames, n=cfg.fft_size, axis=1)
        power = (np.abs(spectrum) ** 2) / cfg.fft_size

        mel_energies = power @ self._filterbank.T
        log_mel = np.log(np.maximum(mel_energies, 1e-12))
        ceps = log_mel @ self._dct.T

        features = [ceps]
        if cfg.include_energy:
            energy = np.log(np.maximum(power.sum(axis=1), 1e-12))
            features.append(energy[:, None])
        base = np.hstack(features)

        if cfg.include_deltas:
            d1 = self._delta(base)
            d2 = self._delta(d1)
            base = np.hstack([base, d1, d2])
        return base

    # ------------------------------------------------------------------
    def _build_filterbank(self) -> np.ndarray:
        cfg = self.config
        n_bins = cfg.fft_size // 2 + 1
        mel_points = np.linspace(
            hz_to_mel(cfg.low_freq_hz),
            hz_to_mel(cfg.high_freq_hz),
            cfg.num_mel_filters + 2,
        )
        hz_points = mel_to_hz(mel_points)
        bin_points = np.floor(
            (cfg.fft_size + 1) * hz_points / cfg.sample_rate
        ).astype(int)
        bank = np.zeros((cfg.num_mel_filters, n_bins))
        for m in range(1, cfg.num_mel_filters + 1):
            left, center, right = bin_points[m - 1 : m + 2]
            if center == left:
                center += 1
            if right == center:
                right += 1
            for k in range(left, center):
                if 0 <= k < n_bins:
                    bank[m - 1, k] = (k - left) / (center - left)
            for k in range(center, right):
                if 0 <= k < n_bins:
                    bank[m - 1, k] = (right - k) / (right - center)
        return bank

    def _build_dct_matrix(self) -> np.ndarray:
        cfg = self.config
        n, k = cfg.num_mel_filters, cfg.num_ceps
        basis = np.zeros((k, n))
        scale = np.sqrt(2.0 / n)
        for i in range(k):
            basis[i] = scale * np.cos(np.pi * i * (np.arange(n) + 0.5) / n)
        return basis

    @staticmethod
    def _delta(features: np.ndarray, span: int = 2) -> np.ndarray:
        """Regression-based delta features over ``span`` neighbours."""
        padded = np.pad(features, ((span, span), (0, 0)), mode="edge")
        denom = 2.0 * sum(d * d for d in range(1, span + 1))
        out = np.zeros_like(features)
        for d in range(1, span + 1):
            out += d * (padded[span + d :][: len(features)] -
                        padded[span - d :][: len(features)])
        return out / denom
