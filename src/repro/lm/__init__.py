"""Language-model substrate: n-gram models and the G transducer."""

from repro.lm.ngram import NGramModel, train_ngram
from repro.lm.grammar_fst import build_grammar_fst
from repro.lm.trigram import TrigramModel, build_trigram_fst, train_trigram

__all__ = [
    "NGramModel",
    "train_ngram",
    "build_grammar_fst",
    "TrigramModel",
    "build_trigram_fst",
    "train_trigram",
]
