"""Language-model substrate: n-gram models and the G transducer (the G
half of the Section II decoding graph; its backoff epsilon arcs are why
the accelerator needs the Section III-B epsilon pass)."""

from repro.lm.ngram import NGramModel, train_ngram
from repro.lm.grammar_fst import build_grammar_fst
from repro.lm.trigram import TrigramModel, build_trigram_fst, train_trigram

__all__ = [
    "NGramModel",
    "train_ngram",
    "build_grammar_fst",
    "TrigramModel",
    "build_trigram_fst",
    "train_trigram",
]
