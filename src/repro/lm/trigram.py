"""Backoff trigram language models and their G transducer.

The paper's Section II argues that the WFST approach makes the accelerator
model-agnostic: "adopting more accurate language models only requires
changes to the parameters of the WFST, but not to the software or hardware
implementation".  This module provides the trigram instance of that claim:
a Katz-style backoff trigram over word ids and the standard three-level
grammar transducer (trigram histories -> bigram histories -> unigram
state), decodable by the unchanged decoder and accelerator.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import math

from repro.common.errors import ConfigError
from repro.lm.ngram import BOS, EOS, NGramModel, train_ngram
from repro.wfst.fst import EPSILON, Fst


@dataclass
class TrigramModel:
    """A backoff trigram stacked on a backoff bigram.

    Attributes:
        bigram: the lower-order model (provides bigram and unigram levels).
        trigram_logprob: observed-trigram log probabilities keyed by
            ``(w1, w2, w3)``; ``w3`` may be EOS.  ``w1`` may be BOS.
        backoff_logweight: per-(w1, w2) backoff penalties to the bigram
            level.
    """

    bigram: NGramModel
    trigram_logprob: Dict[Tuple[int, int, int], float]
    backoff_logweight: Dict[Tuple[int, int], float]

    @property
    def vocab_size(self) -> int:
        return self.bigram.vocab_size

    def logprob(self, word: int, w1: int = BOS, w2: int = BOS) -> float:
        """Log P(word | w1, w2) with backoff through the bigram."""
        key = (w1, w2, word)
        if key in self.trigram_logprob:
            return self.trigram_logprob[key]
        backoff = self.backoff_logweight.get((w1, w2), 0.0)
        return backoff + self.bigram.logprob(word, prev=w2)

    def sentence_logprob(self, sentence: Sequence[int]) -> float:
        total = 0.0
        w1, w2 = BOS, BOS
        for word in sentence:
            total += self.logprob(word, w1, w2)
            w1, w2 = w2, word
        total += self.logprob(EOS, w1, w2)
        return total

    def observed_bigram_histories(self) -> List[Tuple[int, int]]:
        return sorted({(a, b) for a, b, _c in self.trigram_logprob})


def train_trigram(
    corpus: Iterable[Sequence[int]],
    vocab_size: int,
    discount: float = 0.4,
) -> TrigramModel:
    """Train a backoff trigram (and its underlying bigram) from a corpus."""
    if not 0.0 < discount < 1.0:
        raise ConfigError("discount must be in (0, 1)")

    sentences = [list(s) for s in corpus]
    bigram = train_ngram(sentences, vocab_size, discount=discount)

    trigram_counts: Dict[Tuple[int, int], Counter] = defaultdict(Counter)
    for sentence in sentences:
        w1, w2 = BOS, BOS
        for word in sentence:
            if not 1 <= word <= vocab_size:
                raise ConfigError(f"word id {word} out of range")
            trigram_counts[(w1, w2)][word] += 1
            w1, w2 = w2, word
        trigram_counts[(w1, w2)][EOS] += 1

    trigram_logprob: Dict[Tuple[int, int, int], float] = {}
    backoff_logweight: Dict[Tuple[int, int], float] = {}
    for history, counts in trigram_counts.items():
        total = sum(counts.values())
        for word, count in counts.items():
            p = (count - discount) / total
            if p <= 0.0:
                continue
            trigram_logprob[(history[0], history[1], word)] = math.log(p)
        backoff_logweight[history] = math.log(
            discount * len(counts) / total
        )

    return TrigramModel(bigram, trigram_logprob, backoff_logweight)


def build_trigram_fst(model: TrigramModel) -> Fst:
    """Build the three-level G acceptor for a backoff trigram model.

    States: one unigram (root backoff) state, one bigram state per word
    that appears as the most recent history word, and one trigram state
    per observed (w1, w2) history.  A word arc lands on the most specific
    history state that exists for its new context.
    """
    fst = Fst()
    unigram_state = fst.add_state()
    fst.set_final(unigram_state, model.bigram.eos_logprob)

    bigram_state: Dict[int, int] = {}
    trigram_state: Dict[Tuple[int, int], int] = {}
    trigram_histories = set(model.observed_bigram_histories())

    def get_bigram_state(word: int) -> int:
        if word not in bigram_state:
            s = fst.add_state()
            bigram_state[word] = s
            fst.add_arc(
                s,
                EPSILON,
                EPSILON,
                model.bigram.backoff_logweight.get(word, 0.0),
                unigram_state,
            )
            eos_lp = model.bigram.bigram_logprob.get((word, EOS))
            if eos_lp is not None:
                fst.set_final(s, eos_lp)
        return bigram_state[word]

    def get_trigram_state(w1: int, w2: int) -> int:
        key = (w1, w2)
        if key not in trigram_state:
            s = fst.add_state()
            trigram_state[key] = s
            fst.add_arc(
                s,
                EPSILON,
                EPSILON,
                model.backoff_logweight.get(key, 0.0),
                get_bigram_state(w2),
            )
            eos_lp = model.trigram_logprob.get((w1, w2, EOS))
            if eos_lp is not None:
                fst.set_final(s, eos_lp)
        return trigram_state[key]

    def destination(prev: int, word: int) -> int:
        """Most specific history state after consuming ``word``."""
        if (prev, word) in trigram_histories:
            return get_trigram_state(prev, word)
        return get_bigram_state(word)

    # Start at the (BOS, BOS) trigram history when observed, else BOS bigram.
    if (BOS, BOS) in trigram_histories:
        start = get_trigram_state(BOS, BOS)
    else:
        start = get_bigram_state(BOS)
    fst.set_start(start)

    # Unigram arcs: the unigram context only knows the new last word, so
    # the destination is always the bigram state.
    for word in range(1, model.vocab_size + 1):
        fst.add_arc(
            unigram_state,
            word,
            word,
            model.bigram.unigram_logprob[word],
            get_bigram_state(word),
        )

    # Bigram arcs out of bigram states.
    for (prev, word), logprob in model.bigram.bigram_logprob.items():
        if word == EOS:
            continue
        fst.add_arc(
            get_bigram_state(prev),
            word,
            word,
            logprob,
            destination(prev, word),
        )

    # Trigram arcs out of trigram states.
    for (w1, w2, w3), logprob in model.trigram_logprob.items():
        if w3 == EOS:
            continue
        fst.add_arc(
            get_trigram_state(w1, w2), w3, w3, logprob, destination(w2, w3)
        )

    return fst
