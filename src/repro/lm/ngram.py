"""Backoff n-gram language models.

A standard interpolated/absolute-discount backoff model over word ids,
trained from a corpus of sentences (lists of word ids).  Supports unigram
and bigram orders -- the paper notes the WFST flexibility argument directly:
"language models (e.g., bigrams or trigrams)" plug into the same decoder
unchanged.

Probabilities are returned in log space.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import math

from repro.common.errors import ConfigError
from repro.common.logmath import LOG_ZERO

#: Sentence-boundary pseudo-word id (never appears in vocabularies).
BOS: int = -1
EOS: int = -2


@dataclass
class NGramModel:
    """A backoff bigram model with unigram floor.

    Attributes:
        vocab_size: highest word id in the vocabulary.
        unigram_logprob: ``unigram_logprob[w]`` for w in 1..vocab_size (and
            EOS stored separately).
        bigram_logprob: observed-bigram log probabilities keyed by
            ``(prev, word)``; ``word`` may be EOS.
        backoff_logweight: per-history backoff penalties keyed by prev word
            (or BOS).
        eos_logprob: unigram log probability of the sentence end.
    """

    vocab_size: int
    unigram_logprob: Dict[int, float]
    bigram_logprob: Dict[Tuple[int, int], float]
    backoff_logweight: Dict[int, float]
    eos_logprob: float

    # ------------------------------------------------------------------
    def logprob(self, word: int, prev: int = BOS) -> float:
        """Log P(word | prev) with backoff to the unigram."""
        key = (prev, word)
        if key in self.bigram_logprob:
            return self.bigram_logprob[key]
        backoff = self.backoff_logweight.get(prev, 0.0)
        if word == EOS:
            return backoff + self.eos_logprob
        uni = self.unigram_logprob.get(word, LOG_ZERO)
        if uni <= LOG_ZERO / 2:
            return LOG_ZERO
        return backoff + uni

    def sentence_logprob(self, sentence: Sequence[int]) -> float:
        """Log probability of a complete sentence including EOS."""
        total = 0.0
        prev = BOS
        for word in sentence:
            total += self.logprob(word, prev)
            prev = word
        total += self.logprob(EOS, prev)
        return total

    def observed_histories(self) -> List[int]:
        """All history words that have at least one observed bigram."""
        return sorted({prev for prev, _ in self.bigram_logprob})


def train_ngram(
    corpus: Iterable[Sequence[int]],
    vocab_size: int,
    discount: float = 0.4,
) -> NGramModel:
    """Train a backoff bigram model with absolute discounting.

    Args:
        corpus: iterable of sentences (word-id sequences, ids in
            1..vocab_size).
        vocab_size: size of the vocabulary.
        discount: absolute discount mass moved from observed bigrams to the
            backoff distribution.

    Raises:
        ConfigError: on empty corpus or out-of-range word ids.
    """
    if not 0.0 < discount < 1.0:
        raise ConfigError("discount must be in (0, 1)")

    unigram_counts: Counter = Counter()
    bigram_counts: Dict[int, Counter] = defaultdict(Counter)
    n_sentences = 0
    for sentence in corpus:
        n_sentences += 1
        prev = BOS
        for word in sentence:
            if not 1 <= word <= vocab_size:
                raise ConfigError(f"word id {word} out of range")
            unigram_counts[word] += 1
            bigram_counts[prev][word] += 1
            prev = word
        bigram_counts[prev][EOS] += 1
    if n_sentences == 0:
        raise ConfigError("corpus is empty")

    total_tokens = sum(unigram_counts.values()) + n_sentences  # words + EOS
    # Add-one smoothed unigram over the full vocabulary plus EOS.
    denom = total_tokens + vocab_size + 1
    unigram_logprob = {
        w: math.log((unigram_counts.get(w, 0) + 1) / denom)
        for w in range(1, vocab_size + 1)
    }
    eos_logprob = math.log((n_sentences + 1) / denom)

    bigram_logprob: Dict[Tuple[int, int], float] = {}
    backoff_logweight: Dict[int, float] = {}
    for prev, counts in bigram_counts.items():
        history_total = sum(counts.values())
        discounted_mass = discount * len(counts)
        for word, count in counts.items():
            p = (count - discount) / history_total
            if p <= 0.0:
                continue
            bigram_logprob[(prev, word)] = math.log(p)
        backoff_logweight[prev] = math.log(discounted_mass / history_total)

    return NGramModel(
        vocab_size=vocab_size,
        unigram_logprob=unigram_logprob,
        bigram_logprob=bigram_logprob,
        backoff_logweight=backoff_logweight,
        eos_logprob=eos_logprob,
    )
