"""Grammar transducer (G): a word-level acceptor of the n-gram model
(paper, Section II -- the G of the composed L ∘ G decoding graph).

The standard backoff construction: one history state per word, plus a
single backoff (unigram) state.  Observed bigrams are direct word/word arcs
between history states; every history also has an epsilon backoff arc to
the unigram state carrying the backoff penalty.  These epsilon arcs are the
main source of epsilon transitions in the final decoding graph (the paper's
graph has 11.5% epsilon arcs, largely for the same reason: cross-word /
backoff modelling).
"""

from __future__ import annotations

from typing import Dict

from repro.lm.ngram import BOS, EOS, NGramModel
from repro.wfst.fst import EPSILON, Fst


def build_grammar_fst(model: NGramModel) -> Fst:
    """Build the G acceptor for a backoff bigram model.

    Input and output labels are both word ids; weights are LM log
    probabilities.
    """
    fst = Fst()
    backoff_state = fst.add_state()
    fst.set_final(backoff_state, model.eos_logprob)

    history_state: Dict[int, int] = {}

    def state_of(history: int) -> int:
        if history not in history_state:
            s = fst.add_state()
            history_state[history] = s
            # Backoff escape: epsilon arc to the unigram state.
            fst.add_arc(
                s,
                EPSILON,
                EPSILON,
                model.backoff_logweight.get(history, 0.0),
                backoff_state,
            )
            # Ending the sentence in this history.
            eos_lp = model.bigram_logprob.get((history, EOS))
            if eos_lp is not None:
                fst.set_final(s, eos_lp)
        return history_state[history]

    start = state_of(BOS)
    fst.set_start(start)

    # Unigram arcs out of the backoff state.
    for word in range(1, model.vocab_size + 1):
        fst.add_arc(
            backoff_state,
            word,
            word,
            model.unigram_logprob[word],
            state_of(word),
        )

    # Observed bigram arcs.
    for (prev, word), logprob in model.bigram_logprob.items():
        if word == EOS:
            continue  # handled as final weights
        fst.add_arc(state_of(prev), word, word, logprob, state_of(word))

    return fst
