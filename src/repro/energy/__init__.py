"""Area, power and energy models.

The paper estimates accelerator power/area with Synopsys Design Compiler
plus CACTI at 28 nm, and measures CPU/GPU power with RAPL/nvprof.  Offline
we provide analytical models calibrated to every absolute figure the paper
publishes (Section VI): accelerator power 389-462 mW, area 24.06-24.09 mm²,
prefetch FIFOs 4.83 mW, state-issuer comparators 0.15 mW, CPU 32.2 W,
GPU 76.4 W.
"""

from repro.energy.components import (
    AcceleratorAreaModel,
    AcceleratorEnergyModel,
    SramMacroModel,
)
from repro.energy.cpu_model import CpuSpec, CpuTimingModel, INTEL_I7_6700K
from repro.energy.report import EnergyReport, PlatformResult

__all__ = [
    "AcceleratorAreaModel",
    "AcceleratorEnergyModel",
    "SramMacroModel",
    "CpuSpec",
    "CpuTimingModel",
    "INTEL_I7_6700K",
    "EnergyReport",
    "PlatformResult",
]
