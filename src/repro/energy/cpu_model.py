"""CPU timing and power model (the Kaldi software decoder baseline).

The paper measures Kaldi's decoder on an Intel i7-6700K (Table II) with
RAPL for energy.  The analytical substitute charges per-operation costs to
the operation counts of our reference software decoder:

* arc processing is the dominant cost and is memory-bound: following the
  paper's workload (~25k arcs per frame; decode time 0.298 s per second of
  speech -- 16.7x slower than the final accelerator), the CPU sustains
  ~11M arcs/s, i.e. ~90 ns (~380 cycles at 4.2 GHz) per arc, dominated
  by cache misses on the sparse WFST working set;
* token reads/writes and per-frame bookkeeping add smaller terms;
* DNN inference runs at an effective 55 GFLOP/s (AVX2), which puts the
  DNN/search split at the paper's Figure 1 ratio (27% / 73%).

Average package power while decoding is the paper's measured 32.2 W.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.decoder.result import SearchStats


@dataclass(frozen=True)
class CpuSpec:
    """CPU hardware parameters (paper, Table II)."""

    name: str = "Intel Core i7 6700K"
    num_cores: int = 4
    frequency_hz: float = 4.2e9
    technology_nm: int = 14
    l1_kb: int = 64
    l2_kb_per_core: int = 256
    l3_mb: int = 8
    avg_power_w: float = 32.2


INTEL_I7_6700K = CpuSpec()


@dataclass(frozen=True)
class CpuTimingModel:
    """Operation-cost model of the software Viterbi decoder on the CPU."""

    spec: CpuSpec = INTEL_I7_6700K
    arc_process_s: float = 90e-9
    epsilon_arc_s: float = 90e-9
    token_write_s: float = 19e-9
    token_read_s: float = 7.6e-9
    frame_overhead_s: float = 11.4e-6
    effective_gflops: float = 55.0

    def search_seconds(self, stats: SearchStats) -> float:
        """Viterbi-search time for one decoded utterance."""
        return (
            stats.arcs_processed * self.arc_process_s
            + stats.epsilon_arcs_processed * self.epsilon_arc_s
            + stats.total_token_writes * self.token_write_s
            + sum(stats.active_tokens_per_frame) * self.token_read_s
            + stats.frames * self.frame_overhead_s
        )

    def search_energy_j(self, stats: SearchStats) -> float:
        return self.search_seconds(stats) * self.spec.avg_power_w

    def dnn_seconds(self, flops: float) -> float:
        """Time to evaluate ``flops`` of DNN work on the CPU."""
        if flops < 0:
            raise ConfigError("flops must be non-negative")
        return flops / (self.effective_gflops * 1e9)

    def dnn_energy_j(self, flops: float) -> float:
        return self.dnn_seconds(flops) * self.spec.avg_power_w
