"""Accelerator area / power / energy model (28 nm).

The paper synthesises the pipeline with Synopsys DC and models the SRAM
arrays with CACTI (enhanced, 28 nm).  Those tools are not available
offline, so this module provides analytical equivalents whose constants
are calibrated to the figures the paper publishes:

* total area 24.06 mm² (base) and 24.09 mm² with both techniques;
* the prefetch FIFOs/ROB add 0.05% area and dissipate 4.83 mW;
* the State Issuer comparators/offset table add 0.02% area and 0.15 mW;
* average power 389-462 mW across configurations, with the higher figures
  for the faster (prefetching) configurations because static power is the
  dominant term and execution time shrinks.

Energy for a decode is computed from the simulator's operation counters:
``E = P_static * t + sum(per-op energy * op count)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.errors import ConfigError
from repro.accel.config import AcceleratorConfig
from repro.accel.prefetch import PrefetchHardware
from repro.accel.stats import SimStats


@dataclass(frozen=True)
class SramMacroModel:
    """CACTI-like scaling for on-chip SRAM macros at 28 nm.

    Area grows linearly with capacity; per-access energy grows with the
    square root of capacity (wordline/bitline length).
    """

    area_mm2_per_mb: float = 1.8
    area_fixed_mm2: float = 0.03
    read_energy_pj_at_64kb: float = 10.0

    def area_mm2(self, size_bytes: int) -> float:
        if size_bytes < 0:
            raise ConfigError("size must be non-negative")
        return self.area_fixed_mm2 + self.area_mm2_per_mb * size_bytes / 2**20

    def access_energy_pj(self, size_bytes: int) -> float:
        if size_bytes <= 0:
            return 0.0
        return self.read_energy_pj_at_64kb * (size_bytes / (64 * 1024)) ** 0.5


@dataclass(frozen=True)
class AcceleratorAreaModel:
    """Die area of the accelerator.

    ``other_area_mm2`` covers the synthesised pipeline logic, the memory
    controller, clocking and interconnect; it is the calibration constant
    that puts the base configuration at the paper's 24.06 mm².
    """

    sram: SramMacroModel = field(default_factory=SramMacroModel)
    logic_area_mm2: float = 1.9
    other_area_mm2: float = 15.5675
    state_direct_area_mm2: float = 0.005  # 0.02% of total (paper)

    def sram_area_mm2(self, config: AcceleratorConfig) -> float:
        macros = [
            config.state_cache.size_bytes,
            config.arc_cache.size_bytes,
            config.token_cache.size_bytes,
            config.hash_table.size_bytes,  # two tables
            config.hash_table.size_bytes,
            config.acoustic_buffer_bytes,
        ]
        return sum(self.sram.area_mm2(m) for m in macros)

    def prefetch_area_mm2(self, config: AcceleratorConfig) -> float:
        if not config.prefetch_enabled:
            return 0.0
        # Flop-based FIFOs: no macro overhead, just the storage bits
        # (paper: +0.05% of total area).
        hw = PrefetchHardware()
        return self.sram.area_mm2_per_mb * hw.total_bytes / 2**20

    def total_mm2(self, config: AcceleratorConfig) -> float:
        total = (
            self.sram_area_mm2(config)
            + self.logic_area_mm2
            + self.other_area_mm2
            + self.prefetch_area_mm2(config)
        )
        if config.state_direct_enabled:
            total += self.state_direct_area_mm2
        return total


@dataclass
class EnergyBreakdown:
    """Joules per contributor for one decode."""

    static_j: float = 0.0
    dynamic_j: Dict[str, float] = field(default_factory=dict)

    @property
    def total_j(self) -> float:
        return self.static_j + sum(self.dynamic_j.values())


@dataclass(frozen=True)
class AcceleratorEnergyModel:
    """Energy/power from simulator counters.

    Constants (28 nm): leakage density 11 mW/mm² (puts static power at
    ~265 mW for the 24 mm² die -- the dominant term, which is why the
    speedup from prefetching also shows up as an energy reduction);
    DRAM at 35 pJ/byte; FP ops at 8 pJ.
    """

    area: AcceleratorAreaModel = field(default_factory=AcceleratorAreaModel)
    leakage_mw_per_mm2: float = 11.0
    dram_pj_per_byte: float = 35.0
    fp_op_pj: float = 8.0
    prefetch_power_w: float = 4.83e-3  # paper, Section VI
    state_direct_power_w: float = 0.15e-3  # paper, Section VI

    def static_power_w(self, config: AcceleratorConfig) -> float:
        from dataclasses import replace

        # Leakage of the base die; the two techniques' hardware uses the
        # paper's published totals directly (4.83 mW / 0.15 mW), which
        # already include their leakage.
        base = replace(
            config, prefetch_enabled=False, state_direct_enabled=False
        )
        power = self.area.total_mm2(base) * self.leakage_mw_per_mm2 * 1e-3
        if config.prefetch_enabled:
            power += self.prefetch_power_w
        if config.state_direct_enabled:
            power += self.state_direct_power_w
        return power

    def energy(
        self, config: AcceleratorConfig, stats: SimStats
    ) -> EnergyBreakdown:
        """Energy for one decode from its statistics."""
        seconds = stats.seconds(config.frequency_hz)
        out = EnergyBreakdown(
            static_j=self.static_power_w(config) * seconds
        )
        sram = self.area.sram

        def sram_energy(accesses: int, size_bytes: int) -> float:
            return accesses * sram.access_energy_pj(size_bytes) * 1e-12

        out.dynamic_j["state_cache"] = sram_energy(
            stats.state_cache.accesses, config.state_cache.size_bytes
        )
        out.dynamic_j["arc_cache"] = sram_energy(
            stats.arc_cache.accesses, config.arc_cache.size_bytes
        )
        out.dynamic_j["token_cache"] = sram_energy(
            stats.token_cache.accesses, config.token_cache.size_bytes
        )
        out.dynamic_j["hash"] = sram_energy(
            stats.hash.total_cycles, config.hash_table.size_bytes
        )
        out.dynamic_j["acoustic_buffer"] = sram_energy(
            stats.acoustic_lookups, config.acoustic_buffer_bytes
        )
        out.dynamic_j["fp_units"] = (
            (stats.fp_adds + stats.fp_compares) * self.fp_op_pj * 1e-12
        )
        out.dynamic_j["dram"] = (
            stats.traffic.total_bytes() * self.dram_pj_per_byte * 1e-12
        )
        return out

    def avg_power_w(self, config: AcceleratorConfig, stats: SimStats) -> float:
        seconds = stats.seconds(config.frequency_hz)
        if seconds == 0:
            return 0.0
        return self.energy(config, stats).total_j / seconds
