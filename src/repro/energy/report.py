"""Cross-platform energy/performance reports (Figures 9-12 and 14)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class PlatformResult:
    """One platform's decode of a fixed amount of speech."""

    name: str
    decode_seconds: float
    energy_j: float
    speech_seconds: float

    @property
    def decode_time_per_speech_second(self) -> float:
        """The paper's Figure 9 metric."""
        if self.speech_seconds == 0:
            return 0.0
        return self.decode_seconds / self.speech_seconds

    @property
    def energy_per_speech_second(self) -> float:
        """The paper's Figure 14 y-axis."""
        if self.speech_seconds == 0:
            return 0.0
        return self.energy_j / self.speech_seconds

    @property
    def avg_power_w(self) -> float:
        if self.decode_seconds == 0:
            return 0.0
        return self.energy_j / self.decode_seconds

    @property
    def realtime(self) -> bool:
        """Real-time speech recognition: decode faster than the speech."""
        return self.decode_seconds < self.speech_seconds


@dataclass
class EnergyReport:
    """Collects platform results and derives the paper's comparisons."""

    results: List[PlatformResult]

    def by_name(self) -> Dict[str, PlatformResult]:
        return {r.name: r for r in self.results}

    def speedup_vs(self, baseline: str) -> Dict[str, float]:
        """Figure 10: speedup of every platform over ``baseline``."""
        base = self.by_name()[baseline]
        return {
            r.name: base.decode_seconds / r.decode_seconds
            for r in self.results
        }

    def energy_reduction_vs(self, baseline: str) -> Dict[str, float]:
        """Figure 11: energy reduction of every platform vs ``baseline``."""
        base = self.by_name()[baseline]
        return {r.name: base.energy_j / r.energy_j for r in self.results}

    def rows(self) -> List[Dict[str, float]]:
        """Tabular view for the benchmark harness output."""
        return [
            {
                "platform": r.name,
                "decode_s_per_speech_s": r.decode_time_per_speech_second,
                "energy_j_per_speech_s": r.energy_per_speech_second,
                "avg_power_w": r.avg_power_w,
                "realtime": r.realtime,
            }
            for r in self.results
        ]
