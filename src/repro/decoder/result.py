"""Decode results and search statistics.

:class:`SearchStats` holds the *functional* counters of one Section II
Viterbi beam search -- tokens, arcs, pruning, per-frame active set (the
Figure 7 out-degree data).  They are timing-independent: the CPU/GPU
timing models price them, and the accelerator simulator and trace
replayer cross-check against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Sequence, Tuple


class _PrefixView(Sequence):
    """Immutable length-pinned view of an append-only list.

    The per-frame stats lists (``visited_state_degrees``,
    ``active_tokens_per_frame``) only ever grow, so pinning today's
    length over the live list is a true point-in-time snapshot at O(1)
    cost -- the cheap alternative to the O(T) copies streaming partials
    used to take on every call.
    """

    __slots__ = ("_data", "_length")

    def __init__(self, data: List[int], length: int) -> None:
        self._data = data
        self._length = length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._data[: self._length][index])
        n = self._length
        if index < 0:
            index += n
        if not 0 <= index < n:
            # The Sequence protocol requires IndexError here (for-loop
            # and unpacking termination), not a ReproError subclass.
            raise IndexError(  # repro-lint: disable=REP002
                "prefix view index out of range"
            )
        return self._data[index]

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self._data[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple, _PrefixView)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"_PrefixView({list(self)!r})"


@dataclass
class SearchStats:
    """Operation counts gathered during one decode.

    These counters drive the CPU timing model and the Figure 7 histogram;
    the accelerator simulator gathers its own cycle-level statistics but
    shares these functional counters for cross-checking.
    """

    frames: int = 0
    tokens_pruned: int = 0
    states_expanded: int = 0
    arcs_processed: int = 0
    epsilon_arcs_processed: int = 0
    tokens_created: int = 0
    tokens_updated: int = 0
    #: out-degree of every state fetched dynamically (Figure 7's data).
    visited_state_degrees: List[int] = field(default_factory=list)
    #: active tokens at the start of each frame.
    active_tokens_per_frame: List[int] = field(default_factory=list)

    @property
    def total_token_writes(self) -> int:
        return self.tokens_created + self.tokens_updated

    @property
    def mean_active_tokens(self) -> float:
        if not self.active_tokens_per_frame:
            return 0.0
        return sum(self.active_tokens_per_frame) / len(
            self.active_tokens_per_frame
        )

    def snapshot(self) -> "SearchStats":
        """A detached point-in-time copy, O(1) in the decode length.

        Scalar counters are copied by the dataclass ``replace``; the two
        per-frame lists -- which only ever grow -- are wrapped in
        length-pinned :class:`_PrefixView` instances instead of being
        deep-copied, so streaming ``partial()`` calls stay cheap no
        matter how long the session has run.
        """
        return replace(
            self,
            visited_state_degrees=_PrefixView(
                self.visited_state_degrees, len(self.visited_state_degrees)
            ),
            active_tokens_per_frame=_PrefixView(
                self.active_tokens_per_frame, len(self.active_tokens_per_frame)
            ),
        )

    @classmethod
    def merge(cls, stats_list) -> "SearchStats":
        """Aggregate the counters of several decodes (e.g. a test set)."""
        merged = cls()
        for s in stats_list:
            merged.frames += s.frames
            merged.tokens_pruned += s.tokens_pruned
            merged.states_expanded += s.states_expanded
            merged.arcs_processed += s.arcs_processed
            merged.epsilon_arcs_processed += s.epsilon_arcs_processed
            merged.tokens_created += s.tokens_created
            merged.tokens_updated += s.tokens_updated
            merged.visited_state_degrees.extend(s.visited_state_degrees)
            merged.active_tokens_per_frame.extend(s.active_tokens_per_frame)
        return merged


@dataclass(frozen=True)
class DecodeResult:
    """Output of one utterance decode (or one streaming partial).

    Attributes:
        words: best-path word ids in spoken order.
        log_likelihood: score of the best complete path.
        reached_final: True when the best token was in a final state
            (otherwise the decoder fell back to the best live token).
        stats: functional operation counts.
        committed_len: length of the stable prefix of ``words`` -- words
            the committed-prefix protocol has already emitted and will
            never retract (see :mod:`repro.decoder.traceback`).  0 for
            offline decodes and sessions running append-only
            (``commit_interval=0``).
    """

    words: Tuple[int, ...]
    log_likelihood: float
    reached_final: bool
    stats: SearchStats
    committed_len: int = 0

    @property
    def committed(self) -> Tuple[int, ...]:
        """The stable (never-retracted) prefix of :attr:`words`."""
        return self.words[: self.committed_len]

    @property
    def tail(self) -> Tuple[int, ...]:
        """The still-revisable suffix of :attr:`words` beyond the
        committed prefix -- the part a later partial may rewrite."""
        return self.words[self.committed_len:]
