"""Decode results and search statistics.

:class:`SearchStats` holds the *functional* counters of one Section II
Viterbi beam search -- tokens, arcs, pruning, per-frame active set (the
Figure 7 out-degree data).  They are timing-independent: the CPU/GPU
timing models price them, and the accelerator simulator and trace
replayer cross-check against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class SearchStats:
    """Operation counts gathered during one decode.

    These counters drive the CPU timing model and the Figure 7 histogram;
    the accelerator simulator gathers its own cycle-level statistics but
    shares these functional counters for cross-checking.
    """

    frames: int = 0
    tokens_pruned: int = 0
    states_expanded: int = 0
    arcs_processed: int = 0
    epsilon_arcs_processed: int = 0
    tokens_created: int = 0
    tokens_updated: int = 0
    #: out-degree of every state fetched dynamically (Figure 7's data).
    visited_state_degrees: List[int] = field(default_factory=list)
    #: active tokens at the start of each frame.
    active_tokens_per_frame: List[int] = field(default_factory=list)

    @property
    def total_token_writes(self) -> int:
        return self.tokens_created + self.tokens_updated

    @property
    def mean_active_tokens(self) -> float:
        if not self.active_tokens_per_frame:
            return 0.0
        return sum(self.active_tokens_per_frame) / len(
            self.active_tokens_per_frame
        )

    @classmethod
    def merge(cls, stats_list) -> "SearchStats":
        """Aggregate the counters of several decodes (e.g. a test set)."""
        merged = cls()
        for s in stats_list:
            merged.frames += s.frames
            merged.tokens_pruned += s.tokens_pruned
            merged.states_expanded += s.states_expanded
            merged.arcs_processed += s.arcs_processed
            merged.epsilon_arcs_processed += s.epsilon_arcs_processed
            merged.tokens_created += s.tokens_created
            merged.tokens_updated += s.tokens_updated
            merged.visited_state_degrees.extend(s.visited_state_degrees)
            merged.active_tokens_per_frame.extend(s.active_tokens_per_frame)
        return merged


@dataclass(frozen=True)
class DecodeResult:
    """Output of one utterance decode.

    Attributes:
        words: best-path word ids in spoken order.
        log_likelihood: score of the best complete path.
        reached_final: True when the best token was in a final state
            (otherwise the decoder fell back to the best live token).
        stats: functional operation counts.
    """

    words: Tuple[int, ...]
    log_likelihood: float
    reached_final: bool
    stats: SearchStats
