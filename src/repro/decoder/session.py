"""Resumable decode sessions and the fused multi-session frame sweep.

:class:`repro.decoder.batch.BatchDecoder` decodes complete utterances; a
live voice pipeline does not have complete utterances -- acoustic scores
arrive a batch at a time behind the GPU (paper Section III-A).  This
module makes the kernel's per-utterance search state (the
:class:`~repro.decoder.kernel.Frontier` plus its token trace) a
first-class :class:`DecodeSession` that can be fed incrementally:

* :meth:`DecodeSession.push` accepts any prefix of the utterance's score
  matrix, in chunks of any size;
* :meth:`DecodeSession.partial` returns the current best hypothesis
  without disturbing the search, so a UI can show words as they are
  spoken;
* :meth:`DecodeSession.finalize` ends the session and returns the same
  :class:`DecodeResult` a one-shot ``decode`` of the full matrix would --
  word for word and bit for bit on the path score, regardless of how the
  frames were chunked (asserted in ``tests/test_decode_session.py``).

:func:`advance_sessions` is the serving fast path: it advances *many*
sessions one frame each through
:meth:`repro.decoder.kernel.SearchKernel.fused_step` -- all frontiers
concatenated session-major, every stage of the recurrence (pruning via
each session's own strategy state, the bulk arc gather, score
accumulation, the segment-max merge and the epsilon closure) run once
over the combined arrays, keyed by ``session * num_states + state`` so
sessions never mix.  Per-session work drops from ~25 numpy dispatches
per frame to a handful of cheap splits, which is what lets a
continuous-batching server beat sequential single-session serving.  The
fused sweep is bit-identical per session to
:meth:`DecodeSession.push_frame`, including every
:class:`SearchStats` counter.

The fused sweep's gather/expand/merge array work runs on the decoder's
configured kernel backend (``DecoderConfig.backend``; see
:mod:`repro.decoder.backends`).  The compiled numba backend parallelizes
the fused expansion across the concatenated rows of *all* sessions in
the sweep, so continuous batching is where it pays most -- with
bit-identical per-session results, as the backend contract requires.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence, Tuple, Union

import numpy as np

from repro.common.errors import DecodeError
from repro.acoustic.scorer import AcousticScores
from repro.decoder.batch import BatchDecoder
from repro.decoder.kernel import Frontier
from repro.decoder.result import DecodeResult

Chunk = Union[AcousticScores, np.ndarray]


def chunk_matrix(chunk: Chunk) -> np.ndarray:
    """Normalise a scores chunk to a 2-D ``frames x phone-scores`` matrix.

    The shared front-door validation of every serving layer
    (:class:`~repro.system.server.StreamingServer` and the sharded tier's
    :class:`~repro.system.tier.ServingTier`): malformed chunks are
    rejected before they are buffered, queued, or shipped to a worker.
    """
    matrix = chunk.matrix if isinstance(chunk, AcousticScores) else np.asarray(chunk)
    if matrix.ndim != 2:
        raise DecodeError("scores chunk must be 2-D (frames x phone scores)")
    return matrix


#: Backwards-compatible alias (pre-tier name).
_chunk_matrix = chunk_matrix


class DecodeSession:
    """One utterance's resumable search state on a shared engine.

    Create with :meth:`BatchDecoder.open_session`.  Frames may arrive in
    chunks of any size; the session holds the frontier and token trace
    between pushes, exactly as the accelerator holds them in main memory
    between Acoustic Likelihood Buffer refills.
    """

    def __init__(self, decoder: BatchDecoder) -> None:
        self._decoder = decoder
        self._kernel = decoder.kernel
        self._frontier: Frontier = self._kernel.init_frontier()
        self._finalized = False

    # ------------------------------------------------------------------
    @property
    def decoder(self) -> BatchDecoder:
        return self._decoder

    @property
    def frames_pushed(self) -> int:
        return self._frontier.num_frames

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def alive(self) -> bool:
        """False once the beam emptied the search; the next push raises."""
        return self._frontier.states.size > 0

    @property
    def trace_memory_bytes(self) -> int:
        """Current traceback-buffer capacity, in bytes."""
        return self._frontier.trace.nbytes

    @property
    def trace_peak_bytes(self) -> int:
        """High-water mark of the traceback buffer, in bytes.

        With ``commit_interval=0`` this grows with the utterance; with
        commits enabled it plateaus at O(active tokens x window).
        """
        return self._frontier.trace.peak_bytes

    @property
    def committed_frames(self) -> int:
        """Frames covered by the committed (never-retracted) prefix."""
        return self._frontier.trace.committed_frames

    # ------------------------------------------------------------------
    def push_frame(self, frame_scores: np.ndarray) -> None:
        """Advance the search by one frame of acoustic scores."""
        self._require_open()
        row = np.asarray(frame_scores)
        if row.ndim != 1 or row.shape[0] < self._kernel.min_score_width:
            raise DecodeError(
                "frame scores must be a 1-D row with at least "
                f"{self._kernel.min_score_width} entries (one per phone id "
                f"on the graph), got shape {row.shape}"
            )
        frontier = self._frontier
        self._kernel.step_frame(frontier, frontier.num_frames, row)
        self._count_frame()

    def push(self, chunk: Chunk) -> int:
        """Advance by a chunk of frames; returns the number consumed."""
        matrix = _chunk_matrix(chunk)
        for row in matrix:
            self.push_frame(row)
        return len(matrix)

    def partial(self) -> DecodeResult:
        """Best hypothesis over the frames seen so far.

        Non-destructive: the session keeps accepting frames afterwards.
        The returned stats are a snapshot, detached from the live
        session.  Incremental under ``commit_interval > 0``: the
        committed prefix is reused as-is and only the tail beyond the
        last commit is backtracked, and the stats snapshot pins views
        over the append-only per-frame lists instead of copying them --
        partial cost stays O(window), not O(frames so far).
        """
        self._require_open()
        result = self._kernel.finalize(self._frontier)
        return replace(result, stats=result.stats.snapshot())

    def finalize(self) -> DecodeResult:
        """End the session and return the final hypothesis.

        Equivalent to ``BatchDecoder.decode`` on the concatenation of all
        pushed chunks.  The session rejects further pushes afterwards.
        """
        self._require_open()
        if self._frontier.num_frames == 0:
            raise DecodeError("no frames to decode")
        self._finalized = True
        return self._kernel.finalize(self._frontier)

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._finalized:
            raise DecodeError("session is already finalized")

    def _count_frame(self) -> None:
        frontier = self._frontier
        frontier.num_frames += 1
        frontier.stats.frames += 1
        # Committed-prefix commit point: between frames (never
        # mid-closure), after solo and fused sweeps alike.  Skipped when
        # the beam emptied this frame -- there is no live frontier to
        # converge, and the session is about to raise anyway.
        trace = frontier.trace
        if frontier.states.size and trace.should_commit(frontier.num_frames):
            frontier.bps = trace.commit(frontier.bps, frontier.num_frames)


# ----------------------------------------------------------------------
# Fused multi-session sweep
# ----------------------------------------------------------------------
def advance_sessions(
    pairs: Sequence[Tuple[DecodeSession, np.ndarray]],
) -> None:
    """Advance many sessions one frame each in a single fused numpy sweep.

    ``pairs`` holds ``(session, frame_scores)`` for each session to
    advance; sessions must be distinct, open, and share one decoder (one
    compiled graph and search config).  The result is bit-identical per
    session to calling ``session.push_frame(frame_scores)`` one by one.
    """
    if not pairs:
        return
    sessions = [session for session, _ in pairs]
    decoder = sessions[0]._decoder
    if len(set(map(id, sessions))) != len(sessions):
        raise DecodeError("fused sweep requires distinct sessions")
    for session in sessions:
        if session._decoder is not decoder:
            raise DecodeError("fused sweep requires sessions of one decoder")
        session._require_open()
        frontier = session._frontier
        if frontier.states.size == 0:
            raise DecodeError(
                f"beam emptied the search at frame {frontier.num_frames}"
            )
    if len(sessions) == 1:
        sessions[0].push_frame(pairs[0][1])
        return
    if any(session._frontier.observers for session in sessions):
        # Observers receive per-frontier events the fused sweep does not
        # construct; advance each session alone instead (same results).
        for session, row in pairs:
            session.push_frame(row)
        return
    rows = [np.asarray(row) for _, row in pairs]
    shape = rows[0].shape
    if any(row.shape != shape for row in rows):
        # Ragged score widths cannot be stacked into one fused sweep;
        # advance each session alone instead (same results, just not
        # fused) -- push_frame validates each row.
        for session, row in zip(sessions, rows):
            session.push_frame(row)
        return
    if len(shape) != 1 or shape[0] < decoder.min_score_width:
        raise DecodeError(
            "frame scores must be 1-D rows with at least "
            f"{decoder.min_score_width} entries (one per phone id on the "
            f"graph), got shape {shape}"
        )

    decoder.kernel.fused_step([s._frontier for s in sessions], np.stack(rows))
    for session in sessions:
        session._count_frame()
