"""Resumable decode sessions and the fused multi-session frame sweep.

:class:`repro.decoder.batch.BatchDecoder` decodes complete utterances; a
live voice pipeline does not have complete utterances -- acoustic scores
arrive a batch at a time behind the GPU (paper Section III-A).  This
module makes the engine's per-utterance search state (the frontier plus
its token trace) a first-class :class:`DecodeSession` that can be fed
incrementally:

* :meth:`DecodeSession.push` accepts any prefix of the utterance's score
  matrix, in chunks of any size;
* :meth:`DecodeSession.partial` returns the current best hypothesis
  without disturbing the search, so a UI can show words as they are
  spoken;
* :meth:`DecodeSession.finalize` ends the session and returns the same
  :class:`DecodeResult` a one-shot ``decode`` of the full matrix would --
  word for word and bit for bit on the path score, regardless of how the
  frames were chunked (asserted in ``tests/test_decode_session.py``).

:func:`advance_sessions` is the serving fast path: it advances *many*
sessions one frame each in a single fused numpy sweep.  All frontiers are
concatenated session-major and every stage of the recurrence -- beam and
histogram pruning, the bulk arc gather, score accumulation, the
segment-max merge and the epsilon closure -- runs once over the combined
arrays, keyed by ``session * num_states + state`` so sessions never mix.
Per-session work drops from ~25 numpy dispatches per frame to a handful
of cheap splits, which is what lets a continuous-batching server beat
sequential single-session serving.  The fused sweep is bit-identical per
session to :meth:`DecodeSession.push_frame`, including every
:class:`SearchStats` counter.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.common.errors import DecodeError
from repro.acoustic.scorer import AcousticScores
from repro.decoder.batch import (
    BatchDecoder,
    _csr_gather,
    _Frontier,
    _segment_best,
)
from repro.decoder.result import DecodeResult

Chunk = Union[AcousticScores, np.ndarray]


def _chunk_matrix(chunk: Chunk) -> np.ndarray:
    matrix = chunk.matrix if isinstance(chunk, AcousticScores) else np.asarray(chunk)
    if matrix.ndim != 2:
        raise DecodeError("scores chunk must be 2-D (frames x phone scores)")
    return matrix


class DecodeSession:
    """One utterance's resumable search state on a shared engine.

    Create with :meth:`BatchDecoder.open_session`.  Frames may arrive in
    chunks of any size; the session holds the frontier and token trace
    between pushes, exactly as the accelerator holds them in main memory
    between Acoustic Likelihood Buffer refills.
    """

    def __init__(self, decoder: BatchDecoder) -> None:
        self._decoder = decoder
        self._frontier: _Frontier = decoder._init_frontier()
        self._finalized = False

    # ------------------------------------------------------------------
    @property
    def decoder(self) -> BatchDecoder:
        return self._decoder

    @property
    def frames_pushed(self) -> int:
        return self._frontier.num_frames

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def alive(self) -> bool:
        """False once the beam emptied the search; the next push raises."""
        return self._frontier.states.size > 0

    # ------------------------------------------------------------------
    def push_frame(self, frame_scores: np.ndarray) -> None:
        """Advance the search by one frame of acoustic scores."""
        self._require_open()
        row = np.asarray(frame_scores)
        if row.ndim != 1 or row.shape[0] < self._decoder.min_score_width:
            raise DecodeError(
                "frame scores must be a 1-D row with at least "
                f"{self._decoder.min_score_width} entries (one per phone id "
                f"on the graph), got shape {row.shape}"
            )
        frontier = self._frontier
        self._decoder._advance(frontier, frontier.num_frames, row)
        self._count_frame()

    def push(self, chunk: Chunk) -> int:
        """Advance by a chunk of frames; returns the number consumed."""
        matrix = _chunk_matrix(chunk)
        for row in matrix:
            self.push_frame(row)
        return len(matrix)

    def partial(self) -> DecodeResult:
        """Best hypothesis over the frames seen so far.

        Non-destructive: the session keeps accepting frames afterwards.
        The returned stats are a snapshot, detached from the live session.
        """
        self._require_open()
        result = self._decoder._finalize(self._frontier)
        stats = replace(
            result.stats,
            visited_state_degrees=list(result.stats.visited_state_degrees),
            active_tokens_per_frame=list(result.stats.active_tokens_per_frame),
        )
        return replace(result, stats=stats)

    def finalize(self) -> DecodeResult:
        """End the session and return the final hypothesis.

        Equivalent to ``BatchDecoder.decode`` on the concatenation of all
        pushed chunks.  The session rejects further pushes afterwards.
        """
        self._require_open()
        if self._frontier.num_frames == 0:
            raise DecodeError("no frames to decode")
        self._finalized = True
        return self._decoder._finalize(self._frontier)

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._finalized:
            raise DecodeError("session is already finalized")

    def _count_frame(self) -> None:
        self._frontier.num_frames += 1
        self._frontier.stats.frames += 1


# ----------------------------------------------------------------------
# Fused multi-session sweep
# ----------------------------------------------------------------------
def advance_sessions(
    pairs: Sequence[Tuple[DecodeSession, np.ndarray]],
) -> None:
    """Advance many sessions one frame each in a single fused numpy sweep.

    ``pairs`` holds ``(session, frame_scores)`` for each session to
    advance; sessions must be distinct, open, and share one decoder (one
    compiled graph and search config).  The result is bit-identical per
    session to calling ``session.push_frame(frame_scores)`` one by one.
    """
    if not pairs:
        return
    sessions = [session for session, _ in pairs]
    decoder = sessions[0]._decoder
    if len(set(map(id, sessions))) != len(sessions):
        raise DecodeError("fused sweep requires distinct sessions")
    for session in sessions:
        if session._decoder is not decoder:
            raise DecodeError("fused sweep requires sessions of one decoder")
        session._require_open()
        frontier = session._frontier
        if frontier.states.size == 0:
            raise DecodeError(
                f"beam emptied the search at frame {frontier.num_frames}"
            )
    if len(sessions) == 1:
        sessions[0].push_frame(pairs[0][1])
        return
    rows = [np.asarray(row) for _, row in pairs]
    shape = rows[0].shape
    if any(row.shape != shape for row in rows):
        # Ragged score widths cannot be stacked into one fused sweep;
        # advance each session alone instead (same results, just not
        # fused) -- push_frame validates each row.
        for session, row in zip(sessions, rows):
            session.push_frame(row)
        return
    if len(shape) != 1 or shape[0] < decoder.min_score_width:
        raise DecodeError(
            "frame scores must be 1-D rows with at least "
            f"{decoder.min_score_width} entries (one per phone id on the "
            f"graph), got shape {shape}"
        )

    _fused_advance(decoder, [s._frontier for s in sessions], np.stack(rows))
    for session in sessions:
        session._count_frame()


def _fused_advance(
    decoder: BatchDecoder,
    frontiers: List[_Frontier],
    frame_stack: np.ndarray,
) -> None:
    """One frame of the recurrence for every frontier, fully fused.

    Mirrors :meth:`BatchDecoder._advance` stage by stage; comments only
    note where the multi-session bookkeeping differs.
    """
    config = decoder.config
    flat = decoder.flat
    n = len(frontiers)
    num_states = flat.num_states

    counts = np.array([f.states.size for f in frontiers], dtype=np.int64)
    starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]]
    )
    states = np.concatenate([f.states for f in frontiers])
    scores = np.concatenate([f.scores for f in frontiers])
    bps = np.concatenate([f.bps for f in frontiers])
    seg = np.repeat(np.arange(n, dtype=np.int64), counts)

    # Beam pruning, per session (every count is > 0, checked by caller).
    best = np.maximum.reduceat(scores, starts)
    keep = scores >= best[seg] - config.beam
    states, scores, bps, seg = states[keep], scores[keep], bps[keep], seg[keep]
    kept = np.bincount(seg, minlength=n)
    for i, frontier in enumerate(frontiers):
        frontier.stats.tokens_pruned += int(counts[i] - kept[i])

    # Histogram pruning: stable per-session top-max_active by score.
    if config.max_active and (kept > config.max_active).any():
        order = np.lexsort((-scores, seg))
        seg_sorted = seg[order]
        seg_starts = np.searchsorted(seg_sorted, np.arange(n))
        rank = np.arange(order.size, dtype=np.int64) - seg_starts[seg_sorted]
        mask = np.zeros(order.size, dtype=bool)
        mask[order[rank < config.max_active]] = True
        states, scores = states[mask], scores[mask]
        bps, seg = bps[mask], seg[mask]
        capped = np.bincount(seg, minlength=n)
        for i, frontier in enumerate(frontiers):
            frontier.stats.tokens_pruned += int(kept[i] - capped[i])
        kept = capped

    bounds = np.cumsum(kept)[:-1]
    degrees = flat.out_degree[states]
    for i, (frontier, deg) in enumerate(zip(frontiers, np.split(degrees, bounds))):
        frontier.stats.active_tokens_per_frame.append(int(kept[i]))
        frontier.stats.states_expanded += int(kept[i])
        frontier.stats.visited_state_degrees.extend(deg.tolist())

    # Bulk arc gather across every session's surviving states at once.
    arc_idx, src = _csr_gather(flat.first_arc[states], flat.num_non_eps[states])
    arc_seg = seg[src]
    arc_counts = np.bincount(arc_seg, minlength=n)
    for frontier, c in zip(frontiers, arc_counts):
        frontier.stats.arcs_processed += int(c)
    if arc_idx.size == 0:
        for frontier in frontiers:
            _set_empty(frontier)
        return

    dest = flat.arc_dest[arc_idx]
    new_scores = (
        scores[src]
        + flat.arc_weight64[arc_idx]
        + frame_stack[arc_seg, flat.arc_ilabel[arc_idx]]
    )

    # Segment-max merge on the combined (session, state) key.
    combined = arc_seg * num_states + dest
    uniq, winners = _segment_best(combined, new_scores)
    win_seg = arc_seg[winners]
    win_counts = np.bincount(win_seg, minlength=n)
    win_bounds = np.cumsum(win_counts)[:-1]
    next_states = uniq - win_seg * num_states
    next_scores = new_scores[winners]
    prev = bps[src[winners]]
    words = flat.arc_olabel[arc_idx[winners]]

    for frontier, st, sc, pv, wd in zip(
        frontiers,
        np.split(next_states, win_bounds),
        np.split(next_scores, win_bounds),
        np.split(prev, win_bounds),
        np.split(words, win_bounds),
    ):
        if st.size == 0:
            _set_empty(frontier)
            continue
        frontier.bps = frontier.trace.append_bulk(pv, wd)
        frontier.stats.tokens_created += st.size
        frontier.states = st
        frontier.scores = sc

    _fused_closure(decoder, frontiers)


def _fused_closure(decoder: BatchDecoder, frontiers: List[_Frontier]) -> None:
    """Epsilon closure to fixpoint over every frontier in lockstep rounds."""
    flat = decoder.flat
    n = len(frontiers)
    num_states = flat.num_states

    # Combined sorted token arrays: session-major concatenation keeps the
    # (session * num_states + state) keys globally ascending.
    f_comb = np.concatenate(
        [f.states + i * num_states for i, f in enumerate(frontiers)]
    )
    f_scores = np.concatenate([f.scores for f in frontiers])
    f_bps = np.concatenate([f.bps for f in frontiers])

    act_comb, act_scores, act_bps = f_comb, f_scores, f_bps
    while act_comb.size:
        act_seg, act_states = np.divmod(act_comb, num_states)
        arc_idx, src = _csr_gather(
            flat.eps_first[act_states], flat.num_eps[act_states]
        )
        if arc_idx.size == 0:
            break
        arc_seg = act_seg[src]
        eps_counts = np.bincount(arc_seg, minlength=n)
        for frontier, c in zip(frontiers, eps_counts):
            frontier.stats.epsilon_arcs_processed += int(c)

        dest = flat.arc_dest[arc_idx]
        cand = act_scores[src] + flat.arc_weight64[arc_idx]
        uniq, winners = _segment_best(arc_seg * num_states + dest, cand)
        cand_scores = cand[winners]
        cand_prev = act_bps[src[winners]]
        cand_word = flat.arc_olabel[arc_idx[winners]]
        cand_seg = arc_seg[winners]

        pos = np.searchsorted(f_comb, uniq)
        pos_clipped = np.minimum(pos, f_comb.size - 1)
        exists = (pos < f_comb.size) & (f_comb[pos_clipped] == uniq)
        improves = exists & (cand_scores > f_scores[pos_clipped])
        is_new = ~exists
        accepted = improves | is_new
        if not accepted.any():
            break

        # Trace records go to each session's own trace, in key order.
        acc_seg = cand_seg[accepted]
        acc_bounds = np.cumsum(np.bincount(acc_seg, minlength=n))[:-1]
        trace_idx = np.concatenate(
            [
                frontier.trace.append_bulk(pv, wd)
                for frontier, pv, wd in zip(
                    frontiers,
                    np.split(cand_prev[accepted], acc_bounds),
                    np.split(cand_word[accepted], acc_bounds),
                )
            ]
        )
        acc_rows = np.nonzero(accepted)[0]
        imp_in_acc = improves[acc_rows]
        new_in_acc = is_new[acc_rows]
        created = np.bincount(acc_seg[new_in_acc], minlength=n)
        updated = np.bincount(acc_seg[imp_in_acc], minlength=n)
        for i, frontier in enumerate(frontiers):
            frontier.stats.tokens_created += int(created[i])
            frontier.stats.tokens_updated += int(updated[i])

        upd = pos[improves]
        f_scores[upd] = cand_scores[improves]
        f_bps[upd] = trace_idx[imp_in_acc]
        ins = pos[is_new]
        f_comb = np.insert(f_comb, ins, uniq[is_new])
        f_scores = np.insert(f_scores, ins, cand_scores[is_new])
        f_bps = np.insert(f_bps, ins, trace_idx[new_in_acc])

        act_comb = uniq[accepted]
        act_scores = cand_scores[accepted]
        act_bps = trace_idx

    sizes = np.bincount(f_comb // num_states, minlength=n)
    bounds = np.cumsum(sizes)[:-1]
    for i, (frontier, st, sc, bp) in enumerate(
        zip(
            frontiers,
            np.split(f_comb, bounds),
            np.split(f_scores, bounds),
            np.split(f_bps, bounds),
        )
    ):
        frontier.states = st - i * num_states
        frontier.scores = sc
        frontier.bps = bp


def _set_empty(frontier: _Frontier) -> None:
    frontier.states = np.empty(0, dtype=np.int64)
    frontier.scores = np.empty(0, dtype=np.float64)
    frontier.bps = np.empty(0, dtype=np.int64)
