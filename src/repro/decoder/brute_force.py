"""Exhaustive-search reference for tiny graphs (an oracle for the Section
II Viterbi search that the beam decoders and accelerator approximate).

Enumerates *every* path through a compiled graph that consumes exactly the
utterance's frames (epsilon arcs consume nothing) and returns the best one.
Exponential, therefore only usable on toy graphs -- which is exactly the
point: it is an independent oracle, sharing no code with the beam decoders,
used by the property-based tests to validate the entire decoder stack.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import DecodeError
from repro.common.logmath import LOG_ZERO
from repro.acoustic.scorer import AcousticScores
from repro.wfst.layout import CompiledWfst


def brute_force_best_path(
    graph: CompiledWfst,
    scores: AcousticScores,
    max_paths: int = 2_000_000,
) -> Tuple[Tuple[int, ...], float]:
    """Return ``(words, log_likelihood)`` of the true best path.

    Raises:
        DecodeError: if no complete path exists or the search space
            exceeds ``max_paths`` expansions.
    """
    if scores.num_frames == 0:
        raise DecodeError("no frames to decode")

    best_score = LOG_ZERO
    best_words: Optional[Tuple[int, ...]] = None
    expansions = 0

    # Depth-first over (state, frame, score, words).
    stack: List[Tuple[int, int, float, Tuple[int, ...]]] = [
        (graph.start, 0, 0.0, ())
    ]
    num_frames = scores.num_frames
    while stack:
        state, frame, score, words = stack.pop()
        expansions += 1
        if expansions > max_paths:
            raise DecodeError("graph too large for brute force")

        if frame == num_frames:
            final = graph.final_weight(state)
            if final > LOG_ZERO / 2:
                total = score + final
                if total > best_score:
                    best_score = total
                    best_words = words
            # Epsilon arcs may still fire after the last frame.
        first, n_non_eps, n_eps = graph.arc_range(state)
        frame_scores = scores.frame(frame) if frame < num_frames else None
        for a in range(first, first + n_non_eps + n_eps):
            ilabel = int(graph.arc_ilabel[a])
            olabel = int(graph.arc_olabel[a])
            weight = float(graph.arc_weight[a])
            dest = int(graph.arc_dest[a])
            new_words = words + (olabel,) if olabel else words
            if ilabel == 0:
                stack.append((dest, frame, score + weight, new_words))
            elif frame < num_frames:
                stack.append(
                    (
                        dest,
                        frame + 1,
                        score + weight + float(frame_scores[ilabel]),
                        new_words,
                    )
                )

    if best_words is None:
        raise DecodeError("no complete path through the graph")
    return best_words, best_score
