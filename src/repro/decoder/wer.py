"""Word error rate scoring (the accuracy axis of the paper's evaluation;
Section V reports WER on Librispeech, here scored against synthetic
ground-truth transcripts)."""

from __future__ import annotations

from typing import Sequence


def levenshtein(ref: Sequence, hyp: Sequence) -> int:
    """Edit distance (insertions + deletions + substitutions)."""
    n, m = len(ref), len(hyp)
    if n == 0:
        return m
    if m == 0:
        return n
    prev = list(range(m + 1))
    for i in range(1, n + 1):
        cur = [i] + [0] * m
        for j in range(1, m + 1):
            cost = 0 if ref[i - 1] == hyp[j - 1] else 1
            cur[j] = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost)
        prev = cur
    return prev[m]


def word_error_rate(ref: Sequence, hyp: Sequence) -> float:
    """WER = edit distance / reference length (0 for empty == empty)."""
    if len(ref) == 0:
        return 0.0 if len(hyp) == 0 else float(len(hyp))
    return levenshtein(ref, hyp) / len(ref)
