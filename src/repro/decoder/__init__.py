"""Software decode engines: Viterbi beam search over a compiled WFST.

This is the algorithm of the paper's Section II, in the token-passing style
of Kaldi's decoder: per 10 ms frame, prune active tokens against the beam,
expand non-epsilon arcs with the frame's acoustic scores, then traverse
epsilon arcs without consuming input, and finally backtrack from the best
token.  One shared frame-recurrence kernel (:mod:`repro.decoder.kernel`)
implements that recurrence for every engine: the scalar reference
(``ViterbiDecoder``, the oracle), the vectorized batch engine, streaming
sessions, the lattice decoder -- plus the GPU model and the accelerator
trace recorder in their own packages.  Pruning strategies (fixed beam,
histogram cap, adaptive beam) and instrumentation observers plug into the
kernel rather than into individual engines.
"""

from repro.decoder.backends import (
    BackendFallbackWarning,
    KERNEL_BACKENDS,
    KernelBackend,
    available_backends,
    numba_available,
    resolve_backend,
)
from repro.decoder.kernel import (
    AdaptiveBeamPruning,
    BeamSearchConfig,
    ClosureEvent,
    DecoderConfig,
    ExpandEvent,
    FixedBeamPruning,
    Frontier,
    KernelObserver,
    PRUNING_STRATEGIES,
    PruneEvent,
    PruningStrategy,
    ReferenceKernel,
    SearchKernel,
)
from repro.decoder.viterbi import ViterbiDecoder
from repro.decoder.batch import BatchDecoder
from repro.decoder.session import DecodeSession, advance_sessions
from repro.decoder.result import DecodeResult, SearchStats
from repro.decoder.lattice import Lattice, LatticeDecoder, NBestEntry
from repro.decoder.wer import word_error_rate, levenshtein

__all__ = [
    "AdaptiveBeamPruning",
    "BackendFallbackWarning",
    "BatchDecoder",
    "BeamSearchConfig",
    "ClosureEvent",
    "DecodeResult",
    "DecodeSession",
    "DecoderConfig",
    "ExpandEvent",
    "FixedBeamPruning",
    "Frontier",
    "KERNEL_BACKENDS",
    "KernelBackend",
    "KernelObserver",
    "Lattice",
    "LatticeDecoder",
    "NBestEntry",
    "PRUNING_STRATEGIES",
    "PruneEvent",
    "PruningStrategy",
    "ReferenceKernel",
    "SearchKernel",
    "SearchStats",
    "ViterbiDecoder",
    "advance_sessions",
    "available_backends",
    "levenshtein",
    "numba_available",
    "resolve_backend",
    "word_error_rate",
]
