"""Software reference decoder: Viterbi beam search over a compiled WFST.

This is the algorithm of the paper's Section II, in the token-passing style
of Kaldi's decoder: per 10 ms frame, prune active tokens against the beam,
expand non-epsilon arcs with the frame's acoustic scores, then traverse
epsilon arcs without consuming input, and finally backtrack from the best
token.  The accelerator simulator implements the same recurrence in
hardware form; its output must match this decoder exactly (tested).
"""

from repro.decoder.viterbi import BeamSearchConfig, ViterbiDecoder
from repro.decoder.batch import BatchDecoder
from repro.decoder.session import DecodeSession, advance_sessions
from repro.decoder.result import DecodeResult, SearchStats
from repro.decoder.lattice import Lattice, LatticeDecoder, NBestEntry
from repro.decoder.wer import word_error_rate, levenshtein

__all__ = [
    "BatchDecoder",
    "BeamSearchConfig",
    "DecodeSession",
    "advance_sessions",
    "ViterbiDecoder",
    "DecodeResult",
    "SearchStats",
    "Lattice",
    "LatticeDecoder",
    "NBestEntry",
    "word_error_rate",
    "levenshtein",
]
