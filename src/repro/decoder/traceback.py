"""Windowed token traceback with a committed-prefix protocol.

The accelerator does not keep unbounded per-utterance history: token
records live in a bounded buffer and hypotheses are recovered by
backtracking a *window* of backpointers.  This module is the software
analogue.  :class:`TokenTrace` stores one ``(predecessor index, word)``
record per token write -- the token array in main memory -- and, when
constructed with a ``commit_interval``, periodically **commits** the
prefix every live hypothesis already agrees on and garbage-collects
every record the live frontier can no longer reach:

1. **Convergence** -- the lowest common ancestor of all live
   backpointers in the prev-tree is found by the classic max-climb
   (repeatedly replace the highest-indexed member with its predecessor;
   parent indices are strictly smaller, so the climb terminates at the
   LCA).  Every live path passes through that anchor, so the words on
   the root-to-anchor path can never be retracted by any future frame.
2. **Emit** -- those words are appended to the committed prefix exactly
   once (:attr:`TokenTrace.committed`).
3. **Compact** -- records not reachable from the live frontier are
   dropped and the survivors renumbered in place; the anchor becomes the
   new root.  Peak trace memory is O(active tokens x window) instead of
   O(utterance length).

The reachability mark phase is the compaction's only array-heavy inner
loop, so it routes through the :class:`~repro.decoder.backends.
KernelBackend` protocol (``trace_reachable``): the numpy and numba
backends must produce bit-identical keep masks, which keeps the
cross-backend identity guarantee intact through compaction.

``commit_interval=0`` (the default) disables commits entirely and the
trace behaves exactly as the historical append-only buffer -- every
offline engine keeps its bit-identical output.  With commits enabled the
*concatenation* ``committed + backtrack(bp)`` still reproduces the full
path word for word (asserted in ``tests/test_traceback.py``), because
compaction preserves every record on every live path.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.decoder.backends import KernelBackend

#: Bytes per trace record: two int64 fields (predecessor index, word).
TRACE_RECORD_BYTES = 16

#: Smallest record capacity a trace allocates.
_MIN_CAPACITY = 64


def trace_reachable_numpy(
    prev: np.ndarray, size: int, bps: np.ndarray, anchor: int
) -> np.ndarray:
    """Reference keep-mask: records reachable from ``bps`` down to ``anchor``.

    Frontier marking: start from the unique live backpointers and follow
    predecessor links, stopping at records already marked (the anchor is
    pre-marked, and every live chain passes through it).  The result is a
    boolean mask over ``prev[:size]`` -- a pure function of its inputs,
    so every backend implementation must reproduce it bit for bit.
    """
    keep = np.zeros(size, dtype=bool)
    keep[anchor] = True
    cur = np.unique(bps)
    while cur.size:
        cur = cur[~keep[cur]]
        if cur.size == 0:
            break
        keep[cur] = True
        cur = np.unique(prev[cur])
        cur = cur[cur >= 0]
    return keep


class TokenTrace:
    """Token trace with bulk appends and optional windowed compaction.

    With ``commit_interval=0`` this is the historical append-only
    buffer: records arrive a frame's worth at a time into a preallocated
    growing array, and backtracking is O(path length).  With
    ``commit_interval=K`` the owning session calls :meth:`commit` every
    K frames, which emits the converged word prefix into
    :attr:`committed` and compacts the buffer down to the records the
    live frontier still reaches (renumbering the caller's backpointers
    via the returned array).

    Args:
        commit_interval: frames between commits (0 = never commit).
        backend: kernel backend running the compaction's reachability
            mark; ``None`` uses the portable numpy reference.
    """

    def __init__(
        self,
        commit_interval: int = 0,
        backend: Optional[KernelBackend] = None,
    ) -> None:
        if commit_interval < 0:
            raise ConfigError("commit_interval must be >= 0")
        self._prev = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._word = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._size = 0
        self.commit_interval = commit_interval
        self._backend = backend
        self._committed: List[int] = []
        self._committed_cache: Optional[Tuple[int, ...]] = None
        #: Completed commits (compaction passes) so far.
        self.commits = 0
        #: Frames consumed at the last commit (the window's left edge).
        self.committed_frames = 0
        #: High-water mark of buffer capacity, in bytes.
        self.peak_bytes = _MIN_CAPACITY * TRACE_RECORD_BYTES

    # ------------------------------------------------------------------
    # Append / backtrack (the historical append-only surface)
    # ------------------------------------------------------------------
    def append_bulk(self, prev: np.ndarray, word: np.ndarray) -> np.ndarray:
        """Append records; returns their trace indices."""
        new_size = self._size + len(prev)
        if new_size > len(self._prev):
            capacity = max(new_size, 2 * len(self._prev))
            # One preallocated resize per array: the live prefix is
            # copied exactly once into the new buffer.
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self._size] = self._prev[: self._size]
            self._prev = grown
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self._size] = self._word[: self._size]
            self._word = grown
            nbytes = capacity * TRACE_RECORD_BYTES
            if nbytes > self.peak_bytes:
                self.peak_bytes = nbytes
        indices = np.arange(self._size, new_size, dtype=np.int64)
        self._prev[self._size: new_size] = prev
        self._word[self._size: new_size] = word
        self._size = new_size
        return indices

    def backtrack(self, index: int) -> List[int]:
        """Words on the path from the buffer's root to ``index``.

        After commits this is the *tail* beyond :attr:`committed` (the
        compacted root carries no word); the full hypothesis is always
        ``committed + backtrack(bp)``.
        """
        prev, word = self._prev, self._word
        words: List[int] = []
        i = int(index)
        while i >= 0:
            w = int(word[i])
            if w != 0:
                words.append(w)
            i = int(prev[i])
        words.reverse()
        return words

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Committed-prefix protocol
    # ------------------------------------------------------------------
    @property
    def committed(self) -> Tuple[int, ...]:
        """Words committed so far -- a stable prefix of every future
        hypothesis, emitted exactly once and never retracted."""
        if self._committed_cache is None:
            self._committed_cache = tuple(self._committed)
        return self._committed_cache

    @property
    def nbytes(self) -> int:
        """Current buffer capacity, in bytes."""
        return len(self._prev) * TRACE_RECORD_BYTES

    def should_commit(self, num_frames: int) -> bool:
        """True when ``num_frames`` crosses the next commit boundary."""
        return (
            self.commit_interval > 0
            and num_frames - self.committed_frames >= self.commit_interval
        )

    def commit(self, bps: np.ndarray, num_frames: int) -> np.ndarray:
        """Commit the converged prefix and compact; returns renumbered bps.

        ``bps`` are the live frontier's backpointers.  The records on the
        root-to-anchor path are emitted into :attr:`committed`; records
        unreachable from the frontier are dropped; survivors are
        renumbered with the anchor as the new root (index 0, no word).
        The returned array replaces the caller's ``bps`` in place --
        every subsequent :meth:`backtrack` of a renumbered index yields
        exactly the tail the dropped prefix used to contribute to.
        """
        anchor = self._lca(bps)
        if anchor < 0:
            # No convergence point inside the buffer: the live chains
            # climb past distinct roots, so there is no anchor to emit
            # or renumber to.  Kernel-built traces are single-rooted
            # (one start record) and never hit this; hand-built
            # multi-root traces get a safe no-op.
            return bps

        # Emit: words on the path root -> anchor, root exclusive of its
        # empty record, anchor inclusive.
        emitted = self.backtrack(anchor)
        if emitted:
            self._committed.extend(emitted)
            self._committed_cache = None

        # Mark: records the live frontier still reaches (anchor
        # pre-marked; every live chain stops there).
        prev = self._prev[: self._size]
        if self._backend is not None:
            keep = self._backend.trace_reachable(prev, self._size, bps, anchor)
        else:
            keep = trace_reachable_numpy(prev, self._size, bps, anchor)

        # Sweep: renumber survivors.  The anchor is the lowest kept index
        # (every kept record sits above it on some live chain), so it
        # renumbers to 0 -- the compacted buffer's root.
        idx_map = np.cumsum(keep) - 1
        new_size = int(idx_map[-1]) + 1 if self._size else 0
        capacity = _MIN_CAPACITY
        while capacity < new_size:
            capacity *= 2
        new_prev = np.empty(capacity, dtype=np.int64)
        new_word = np.empty(capacity, dtype=np.int64)
        old_prev = prev[keep]
        new_prev[:new_size] = idx_map[np.maximum(old_prev, 0)]
        new_word[:new_size] = self._word[: self._size][keep]
        new_prev[0] = -1
        new_word[0] = 0
        self._prev = new_prev
        self._word = new_word
        self._size = new_size
        nbytes = capacity * TRACE_RECORD_BYTES
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes

        self.commits += 1
        self.committed_frames = num_frames
        return idx_map[bps]

    def _lca(self, bps: np.ndarray) -> int:
        """Lowest common ancestor of ``bps`` in the prev-tree.

        Max-climb on a heap: predecessor indices are strictly smaller
        than their records' (append order), so repeatedly replacing the
        highest member with its predecessor converges on the deepest
        record every live path shares -- at worst the root (index 0).
        """
        heap = [-int(i) for i in np.unique(bps)]
        heapq.heapify(heap)
        prev = self._prev
        while True:
            top = heapq.heappop(heap)
            while heap and heap[0] == top:
                heapq.heappop(heap)  # lazy dedup of converged climbs
            if not heap:
                return -top
            heapq.heappush(heap, -int(prev[-top]))
