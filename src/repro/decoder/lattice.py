"""Word lattices and N-best extraction (beyond-paper extension of the
Section II search; built from the same token trace the accelerator's
Section III-B backpointer records encode).

The paper's accelerator emits a single best path (the token trace plus
backtracking), which is what its evaluation measures.  Production
recognisers usually also want alternatives; this module provides them on
the same search: a :class:`Lattice` is the DAG of all tokens that survived
the beam, with one node per (frame, state) and one edge per surviving arc
relaxation, from which N-best word sequences are extracted by k-shortest
paths.

The 1-best lattice path is exactly the Viterbi decoder's output (tested),
so the lattice is a strict generalisation of the trace the hardware writes
to main memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.common.errors import ConfigError, DecodeError
from repro.common.logmath import LOG_ZERO
from repro.acoustic.scorer import AcousticScores
from repro.decoder.viterbi import BeamSearchConfig
from repro.wfst.layout import CompiledWfst

#: Synthetic source/sink node ids (frame, state) cannot collide with.
_SOURCE = ("source",)
_SINK = ("sink",)


@dataclass(frozen=True)
class NBestEntry:
    """One N-best hypothesis."""

    words: Tuple[int, ...]
    log_likelihood: float


@dataclass
class Lattice:
    """A pruned token DAG over (frame, state) nodes."""

    graph: "nx.DiGraph"
    num_frames: int

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes() - 2  # minus source/sink

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def best_path(self) -> NBestEntry:
        """The Viterbi path through the lattice."""
        entries = self.nbest(1)
        if not entries:
            raise DecodeError("lattice contains no complete path")
        return entries[0]

    def nbest(self, k: int, max_paths: Optional[int] = None) -> List[NBestEntry]:
        """Up to ``k`` highest-likelihood distinct word sequences.

        Distinct paths can share a word sequence (the same words with a
        different time alignment), so path enumeration is capped at
        ``max_paths`` (default ``50 * k``) to bound the search.
        """
        if k < 1:
            raise ConfigError("k must be >= 1")
        if max_paths is None:
            max_paths = 50 * k
        elif max_paths < 1:
            raise ConfigError("max_paths must be >= 1")
        entries: List[NBestEntry] = []
        seen_words = set()
        paths = nx.shortest_simple_paths(
            self.graph, _SOURCE, _SINK, weight="cost"
        )
        examined = 0
        for path in paths:
            examined += 1
            if examined > max_paths:
                break
            words: List[int] = []
            score = 0.0
            for u, v in zip(path[:-1], path[1:]):
                data = self.graph.edges[u, v]
                score -= data["cost"]
                word = data.get("word", 0)
                if word:
                    words.append(word)
            key = tuple(words)
            if key in seen_words:
                continue
            seen_words.add(key)
            entries.append(NBestEntry(key, score))
            if len(entries) >= k:
                break
        return entries

    def oracle_wer(self, reference: Tuple[int, ...], k: int = 50) -> float:
        """Best WER achievable among the top-k hypotheses."""
        from repro.decoder.wer import word_error_rate

        entries = self.nbest(k)
        if not entries:
            return 1.0
        return min(word_error_rate(reference, e.words) for e in entries)


class LatticeDecoder:
    """Beam-search decoder that records the surviving search space."""

    def __init__(
        self,
        graph: CompiledWfst,
        config: BeamSearchConfig = BeamSearchConfig(),
        lattice_beam: float = 6.0,
    ) -> None:
        if lattice_beam <= 0:
            raise ConfigError("lattice_beam must be positive")
        self.graph = graph
        self.config = config
        self.lattice_beam = lattice_beam

    # ------------------------------------------------------------------
    def decode(self, scores: AcousticScores) -> Lattice:
        """Decode one utterance into a lattice."""
        if scores.num_frames == 0:
            raise DecodeError("no frames to decode")
        graph = self.graph

        lat = nx.DiGraph()
        lat.add_node(_SOURCE)
        lat.add_node(_SINK)

        def node(frame: int, state: int):
            return (frame, state)

        # tokens: state -> score for the current frame boundary.
        tokens: Dict[int, float] = {graph.start: 0.0}
        lat.add_edge(_SOURCE, node(0, graph.start), cost=0.0, word=0)
        self._epsilon_closure(tokens, 0, lat)

        for frame in range(scores.num_frames):
            frame_scores = scores.frame(frame)
            best = max(tokens.values())
            threshold = best - self.config.beam
            survivors = {
                s: score for s, score in tokens.items() if score >= threshold
            }
            if self.config.max_active and (
                len(survivors) > self.config.max_active
            ):
                keep = sorted(
                    survivors, key=lambda s: survivors[s], reverse=True
                )[: self.config.max_active]
                survivors = {s: survivors[s] for s in keep}
            if not survivors:
                raise DecodeError(f"beam emptied the search at frame {frame}")

            next_tokens: Dict[int, float] = {}
            for state, score in survivors.items():
                first, n_non_eps, _ = graph.arc_range(state)
                for a in range(first, first + n_non_eps):
                    arc_score = (
                        float(graph.arc_weight[a])
                        + float(frame_scores[graph.arc_ilabel[a]])
                    )
                    dest = int(graph.arc_dest[a])
                    new = score + arc_score
                    if new > next_tokens.get(dest, LOG_ZERO):
                        next_tokens[dest] = new
                    lat.add_edge(
                        node(frame, state),
                        node(frame + 1, dest),
                        cost=-arc_score,
                        word=int(graph.arc_olabel[a]),
                    )
            self._epsilon_closure(next_tokens, frame + 1, lat)
            tokens = next_tokens

        finals = {
            s: score + graph.final_weight(s)
            for s, score in tokens.items()
            if graph.is_final(s)
        }
        if finals:
            for state in finals:
                lat.add_edge(
                    node(scores.num_frames, state),
                    _SINK,
                    cost=-graph.final_weight(state),
                    word=0,
                )
        else:
            # No token reached a final state: fall back to the live tokens
            # with zero final weight, mirroring ``ViterbiDecoder._finalize``
            # (and ``BatchDecoder``) -- the 1-best lattice path is then the
            # reference decoder's best-live-token hypothesis.
            for state in tokens:
                lat.add_edge(
                    node(scores.num_frames, state), _SINK, cost=0.0, word=0
                )

        lattice = Lattice(lat, scores.num_frames)
        self._prune(lattice)
        return lattice

    # ------------------------------------------------------------------
    def _epsilon_closure(
        self, tokens: Dict[int, float], frame: int, lat: "nx.DiGraph"
    ) -> None:
        graph = self.graph
        worklist = list(tokens.keys())
        while worklist:
            state = worklist.pop()
            score = tokens[state]
            first, n_non_eps, n_eps = graph.arc_range(state)
            for a in range(first + n_non_eps, first + n_non_eps + n_eps):
                dest = int(graph.arc_dest[a])
                weight = float(graph.arc_weight[a])
                lat.add_edge(
                    (frame, state),
                    (frame, dest),
                    cost=-weight,
                    word=int(graph.arc_olabel[a]),
                )
                new = score + weight
                if new > tokens.get(dest, LOG_ZERO):
                    tokens[dest] = new
                    worklist.append(dest)

    def _prune(self, lattice: Lattice) -> None:
        """Drop nodes whose best complete path is outside the lattice beam."""
        g = lattice.graph
        try:
            fwd = nx.shortest_path_length(g, source=_SOURCE, weight="cost")
            bwd = nx.shortest_path_length(
                g.reverse(copy=False), source=_SINK, weight="cost"
            )
        except nx.NetworkXNoPath:  # pragma: no cover - defensive
            return
        best = fwd.get(_SINK)
        if best is None:
            raise DecodeError("lattice has no source-to-sink path")
        cut = best + self.lattice_beam
        doomed = [
            n
            for n in list(g.nodes)
            if n not in (_SOURCE, _SINK)
            and (n not in fwd or n not in bwd or fwd[n] + bwd[n] > cut)
        ]
        g.remove_nodes_from(doomed)
