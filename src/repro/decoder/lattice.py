"""Word lattices and N-best extraction (beyond-paper extension of the
Section II search; built from the same token trace the accelerator's
Section III-B backpointer records encode).

The paper's accelerator emits a single best path (the token trace plus
backtracking), which is what its evaluation measures.  Production
recognisers usually also want alternatives; this module provides them on
the same search: a :class:`Lattice` is the DAG of all tokens that survived
the beam, with one node per (frame, state) and one edge per surviving arc
relaxation, from which N-best word sequences are extracted by k-shortest
paths.

Since the kernel refactor the beam search runs on the shared vectorized
:class:`~repro.decoder.kernel.SearchKernel`; lattice-arc capture is a
:class:`~repro.decoder.kernel.KernelObserver` (:class:`_LatticeBuilder`)
that receives each frame's expansion and epsilon-closure arc streams as
numpy arrays.  Lattice-beam pruning is vectorized too: the forward
(source-to-node) costs are exactly the kernel's token scores, the
backward costs are swept frame-by-frame with ``np.minimum.at``
relaxations, and only edges on paths within ``lattice_beam`` of the best
ever reach networkx.  Together this removes all per-arc Python work from
the decode hot path -- an order of magnitude over the former
dict-over-networkx search loop
(``benchmarks/bench_lattice_throughput.py`` gates the win at >= 3x).

The 1-best lattice path is exactly the Viterbi decoder's output (tested),
so the lattice is a strict generalisation of the trace the hardware writes
to main memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.common.errors import ConfigError, DecodeError
from repro.common.logmath import LOG_ZERO
from repro.acoustic.scorer import AcousticScores
from repro.decoder.kernel import (
    ClosureEvent,
    DecoderConfig,
    ExpandEvent,
    KernelObserver,
    SearchKernel,
)
from repro.decoder.result import SearchStats
from repro.wfst.layout import CompiledWfst, FlatLayout

#: Synthetic source/sink node ids (frame, state) cannot collide with.
_SOURCE = ("source",)
_SINK = ("sink",)

_INF = np.inf


@dataclass(frozen=True)
class NBestEntry:
    """One N-best hypothesis."""

    words: Tuple[int, ...]
    log_likelihood: float


@dataclass
class Lattice:
    """A pruned token DAG over (frame, state) nodes."""

    graph: "nx.DiGraph"
    num_frames: int
    #: Functional counters of the underlying kernel search (shared
    #: semantics with every other engine); None for hand-built lattices.
    stats: Optional[SearchStats] = None
    #: Whether any token ended in a final state; False means the sink
    #: edges came from the shared best-live-token fallback policy.
    reached_final: bool = True

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes() - 2  # minus source/sink

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def best_path(self) -> NBestEntry:
        """The Viterbi path through the lattice."""
        entries = self.nbest(1)
        if not entries:
            raise DecodeError("lattice contains no complete path")
        return entries[0]

    def nbest(self, k: int, max_paths: Optional[int] = None) -> List[NBestEntry]:
        """Up to ``k`` highest-likelihood distinct word sequences.

        Distinct paths can share a word sequence (the same words with a
        different time alignment), so path enumeration is capped at
        ``max_paths`` (default ``50 * k``) to bound the search.
        """
        if k < 1:
            raise ConfigError("k must be >= 1")
        if max_paths is None:
            max_paths = 50 * k
        elif max_paths < 1:
            raise ConfigError("max_paths must be >= 1")
        entries: List[NBestEntry] = []
        seen_words = set()
        paths = nx.shortest_simple_paths(
            self.graph, _SOURCE, _SINK, weight="cost"
        )
        examined = 0
        for path in paths:
            examined += 1
            if examined > max_paths:
                break
            words: List[int] = []
            score = 0.0
            for u, v in zip(path[:-1], path[1:]):
                data = self.graph.edges[u, v]
                score -= data["cost"]
                word = data.get("word", 0)
                if word:
                    words.append(word)
            key = tuple(words)
            if key in seen_words:
                continue
            seen_words.add(key)
            entries.append(NBestEntry(key, score))
            if len(entries) >= k:
                break
        return entries

    def oracle_wer(self, reference: Tuple[int, ...], k: int = 50) -> float:
        """Best WER achievable among the top-k hypotheses."""
        from repro.decoder.wer import word_error_rate

        entries = self.nbest(k)
        if not entries:
            return 1.0
        return min(word_error_rate(reference, e.words) for e in entries)


@dataclass
class _EdgeGroup:
    """One event's arc stream as parallel edge arrays.

    ``u_frame == v_frame`` marks an epsilon (within-frame) group.
    """

    u_frame: int
    v_frame: int
    srcs: np.ndarray
    dests: np.ndarray
    costs: np.ndarray
    words: np.ndarray


class _LatticeBuilder(KernelObserver):
    """Kernel observer that captures the surviving search space as edges.

    Each :class:`ExpandEvent` contributes one ``(frame, src) -> (frame+1,
    dest)`` edge per processed non-epsilon arc (cost ``-(arc weight +
    acoustic score)``, bit-identical to the scalar formulation); each
    :class:`ClosureEvent` round contributes ``(pass, src) -> (pass,
    dest)`` edges for its epsilon arcs.  Re-relaxation rounds re-emit
    identical edges and parallel arcs between one (src, dest) pair keep
    only the likeliest arc -- the cost the Viterbi recurrence itself
    uses -- so the edge relation matches the search exactly.
    """

    def __init__(self, flat: FlatLayout) -> None:
        self._flat = flat
        self.groups: List[_EdgeGroup] = []

    def _append(self, u_frame, v_frame, srcs, dests, costs, words) -> None:
        # Parallel arcs between one (src, dest) pair keep the likeliest
        # arc (min cost; ties keep the earlier arc, like the kernel's
        # first-wins relaxation).
        combined = srcs * np.int64(self._flat.num_states + 1) + dests
        order = np.lexsort((costs, combined))
        sorted_key = combined[order]
        keep = np.empty(order.size, dtype=bool)
        keep[0] = True
        keep[1:] = sorted_key[1:] != sorted_key[:-1]
        winners = order[keep]
        winners.sort()
        self.groups.append(_EdgeGroup(
            u_frame, v_frame,
            srcs[winners], dests[winners], costs[winners],
            np.asarray(words)[winners],
        ))

    def on_expand(self, event: ExpandEvent) -> None:
        if len(event.arc_idx) == 0:
            return
        flat = self._flat
        arc_idx = event.arc_idx
        costs = -(
            flat.arc_weight64[arc_idx]
            + event.frame_scores[flat.arc_ilabel[arc_idx]]
        )
        self._append(
            event.frame,
            event.frame + 1,
            event.states[event.arc_src],
            event.arc_dest,
            costs,
            flat.arc_olabel[arc_idx],
        )

    def on_closure(self, event: ClosureEvent) -> None:
        if len(event.arc_idx) == 0:
            return
        flat = self._flat
        arc_idx = event.arc_idx
        self._append(
            event.pass_index,
            event.pass_index,
            event.states[event.arc_src],
            event.arc_dest,
            -flat.arc_weight64[arc_idx],
            flat.arc_olabel[arc_idx],
        )


class LatticeDecoder:
    """Beam-search decoder that records the surviving search space.

    Runs the shared vectorized kernel with a lattice-capture observer;
    pruning strategies, emptied-beam policy and functional counters are
    therefore identical to every other engine.
    """

    def __init__(
        self,
        graph: CompiledWfst,
        config: DecoderConfig = DecoderConfig(),
        lattice_beam: float = 6.0,
    ) -> None:
        if lattice_beam <= 0:
            raise ConfigError("lattice_beam must be positive")
        self.graph = graph
        self.config = config
        self.lattice_beam = lattice_beam
        self.kernel = SearchKernel(graph, config)

    # ------------------------------------------------------------------
    def decode(self, scores: AcousticScores) -> Lattice:
        """Decode one utterance into a lattice."""
        if scores.num_frames == 0:
            raise DecodeError("no frames to decode")
        kernel = self.kernel
        builder = _LatticeBuilder(kernel.flat)
        frontier = kernel.init_frontier(observers=(builder,))
        # Forward costs are free: the frontier's token scores at each
        # frame boundary are exactly the best source-to-node path costs.
        boundaries = [(frontier.states.copy(), frontier.scores.copy())]
        for frame in range(scores.num_frames):
            kernel.step_frame(frontier, frame, scores.frame(frame))
            frontier.num_frames += 1
            frontier.stats.frames += 1
            boundaries.append((frontier.states.copy(), frontier.scores.copy()))

        lat, reached_final = self._build_pruned(
            builder.groups, boundaries, scores.num_frames
        )
        return Lattice(
            lat, scores.num_frames,
            stats=frontier.stats, reached_final=reached_final,
        )

    # ------------------------------------------------------------------
    def _build_pruned(
        self,
        groups: List[_EdgeGroup],
        boundaries: List[Tuple[np.ndarray, np.ndarray]],
        num_frames: int,
    ) -> Tuple["nx.DiGraph", bool]:
        """Lattice-beam pruning + graph build, all before networkx.

        A node survives when its best complete path cost ``fwd + bwd``
        is within ``lattice_beam`` of the best path; an edge survives
        when both endpoints do (the semantics of dropping the doomed
        nodes).  ``fwd`` comes from the recorded token scores; ``bwd``
        is swept backwards one frame boundary at a time -- non-epsilon
        edges in one vectorized relaxation, within-frame epsilon edges
        iterated to fixpoint (the epsilon subgraph is acyclic, so the
        iterations converge in at most its depth).
        """
        flat = self.kernel.flat
        num_states = flat.num_states
        shape = (num_frames + 1, num_states)

        fwd = np.full(shape, _INF)
        for f, (states, token_scores) in enumerate(boundaries):
            fwd[f, states] = -token_scores

        # Group the edge arrays by frame boundary.
        expand: List[Optional[_EdgeGroup]] = [None] * num_frames
        eps: List[List[_EdgeGroup]] = [[] for _ in range(num_frames + 1)]
        for group in groups:
            if group.u_frame == group.v_frame:
                eps[group.u_frame].append(group)
            else:
                expand[group.u_frame] = group

        # Terminal costs, per the shared finalize policy.
        bwd = np.full(shape, _INF)
        end_states, _ = boundaries[num_frames]
        finals = flat.final_weights[end_states]
        final_mask = finals > LOG_ZERO / 2
        if final_mask.any():
            bwd[num_frames, end_states[final_mask]] = -finals[final_mask]
        else:
            bwd[num_frames, end_states] = 0.0

        # Backward sweep: expand edges first, then the frame boundary's
        # epsilon edges (all closure rounds of the pass combined) to
        # fixpoint.
        for f in range(num_frames, -1, -1):
            row = bwd[f]
            if f < num_frames and expand[f] is not None:
                group = expand[f]
                np.minimum.at(
                    row, group.srcs, group.costs + bwd[f + 1][group.dests]
                )
            if eps[f]:
                srcs = np.concatenate([g.srcs for g in eps[f]])
                dests = np.concatenate([g.dests for g in eps[f]])
                costs = np.concatenate([g.costs for g in eps[f]])
                while True:
                    before = row[srcs]
                    np.minimum.at(row, srcs, costs + row[dests])
                    if not (row[srcs] < before).any():
                        break

        total = fwd + bwd
        best = total.min()
        if not np.isfinite(best):
            raise DecodeError("lattice has no source-to-sink path")
        keep = total <= best + self.lattice_beam

        # Materialise only the surviving edges.
        lat = nx.DiGraph()
        lat.add_node(_SOURCE)
        lat.add_node(_SINK)
        start = self.graph.start
        if keep[0, start]:
            lat.add_edge(_SOURCE, (0, start), cost=0.0, word=0)
        for group in groups:
            mask = keep[group.u_frame, group.srcs] & keep[
                group.v_frame, group.dests
            ]
            if not mask.any():
                continue
            u_frame, v_frame = group.u_frame, group.v_frame
            lat.add_edges_from(
                ((u_frame, s), (v_frame, d), {"cost": c, "word": w})
                for s, d, c, w in zip(
                    group.srcs[mask].tolist(),
                    group.dests[mask].tolist(),
                    group.costs[mask].tolist(),
                    group.words[mask].tolist(),
                )
            )
        if final_mask.any():
            for state, weight in zip(
                end_states[final_mask].tolist(),
                finals[final_mask].tolist(),
            ):
                if keep[num_frames, state]:
                    lat.add_edge(
                        (num_frames, state), _SINK, cost=-weight, word=0
                    )
        else:
            # No token reached a final state: fall back to the live
            # tokens at zero cost, mirroring every engine's finalize --
            # the 1-best lattice path is then the reference decoders'
            # best-live-token hypothesis.
            for state in end_states.tolist():
                if keep[num_frames, state]:
                    lat.add_edge(
                        (num_frames, state), _SINK, cost=0.0, word=0
                    )
        return lat, bool(final_mask.any())
