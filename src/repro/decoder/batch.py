"""Vectorized multi-utterance batch decoding engine.

:class:`repro.decoder.viterbi.ViterbiDecoder` is the faithful scalar
reference: per frame it walks a Python dict of tokens, expanding arcs one
by one.  That is the right shape for validating the accelerator model but
is the wrong shape for serving traffic -- the per-token interpreter
overhead dominates.  This module restructures the exact same recurrence
into flat array sweeps over the :class:`repro.wfst.layout.FlatLayout`
Structure-of-Arrays view:

* **bulk arc gather** -- the whole frontier's arc blocks are materialized
  at once from the CSR offsets (``np.repeat`` + ``cumsum`` prefix trick);
* **vectorized accumulation** -- ``score[src] + weight + acoustic[frame,
  ilabel]`` is one fused array expression (float64 end to end, matching the
  scalar decoder's arithmetic bit for bit);
* **segment-max merging** -- the best incoming arc per destination state is
  found with one ``lexsort``-based reduction instead of dict relaxation;
* **vectorized pruning** -- beam pruning is a boolean mask, histogram
  (``max_active``) pruning one stable ``argsort``;
* **epsilon closure by rounds** -- each round relaxes every epsilon arc of
  the improved frontier at once; the epsilon subgraph is acyclic, so the
  rounds converge in at most its depth.

:class:`BatchDecoder` runs many utterances through this engine in
lockstep: one shared compiled graph, one frontier per utterance, all
frontiers advanced frame by frame.  Word output is equivalent to the
scalar decoder (asserted in ``tests/test_batch_decoder.py``); path scores
are bit-identical because the per-path float additions associate in the
same order.  Ties between equal-likelihood paths may resolve to a
different (equally optimal) predecessor, and the order-dependent
``tokens_updated`` / ``epsilon_arcs_processed`` counters are engine
approximations; every other :class:`SearchStats` counter keeps the
reference semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.decoder.session import DecodeSession

from repro.common.errors import DecodeError
from repro.common.logmath import LOG_ZERO
from repro.acoustic.scorer import AcousticScores
from repro.decoder.result import DecodeResult, SearchStats
from repro.decoder.viterbi import BeamSearchConfig
from repro.wfst.layout import CompiledWfst, FlatLayout


def _csr_gather(first: np.ndarray, counts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten CSR arc blocks into ``(arc_indices, source_rows)``.

    ``first[i]`` / ``counts[i]`` describe a contiguous block of arcs; the
    result enumerates every arc of every block in block order, plus the row
    ``i`` each arc came from.
    """
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    src = np.repeat(np.arange(len(first), dtype=np.int64), counts)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return first[src] + offsets, src


def _segment_best(dest: np.ndarray, score: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per unique destination, the position of its best-scoring candidate.

    Returns ``(unique_dests_sorted, winner_positions)``.  Ties keep the
    earliest candidate (source-major, arc order), mirroring the scalar
    decoder's first-wins relaxation.
    """
    order = np.lexsort((-score, dest))
    sorted_dest = dest[order]
    first = np.empty(len(order), dtype=bool)
    first[0] = True
    first[1:] = sorted_dest[1:] != sorted_dest[:-1]
    return sorted_dest[first], order[first]


class _BulkTrace:
    """Append-only token trace with bulk (array) appends.

    Same contract as the scalar decoder's ``_TokenTrace`` -- one
    ``(predecessor index, word)`` record per token write -- but records
    arrive a frame's worth at a time into capacity-doubling arrays, so
    appends are amortized O(1) and backtracking is O(path length) at any
    point (streaming sessions backtrack repeatedly for partials).
    """

    def __init__(self) -> None:
        self._prev = np.empty(64, dtype=np.int64)
        self._word = np.empty(64, dtype=np.int64)
        self._size = 0

    def append_bulk(self, prev: np.ndarray, word: np.ndarray) -> np.ndarray:
        """Append records; returns their trace indices."""
        new_size = self._size + len(prev)
        if new_size > len(self._prev):
            capacity = max(new_size, 2 * len(self._prev))
            self._prev = np.concatenate(
                [self._prev[: self._size],
                 np.empty(capacity - self._size, dtype=np.int64)]
            )
            self._word = np.concatenate(
                [self._word[: self._size],
                 np.empty(capacity - self._size, dtype=np.int64)]
            )
        indices = np.arange(self._size, new_size, dtype=np.int64)
        self._prev[self._size: new_size] = prev
        self._word[self._size: new_size] = word
        self._size = new_size
        return indices

    def backtrack(self, index: int) -> List[int]:
        prev, word = self._prev, self._word
        words: List[int] = []
        i = int(index)
        while i >= 0:
            w = int(word[i])
            if w != 0:
                words.append(w)
            i = int(prev[i])
        words.reverse()
        return words

    def __len__(self) -> int:
        return self._size


@dataclass
class _Frontier:
    """Per-utterance search state between frames.

    ``states`` is kept sorted ascending; ``scores`` / ``bps`` are parallel
    to it.  The invariant makes the epsilon-closure merges a sorted-array
    merge instead of a hash probe.  ``num_frames`` counts the frames
    consumed so far (sessions grow it one push at a time).
    """

    states: np.ndarray
    scores: np.ndarray
    bps: np.ndarray
    trace: _BulkTrace
    stats: SearchStats
    num_frames: int


class BatchDecoder:
    """Vectorized beam-search decoder for one or many utterances.

    Drop-in equivalent of :class:`ViterbiDecoder` on word output, plus
    :meth:`decode_batch` for decoding a whole batch of utterances against
    the shared compiled graph in lockstep.
    """

    def __init__(
        self,
        graph: CompiledWfst,
        config: BeamSearchConfig = BeamSearchConfig(),
    ) -> None:
        self.graph = graph
        self.config = config
        self.flat: FlatLayout = graph.flat()
        #: Shortest score row that every arc's ilabel can index safely.
        self.min_score_width: int = (
            int(self.flat.arc_ilabel.max()) + 1 if self.flat.num_arcs else 1
        )

    # ------------------------------------------------------------------
    def open_session(self) -> "DecodeSession":
        """Open a resumable streaming decode session on this engine.

        The session accepts acoustic-score chunks of any size and can
        report partial hypotheses between chunks; see
        :class:`repro.decoder.session.DecodeSession`.
        """
        from repro.decoder.session import DecodeSession

        return DecodeSession(self)

    def decode(self, scores: AcousticScores) -> DecodeResult:
        """Decode one utterance; returns the best word sequence."""
        return self.decode_batch([scores])[0]

    def decode_batch(
        self, scores_batch: Sequence[AcousticScores]
    ) -> List[DecodeResult]:
        """Decode a batch of utterances, advanced frame by frame in lockstep.

        Utterances may be ragged (different frame counts); each one is
        finalized after its own last frame.  Results come back in input
        order and match per-utterance :meth:`decode` exactly.  Each
        utterance runs as a :class:`DecodeSession`; frames advance through
        the fused multi-session sweep, one numpy pass per frame for the
        whole batch.
        """
        from repro.decoder.session import advance_sessions

        if not scores_batch:
            return []
        for scores in scores_batch:
            if scores.num_frames == 0:
                raise DecodeError("no frames to decode")

        sessions = [self.open_session() for _ in scores_batch]
        max_frames = max(s.num_frames for s in scores_batch)
        for frame in range(max_frames):
            advance_sessions(
                [
                    (session, scores.frame(frame))
                    for session, scores in zip(sessions, scores_batch)
                    if frame < scores.num_frames
                ]
            )
        return [session.finalize() for session in sessions]

    # ------------------------------------------------------------------
    def _init_frontier(self) -> _Frontier:
        trace = _BulkTrace()
        root = trace.append_bulk(
            np.array([-1], dtype=np.int64), np.array([0], dtype=np.int64)
        )
        frontier = _Frontier(
            states=np.array([self.graph.start], dtype=np.int64),
            scores=np.array([0.0], dtype=np.float64),
            bps=root,
            trace=trace,
            stats=SearchStats(),
            num_frames=0,
        )
        self._epsilon_closure(frontier)
        return frontier

    def _advance(
        self, frontier: _Frontier, frame: int, frame_scores: np.ndarray
    ) -> None:
        """One frame of the recurrence: prune, expand, merge, closure."""
        config = self.config
        flat = self.flat
        stats = frontier.stats
        if frontier.states.size == 0:
            raise DecodeError(f"beam emptied the search at frame {frame}")

        # Beam pruning: one mask against best - beam.
        best = frontier.scores.max()
        keep = frontier.scores >= best - config.beam
        n_keep = int(np.count_nonzero(keep))
        stats.tokens_pruned += frontier.states.size - n_keep
        states = frontier.states[keep]
        scores = frontier.scores[keep]
        bps = frontier.bps[keep]

        # Histogram pruning: stable top-max_active by score.
        if config.max_active and n_keep > config.max_active:
            order = np.argsort(-scores, kind="stable")[: config.max_active]
            order.sort()
            stats.tokens_pruned += n_keep - config.max_active
            states = states[order]
            scores = scores[order]
            bps = bps[order]

        stats.active_tokens_per_frame.append(states.size)
        stats.states_expanded += states.size
        stats.visited_state_degrees.extend(flat.out_degree[states].tolist())

        # Bulk gather of every surviving state's non-epsilon arc block.
        arc_idx, src = _csr_gather(flat.first_arc[states], flat.num_non_eps[states])
        stats.arcs_processed += arc_idx.size
        if arc_idx.size == 0:
            # No outgoing non-epsilon arcs anywhere: the next frame starts
            # with an empty frontier, like the scalar decoder.
            frontier.states = np.empty(0, dtype=np.int64)
            frontier.scores = np.empty(0, dtype=np.float64)
            frontier.bps = np.empty(0, dtype=np.int64)
            return

        dest = flat.arc_dest[arc_idx]
        new_scores = (
            scores[src]
            + flat.arc_weight64[arc_idx]
            + frame_scores[flat.arc_ilabel[arc_idx]]
        )

        # Segment-max merge: best incoming arc per destination token.
        next_states, winners = _segment_best(dest, new_scores)
        trace_idx = frontier.trace.append_bulk(
            bps[src[winners]], flat.arc_olabel[arc_idx[winners]]
        )
        stats.tokens_created += next_states.size

        frontier.states = next_states
        frontier.scores = new_scores[winners]
        frontier.bps = trace_idx
        self._epsilon_closure(frontier)

    def _epsilon_closure(self, frontier: _Frontier) -> None:
        """Relax epsilon arcs to fixpoint, a whole frontier per round."""
        flat = self.flat
        stats = frontier.stats
        if frontier.states.size == 0:
            return
        # (states, scores, bps) of tokens whose score improved last round.
        active = (frontier.states, frontier.scores, frontier.bps)
        while active[0].size:
            states, scores, bps = active
            arc_idx, src = _csr_gather(flat.eps_first[states], flat.num_eps[states])
            if arc_idx.size == 0:
                break
            stats.epsilon_arcs_processed += arc_idx.size

            dest = flat.arc_dest[arc_idx]
            cand_scores = scores[src] + flat.arc_weight64[arc_idx]
            uniq, winners = _segment_best(dest, cand_scores)
            cand_scores = cand_scores[winners]
            cand_prev = bps[src[winners]]
            cand_word = flat.arc_olabel[arc_idx[winners]]

            # Merge candidates into the sorted token arrays: a candidate
            # wins if its state is new or strictly better (ties keep the
            # existing token, like the scalar decoder).
            pos = np.searchsorted(frontier.states, uniq)
            pos_clipped = np.minimum(pos, frontier.states.size - 1)
            exists = (pos < frontier.states.size) & (
                frontier.states[pos_clipped] == uniq
            )
            improves = exists & (cand_scores > frontier.scores[pos_clipped])
            is_new = ~exists
            accepted = improves | is_new
            if not accepted.any():
                break

            trace_idx = frontier.trace.append_bulk(
                cand_prev[accepted], cand_word[accepted]
            )
            acc_rows = np.nonzero(accepted)[0]
            imp_in_acc = improves[acc_rows]
            new_in_acc = is_new[acc_rows]
            stats.tokens_created += int(np.count_nonzero(new_in_acc))
            stats.tokens_updated += int(np.count_nonzero(imp_in_acc))

            # In-place update of improved existing tokens ...
            upd = pos[improves]
            frontier.scores[upd] = cand_scores[improves]
            frontier.bps[upd] = trace_idx[imp_in_acc]
            # ... and sorted insertion of brand-new ones.
            ins = pos[is_new]
            frontier.states = np.insert(frontier.states, ins, uniq[is_new])
            frontier.scores = np.insert(frontier.scores, ins, cand_scores[is_new])
            frontier.bps = np.insert(frontier.bps, ins, trace_idx[new_in_acc])

            active = (uniq[accepted], cand_scores[accepted], trace_idx)

    def _finalize(self, frontier: _Frontier) -> DecodeResult:
        """Pick the best (preferably final) token and backtrack."""
        if frontier.states.size == 0:
            raise DecodeError("no active tokens at the end of the utterance")

        finals = self.flat.final_weights[frontier.states]
        final_mask = finals > LOG_ZERO / 2
        if final_mask.any():
            totals = frontier.scores[final_mask] + finals[final_mask]
            i = int(np.argmax(totals))
            score = float(totals[i])
            bp = int(frontier.bps[final_mask][i])
            reached_final = True
        else:
            i = int(np.argmax(frontier.scores))
            score = float(frontier.scores[i])
            bp = int(frontier.bps[i])
            reached_final = False

        words = frontier.trace.backtrack(bp)
        return DecodeResult(
            words=tuple(words),
            log_likelihood=score,
            reached_final=reached_final,
            stats=frontier.stats,
        )
