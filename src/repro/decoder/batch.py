"""Vectorized multi-utterance batch decoding engine.

:class:`repro.decoder.viterbi.ViterbiDecoder` is the faithful scalar
reference; this module is the serving-shaped engine over the *same*
recurrence.  Since the kernel refactor the array sweeps themselves live
in :class:`repro.decoder.kernel.SearchKernel` (bulk CSR arc gather,
fused float64 score accumulation, segment-max destination merge,
round-based epsilon closure over the sorted
:class:`~repro.decoder.kernel.Frontier`); ``BatchDecoder`` binds a
kernel to a graph and runs many utterances through it in lockstep.

Word output is equivalent to the scalar decoder (asserted in
``tests/test_batch_decoder.py`` and the cross-engine property suite in
``tests/test_kernel_equivalence.py``); path scores are bit-identical
because the per-path float additions associate in the same order.  Ties
between equal-likelihood paths may resolve to a different (equally
optimal) predecessor, and the order-dependent ``tokens_updated`` /
``epsilon_arcs_processed`` counters are engine approximations; every
other :class:`SearchStats` counter keeps the reference semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.decoder.session import DecodeSession

from repro.common.errors import DecodeError
from repro.acoustic.scorer import AcousticScores
from repro.decoder.kernel import DecoderConfig, SearchKernel
from repro.decoder.result import DecodeResult
from repro.wfst.layout import CompiledWfst, FlatLayout


class BatchDecoder:
    """Vectorized beam-search decoder for one or many utterances.

    Drop-in equivalent of :class:`ViterbiDecoder` on word output, plus
    :meth:`decode_batch` for decoding a whole batch of utterances against
    the shared compiled graph in lockstep.
    """

    def __init__(
        self,
        graph: CompiledWfst,
        config: DecoderConfig = DecoderConfig(),
    ) -> None:
        self.graph = graph
        self.config = config
        self.kernel = SearchKernel(graph, config)

    @property
    def flat(self) -> FlatLayout:
        return self.kernel.flat

    @property
    def min_score_width(self) -> int:
        """Shortest score row that every arc's ilabel can index safely."""
        return self.kernel.min_score_width

    @property
    def backend_name(self) -> str:
        """Resolved kernel array backend ("numpy"/"numba"); purely a
        speed knob -- every backend decodes bit-identically (see
        :mod:`repro.decoder.backends`)."""
        return self.kernel.backend_name

    # ------------------------------------------------------------------
    def open_session(self) -> "DecodeSession":
        """Open a resumable streaming decode session on this engine.

        The session accepts acoustic-score chunks of any size and can
        report partial hypotheses between chunks; see
        :class:`repro.decoder.session.DecodeSession`.
        """
        from repro.decoder.session import DecodeSession

        return DecodeSession(self)

    def decode(self, scores: AcousticScores) -> DecodeResult:
        """Decode one utterance; returns the best word sequence."""
        return self.decode_batch([scores])[0]

    def decode_batch(
        self, scores_batch: Sequence[AcousticScores]
    ) -> List[DecodeResult]:
        """Decode a batch of utterances, advanced frame by frame in lockstep.

        Utterances may be ragged (different frame counts); each one is
        finalized after its own last frame.  Results come back in input
        order and match per-utterance :meth:`decode` exactly.  Each
        utterance runs as a :class:`DecodeSession`; frames advance through
        the kernel's fused multi-session sweep, one numpy pass per frame
        for the whole batch.
        """
        from repro.decoder.session import advance_sessions

        if not scores_batch:
            return []
        for scores in scores_batch:
            if scores.num_frames == 0:
                raise DecodeError("no frames to decode")

        sessions = [self.open_session() for _ in scores_batch]
        max_frames = max(s.num_frames for s in scores_batch)
        for frame in range(max_frames):
            advance_sessions(
                [
                    (session, scores.frame(frame))
                    for session, scores in zip(sessions, scores_batch)
                    if frame < scores.num_frames
                ]
            )
        return [session.finalize() for session in sessions]
