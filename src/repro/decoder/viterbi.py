"""Token-passing Viterbi beam search (the software reference / oracle).

Implements the dynamic-programming recurrence of the paper's Equation 1 in
log space with beam pruning.  Since the kernel refactor this module is a
thin wrapper: the actual recurrence lives in
:class:`repro.decoder.kernel.ReferenceKernel`, the scalar discipline of
the shared frame-recurrence kernel, which reproduces the accelerator
simulator's exact event order (dict-order token walks, first-wins
relaxation, FIFO epsilon worklist).  ``ViterbiDecoder`` is kept as the
oracle every other engine -- batch, sessions, lattice, GPU, accelerator
-- is tested against.

``BeamSearchConfig`` is the historical name of
:class:`repro.decoder.kernel.DecoderConfig` and is re-exported here for
compatibility; new code should import ``DecoderConfig``.
"""

from __future__ import annotations

from repro.acoustic.scorer import AcousticScores
from repro.decoder.kernel import BeamSearchConfig, DecoderConfig, ReferenceKernel
from repro.decoder.result import DecodeResult
from repro.wfst.layout import CompiledWfst

__all__ = ["BeamSearchConfig", "DecoderConfig", "ViterbiDecoder"]


class ViterbiDecoder:
    """Reference beam-search decoder over a compiled graph.

    A thin oracle wrapper over the shared kernel's scalar discipline;
    see :mod:`repro.decoder.kernel` for the recurrence, the pruning
    strategies and the emptied-beam policy.
    """

    def __init__(
        self,
        graph: CompiledWfst,
        config: DecoderConfig = DecoderConfig(),
    ) -> None:
        self.graph = graph
        self.config = config
        self._kernel = ReferenceKernel(graph, config)

    @property
    def kernel(self) -> ReferenceKernel:
        """The underlying scalar reference kernel."""
        return self._kernel

    def decode(self, scores: AcousticScores) -> DecodeResult:
        """Decode one utterance; returns the best word sequence."""
        return self._kernel.decode(scores)
