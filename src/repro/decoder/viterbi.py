"""Token-passing Viterbi beam search (software reference).

Implements the dynamic-programming recurrence of the paper's Equation 1 in
log space with standard beam pruning: a token (active state) survives a
frame only if its likelihood is within ``beam`` of the frame's best token.

The implementation mirrors what the accelerator does per frame:

1. prune the current frame's tokens against ``best - beam``;
2. for each surviving token, fetch its state record, then its arcs;
3. non-epsilon arcs add ``arc.weight + acoustic[frame, ilabel]`` and create
   or improve a token in the *next* frame;
4. epsilon arcs are then traversed transitively inside the next frame
   without consuming input (the epsilon subgraph is required acyclic);
5. after the last frame the best final token is backtracked through the
   token trace to recover the word sequence.

Every token carries a backpointer into a global trace (`_TokenTrace`), the
software analogue of the accelerator's token array in main memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, DecodeError
from repro.common.logmath import LOG_ZERO
from repro.acoustic.scorer import AcousticScores
from repro.decoder.result import DecodeResult, SearchStats
from repro.wfst.layout import CompiledWfst


@dataclass(frozen=True)
class BeamSearchConfig:
    """Beam-search parameters.

    Attributes:
        beam: log-likelihood pruning window below the frame's best token.
        max_active: hard cap on surviving tokens per frame (histogram
            pruning); 0 disables the cap.
    """

    beam: float = 12.0
    max_active: int = 0

    def __post_init__(self) -> None:
        if self.beam <= 0:
            raise ConfigError("beam must be positive")
        if self.max_active < 0:
            raise ConfigError("max_active must be >= 0")


class _TokenTrace:
    """Append-only token trace used for backtracking.

    One record per token creation/update: (predecessor trace index, word
    emitted on the arc that created it).  Mirrors the backpointer data the
    accelerator's Token Issuer writes to main memory through the Token
    cache.
    """

    def __init__(self) -> None:
        self.prev: List[int] = []
        self.word: List[int] = []

    def append(self, prev_index: int, word: int) -> int:
        self.prev.append(prev_index)
        self.word.append(word)
        return len(self.prev) - 1

    def backtrack(self, index: int) -> List[int]:
        words: List[int] = []
        while index >= 0:
            if self.word[index] != 0:
                words.append(self.word[index])
            index = self.prev[index]
        words.reverse()
        return words

    def __len__(self) -> int:
        return len(self.prev)


class ViterbiDecoder:
    """Reference beam-search decoder over a compiled graph."""

    def __init__(
        self,
        graph: CompiledWfst,
        config: BeamSearchConfig = BeamSearchConfig(),
    ) -> None:
        self.graph = graph
        self.config = config

    # ------------------------------------------------------------------
    def decode(self, scores: AcousticScores) -> DecodeResult:
        """Decode one utterance; returns the best word sequence."""
        if scores.num_frames == 0:
            raise DecodeError("no frames to decode")

        stats = SearchStats(frames=scores.num_frames)
        trace = _TokenTrace()
        graph = self.graph

        # Tokens: state -> (log likelihood, trace index).
        tokens: Dict[int, Tuple[float, int]] = {}
        root_index = trace.append(-1, 0)
        tokens[graph.start] = (0.0, root_index)
        self._epsilon_closure(tokens, stats, trace)

        for frame in range(scores.num_frames):
            frame_scores = scores.frame(frame)
            survivors = self._prune(tokens, stats)
            stats.active_tokens_per_frame.append(len(survivors))
            if not survivors:
                raise DecodeError(f"beam emptied the search at frame {frame}")

            next_tokens: Dict[int, Tuple[float, int]] = {}
            for state, (score, bp) in survivors:
                first, n_non_eps, _n_eps = graph.arc_range(state)
                stats.states_expanded += 1
                stats.visited_state_degrees.append(graph.out_degree(state))
                for a in range(first, first + n_non_eps):
                    stats.arcs_processed += 1
                    new_score = (
                        score
                        + float(graph.arc_weight[a])
                        + float(frame_scores[graph.arc_ilabel[a]])
                    )
                    self._relax(
                        next_tokens,
                        int(graph.arc_dest[a]),
                        new_score,
                        bp,
                        int(graph.arc_olabel[a]),
                        stats,
                        trace,
                    )
            self._epsilon_closure(next_tokens, stats, trace)
            tokens = next_tokens

        return self._finalize(tokens, stats, trace)

    # ------------------------------------------------------------------
    def _prune(
        self,
        tokens: Dict[int, Tuple[float, int]],
        stats: SearchStats,
    ) -> List[Tuple[int, Tuple[float, int]]]:
        """Beam (and optional histogram) pruning of the current tokens."""
        if not tokens:
            return []
        best = max(score for score, _ in tokens.values())
        threshold = best - self.config.beam
        survivors = [
            (state, entry)
            for state, entry in tokens.items()
            if entry[0] >= threshold
        ]
        stats.tokens_pruned += len(tokens) - len(survivors)
        if self.config.max_active and len(survivors) > self.config.max_active:
            survivors.sort(key=lambda item: item[1][0], reverse=True)
            stats.tokens_pruned += len(survivors) - self.config.max_active
            survivors = survivors[: self.config.max_active]
        return survivors

    def _relax(
        self,
        tokens: Dict[int, Tuple[float, int]],
        dest: int,
        new_score: float,
        src_bp: int,
        word: int,
        stats: SearchStats,
        trace: _TokenTrace,
    ) -> bool:
        """Create or improve the token at ``dest``; True if it improved."""
        existing = tokens.get(dest)
        if existing is not None and existing[0] >= new_score:
            return False
        bp = trace.append(src_bp, word)
        if existing is None:
            stats.tokens_created += 1
        else:
            stats.tokens_updated += 1
        tokens[dest] = (new_score, bp)
        return True

    def _epsilon_closure(
        self,
        tokens: Dict[int, Tuple[float, int]],
        stats: SearchStats,
        trace: _TokenTrace,
    ) -> None:
        """Traverse epsilon arcs transitively inside one frame's tokens."""
        graph = self.graph
        worklist = list(tokens.keys())
        while worklist:
            state = worklist.pop()
            score, bp = tokens[state]
            first, n_non_eps, n_eps = graph.arc_range(state)
            if n_eps == 0:
                continue
            for a in range(first + n_non_eps, first + n_non_eps + n_eps):
                stats.epsilon_arcs_processed += 1
                new_score = score + float(graph.arc_weight[a])
                dest = int(graph.arc_dest[a])
                if self._relax(
                    tokens,
                    dest,
                    new_score,
                    bp,
                    int(graph.arc_olabel[a]),
                    stats,
                    trace,
                ):
                    worklist.append(dest)

    def _finalize(
        self,
        tokens: Dict[int, Tuple[float, int]],
        stats: SearchStats,
        trace: _TokenTrace,
    ) -> DecodeResult:
        """Pick the best (preferably final) token and backtrack."""
        if not tokens:
            raise DecodeError("no active tokens at the end of the utterance")

        best_final: Optional[Tuple[float, int]] = None
        for state, (score, bp) in tokens.items():
            final_weight = self.graph.final_weight(state)
            if final_weight <= LOG_ZERO / 2:
                continue
            total = score + final_weight
            if best_final is None or total > best_final[0]:
                best_final = (total, bp)

        if best_final is not None:
            score, bp = best_final
            reached_final = True
        else:
            # No final token survived: fall back to the best live token.
            state = max(tokens, key=lambda s: tokens[s][0])
            score, bp = tokens[state]
            reached_final = False

        words = trace.backtrack(bp)
        return DecodeResult(
            words=tuple(words),
            log_likelihood=score,
            reached_final=reached_final,
            stats=stats,
        )
