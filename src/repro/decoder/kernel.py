"""The one frame-recurrence kernel under every decode engine.

Every engine in this repository -- the scalar reference decoder, the
vectorized batch engine, streaming sessions, the lattice decoder, the GPU
workload model and the accelerator trace recorder -- runs the same
algorithm: the WFST token-passing beam search of the paper's Section II.
Per 10 ms frame the recurrence is

    prune -> non-epsilon expand -> destination merge -> epsilon closure

This module is the single home of that recurrence.  It provides two
*disciplines* over one shared configuration, pruning-strategy layer and
observer protocol:

* :class:`SearchKernel` -- the vectorized discipline.  One
  :meth:`~SearchKernel.step_frame` advances a :class:`Frontier` by one
  frame as flat numpy sweeps over the
  :class:`~repro.wfst.layout.FlatLayout` Structure-of-Arrays graph view
  (bulk CSR arc gather, fused score accumulation, segment-max merge,
  round-based epsilon closure).  :meth:`~SearchKernel.fused_step`
  advances many frontiers in a single combined sweep (the continuous
  batching fast path).  ``BatchDecoder``, ``DecodeSession``,
  ``LatticeDecoder`` and ``GpuViterbiDecoder`` all run on it.

* :class:`ReferenceKernel` -- the scalar oracle discipline.  A dict-based
  token walk that reproduces the *exact* event order of the hardware
  model in :class:`repro.accel.simulator.AcceleratorSimulator`: tokens
  are walked in insertion order, relaxations are first-wins on ties, and
  the epsilon closure is a FIFO worklist with re-visits on improvement.
  ``ViterbiDecoder`` and ``repro.accel.trace.TraceRecorder`` run on it --
  the recorder as a :class:`KernelObserver` -- which is what keeps trace
  replay cycle-identical to the monolithic simulator.

Both disciplines compute the same fixpoint per frame, so word output,
path likelihoods and every order-independent counter (``tokens_pruned``,
``states_expanded``, ``arcs_processed``, ``tokens_created``,
``active_tokens_per_frame``) agree across all engines; only the
order-dependent ``tokens_updated`` / ``epsilon_arcs_processed`` counters
are discipline approximations in the vectorized kernel.

Kernel backends
---------------
The vectorized discipline's pure-array inner loops (CSR arc gather,
fused gather+score expansion, segment-best merge) are pluggable through
:mod:`repro.decoder.backends`: ``numpy`` is the portable default and
``numba`` (optional, ``pip install repro-asr[compiled]``) provides
compiled parallel kernels.  Selection flows through
``DecoderConfig.backend`` (``"auto"`` consults the
``REPRO_KERNEL_BACKEND`` environment variable); every backend is
bit-identical -- word output, path scores, counters and observer event
streams -- which ``tests/test_backend_equivalence.py`` asserts
differentially.  All pruning, merge policy, trace and observer logic
stays in this module, shared by every backend.

Pruning strategies
------------------
Pruning is a pluggable per-utterance strategy created from
:class:`DecoderConfig` (one fresh instance per decode; see
:meth:`DecoderConfig.make_pruner`):

* ``pruning="beam"`` -- the classic fixed beam: a token survives if its
  likelihood is within ``beam`` of the frame's best.  With
  ``max_active > 0`` a histogram cap keeps only the best ``max_active``
  survivors (this beam+cap combination is the paper's operating point).
* ``pruning="adaptive"`` -- the executable version of the paper's Fig. 9
  beam ablation axis: the beam widens/narrows multiplicatively every
  frame to hold the *post-beam* survivor count near ``target_active``,
  clamped to ``[min_beam, max_beam]``.  The adaptation signal is the
  survivor count before the histogram cap, so the feedback is identical
  in every engine and the fused multi-session sweep.

Observer protocol
-----------------
Engines that need more than the decode result subscribe a
:class:`KernelObserver` instead of forking the recurrence: the kernel
emits :class:`PruneEvent` / :class:`ExpandEvent` / :class:`ClosureEvent`
payloads in issue order.  The lattice decoder captures its arc DAG, the
GPU model derives kernel-launch/atomic work counts, and the accelerator
trace recorder captures the full hardware event stream this way.  Event
construction is skipped entirely when no observers are attached.

Emptied-beam policy (shared by every engine)
--------------------------------------------
* If the frontier is empty at the *start* of a frame -- which can only
  happen when the previous frame's survivors had no outgoing non-epsilon
  arcs -- the kernel raises :class:`~repro.common.errors.DecodeError`
  (``"beam emptied the search at frame F"``).  There is no silent
  fallback mid-utterance: an empty frontier means the graph cannot
  consume the remaining audio.
* At *finalize*, if no live token is in a final state, every engine
  falls back to the best live token and reports
  ``reached_final=False`` rather than raising.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigError, DecodeError
from repro.common.logmath import LOG_ZERO
from repro.acoustic.scorer import AcousticScores
from repro.decoder.backends import KERNEL_BACKENDS, KernelBackend, resolve_backend
from repro.decoder.backends.numpy_backend import csr_gather, segment_best
from repro.decoder.result import DecodeResult, SearchStats
# The shared backpointer trace of the vectorized discipline lives in
# repro.decoder.traceback (windowed compaction + committed-prefix
# protocol); re-exported here to keep the historical import path.
from repro.decoder.traceback import TokenTrace
from repro.wfst.layout import CompiledWfst, FlatLayout

#: Pruning strategies selectable through :class:`DecoderConfig`.
PRUNING_STRATEGIES = ("beam", "adaptive")


# ----------------------------------------------------------------------
# Configuration and pruning strategies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DecoderConfig:
    """Search parameters shared by every decode engine.

    Attributes:
        beam: log-likelihood pruning window below the frame's best token
            (the initial window under ``pruning="adaptive"``).
        max_active: hard cap on surviving tokens per frame (histogram
            pruning); 0 disables the cap.
        pruning: ``"beam"`` (fixed window) or ``"adaptive"`` (the window
            tracks ``target_active``); see the module docstring.
        target_active: adaptive-beam target for the post-beam survivor
            count per frame (required > 0 when ``pruning="adaptive"``).
        min_beam / max_beam: clamp range of the adaptive window.
            ``max_beam=0`` defaults to ``4 * beam``.
        adapt_rate: exponent of the multiplicative update
            ``beam *= (target_active / survivors) ** adapt_rate``;
            in (0, 1], higher reacts faster.
        backend: kernel array backend for the vectorized discipline:
            ``"numpy"`` (portable default), ``"numba"`` (compiled; falls
            back to numpy with a typed warning when not installed) or
            ``"auto"`` (consults the ``REPRO_KERNEL_BACKEND`` environment
            variable, then numpy).  Purely a speed knob: every backend
            is bit-identical on words, scores, counters and events.
        commit_interval: frames between committed-prefix commits of the
            streaming traceback buffer (see
            :mod:`repro.decoder.traceback`): every ``commit_interval``
            frames a session emits the words all live hypotheses agree
            on and garbage-collects unreachable trace records, bounding
            peak trace memory by the window instead of the utterance.
            0 (the default) keeps the historical append-only behaviour.
            Word output is identical either way; only partial-latency
            and memory change.
    """

    beam: float = 12.0
    max_active: int = 0
    pruning: str = "beam"
    target_active: int = 0
    min_beam: float = 1.0
    max_beam: float = 0.0
    adapt_rate: float = 0.5
    backend: str = "auto"
    commit_interval: int = 0

    def __post_init__(self) -> None:
        if self.beam <= 0:
            raise ConfigError("beam must be positive")
        if self.commit_interval < 0:
            raise ConfigError("commit_interval must be >= 0")
        if self.backend not in KERNEL_BACKENDS:
            raise ConfigError(
                f"unknown kernel backend {self.backend!r} "
                f"(choose from {KERNEL_BACKENDS})"
            )
        if self.max_active < 0:
            raise ConfigError("max_active must be >= 0")
        if self.pruning not in PRUNING_STRATEGIES:
            raise ConfigError(
                f"unknown pruning strategy {self.pruning!r} "
                f"(choose from {PRUNING_STRATEGIES})"
            )
        if self.target_active < 0:
            raise ConfigError("target_active must be >= 0")
        if self.pruning == "adaptive":
            if self.target_active == 0:
                raise ConfigError(
                    "adaptive pruning requires target_active > 0"
                )
            if self.min_beam <= 0:
                raise ConfigError("min_beam must be positive")
            if self.min_beam > self.beam:
                raise ConfigError("min_beam must not exceed beam")
            if self.resolved_max_beam < self.beam:
                raise ConfigError("max_beam must be >= beam (or 0 for auto)")
            if not 0 < self.adapt_rate <= 1:
                raise ConfigError("adapt_rate must be in (0, 1]")

    @property
    def resolved_max_beam(self) -> float:
        """The adaptive clamp ceiling (``max_beam`` or ``4 * beam``)."""
        return self.max_beam if self.max_beam > 0 else 4.0 * self.beam

    def make_pruner(self) -> "PruningStrategy":
        """A fresh per-utterance pruning strategy instance."""
        if self.pruning == "adaptive":
            return AdaptiveBeamPruning(self)
        return FixedBeamPruning(self)


#: Backwards-compatible alias: the pre-kernel name of the search config.
BeamSearchConfig = DecoderConfig


class PruningStrategy:
    """Per-utterance pruning state driving one decode.

    The kernel calls, once per frame and in this order:

    1. :meth:`threshold` with the frame's best token score -- tokens with
       ``score >= threshold`` survive the beam;
    2. :meth:`cap` -- if positive and the survivors exceed it, only the
       best ``cap`` tokens are kept (histogram pruning);
    3. :meth:`observe` with the *post-beam, pre-cap* survivor count --
       the adaptation feedback.

    All arithmetic runs on plain Python floats so every engine (scalar,
    vectorized, fused multi-session) prunes bit-identically.
    """

    def threshold(self, best: float) -> float:
        raise NotImplementedError

    def cap(self) -> int:
        raise NotImplementedError

    def observe(self, survivors: int) -> None:
        raise NotImplementedError

    @property
    def current_beam(self) -> float:
        raise NotImplementedError


class FixedBeamPruning(PruningStrategy):
    """Fixed beam window with an optional histogram cap."""

    def __init__(self, config: DecoderConfig) -> None:
        self._beam = float(config.beam)
        self._cap = int(config.max_active)

    def threshold(self, best: float) -> float:
        return best - self._beam

    def cap(self) -> int:
        return self._cap

    def observe(self, survivors: int) -> None:  # fixed window: no feedback
        pass

    @property
    def current_beam(self) -> float:
        return self._beam


class AdaptiveBeamPruning(PruningStrategy):
    """Beam window that tracks a target active-token count.

    After each frame's beam pruning the window is scaled by
    ``(target_active / survivors) ** adapt_rate`` and clamped to
    ``[min_beam, max_beam]``: too many survivors narrow the beam, too few
    widen it.  The update uses the pre-cap survivor count, so composing
    with ``max_active`` does not saturate the feedback signal.
    """

    def __init__(self, config: DecoderConfig) -> None:
        self._beam = float(config.beam)
        self._cap = int(config.max_active)
        self._target = int(config.target_active)
        self._min = float(config.min_beam)
        self._max = float(config.resolved_max_beam)
        self._rate = float(config.adapt_rate)

    def threshold(self, best: float) -> float:
        return best - self._beam

    def cap(self) -> int:
        return self._cap

    def observe(self, survivors: int) -> None:
        ratio = self._target / max(survivors, 1)
        beam = self._beam * ratio ** self._rate
        self._beam = min(max(beam, self._min), self._max)

    @property
    def current_beam(self) -> float:
        return self._beam


# ----------------------------------------------------------------------
# Observer protocol
# ----------------------------------------------------------------------
@dataclass
class PruneEvent:
    """One frame's pruning, in token-walk order.

    ``walk_states`` is the full pre-prune token walk (the State Issuer's
    hash-table read order in the reference discipline; ascending state
    order in the vectorized discipline).  ``survivor_states`` /
    ``survivor_read_idx`` give the post-prune tokens in issue order and
    their positions within the walk.
    """

    frame: int
    walk_states: Sequence[int]
    survivor_states: Sequence[int]
    survivor_read_idx: Sequence[int]
    threshold: float
    beam_pruned: int
    cap_pruned: int


@dataclass
class ExpandEvent:
    """One frame's non-epsilon expansion, in issue order.

    Per survivor: ``states`` / ``first`` / ``n_arcs`` / ``read_idx`` (the
    contiguous arc block and walk position).  Per arc: ``arc_idx`` /
    ``arc_dest`` plus, per discipline, ``arc_src`` (survivor ordinal) and
    ``arc_scores`` (candidate path scores, vectorized discipline only)
    or ``improved`` (exact running relaxation-won flags, reference
    discipline only -- the backpointer-write stream).
    """

    frame: int
    frame_scores: Sequence[float]
    states: Sequence[int]
    first: Sequence[int]
    n_arcs: Sequence[int]
    read_idx: Sequence[int]
    arc_idx: Sequence[int]
    arc_dest: Sequence[int]
    arc_src: Optional[Sequence[int]] = None
    arc_scores: Optional[Sequence[float]] = None
    improved: Optional[Sequence[bool]] = None


@dataclass
class ClosureEvent:
    """One epsilon-closure pass (reference) or round (vectorized).

    ``pass_index`` 0 is the initial closure from the start state; pass
    ``f + 1`` is the closure inside frame ``f``.  The reference
    discipline emits exactly one event per pass covering the whole FIFO
    worklist, with ``src`` provenance (index of the epsilon arc event
    that enqueued each visit, -1 for seeds); the vectorized discipline
    emits one event per relaxation round with ``round_index`` counting
    rounds and ``src=None``.  ``improved`` flags are exact in the
    reference discipline and measured against the pre-round token scores
    in the vectorized one.
    """

    pass_index: int
    round_index: int
    states: Sequence[int]
    first: Sequence[int]
    n_arcs: Sequence[int]
    src: Optional[Sequence[int]]
    arc_idx: Sequence[int]
    arc_dest: Sequence[int]
    arc_src: Optional[Sequence[int]] = None
    arc_scores: Optional[Sequence[float]] = None
    improved: Optional[Sequence[bool]] = None


class KernelObserver:
    """Base observer: subclass and override what you need.

    Events arrive in issue order: per frame one :meth:`on_prune`, one
    :meth:`on_expand` (even when the frontier has no non-epsilon arcs)
    and one or more :meth:`on_closure` (one per pass in the reference
    discipline -- always emitted, possibly empty -- or one per non-empty
    round in the vectorized discipline, where a pass with no epsilon
    work emits nothing).
    """

    def on_prune(self, event: PruneEvent) -> None:
        pass

    def on_expand(self, event: ExpandEvent) -> None:
        pass

    def on_closure(self, event: ClosureEvent) -> None:
        pass


# ----------------------------------------------------------------------
# Array helpers shared by the vectorized kernel and the GPU model.  The
# implementations moved to repro.decoder.backends.numpy_backend (they
# define the bit-level contract every backend reproduces); these aliases
# keep the historical import path working.
# ----------------------------------------------------------------------
_csr_gather = csr_gather
_segment_best = segment_best


# ----------------------------------------------------------------------
# Frontier: one utterance's live search state
# ----------------------------------------------------------------------
@dataclass
class Frontier:
    """Per-utterance search state between frames.

    ``states`` is kept sorted ascending; ``scores`` / ``bps`` are parallel
    to it.  The invariant makes the epsilon-closure merges a sorted-array
    merge instead of a hash probe.  ``num_frames`` counts the frames
    consumed so far (sessions grow it one push at a time).  Each frontier
    owns its pruning-strategy state and observer list.
    """

    states: np.ndarray
    scores: np.ndarray
    bps: np.ndarray
    trace: TokenTrace
    stats: SearchStats
    num_frames: int
    pruner: PruningStrategy
    observers: Tuple[KernelObserver, ...] = ()


def _set_empty(frontier: Frontier) -> None:
    frontier.states = np.empty(0, dtype=np.int64)
    frontier.scores = np.empty(0, dtype=np.float64)
    frontier.bps = np.empty(0, dtype=np.int64)


# ----------------------------------------------------------------------
# The vectorized discipline
# ----------------------------------------------------------------------
class SearchKernel:
    """Vectorized frame recurrence over the SoA graph view.

    One kernel instance is shared by every frontier on a graph (the flat
    layout and config are immutable); per-utterance state lives in the
    :class:`Frontier`.
    """

    def __init__(
        self, graph: CompiledWfst, config: DecoderConfig = DecoderConfig()
    ) -> None:
        self.graph = graph
        self.config = config
        self.flat: FlatLayout = graph.flat()
        #: The array backend running the inner sweeps, resolved once per
        #: kernel from ``config.backend`` (see repro.decoder.backends).
        self.backend: KernelBackend = resolve_backend(config.backend)
        #: Shortest score row that every arc's ilabel can index safely.
        self.min_score_width: int = (
            int(self.flat.arc_ilabel.max()) + 1 if self.flat.num_arcs else 1
        )

    @property
    def backend_name(self) -> str:
        """Resolved name of the active array backend ("numpy"/"numba")."""
        return self.backend.name

    # ------------------------------------------------------------------
    def init_frontier(
        self, observers: Sequence[KernelObserver] = ()
    ) -> Frontier:
        """A fresh frontier at the start state, epsilon closure applied."""
        trace = TokenTrace(
            commit_interval=self.config.commit_interval, backend=self.backend
        )
        root = trace.append_bulk(
            np.array([-1], dtype=np.int64), np.array([0], dtype=np.int64)
        )
        frontier = Frontier(
            states=np.array([self.graph.start], dtype=np.int64),
            scores=np.array([0.0], dtype=np.float64),
            bps=root,
            trace=trace,
            stats=SearchStats(),
            num_frames=0,
            pruner=self.config.make_pruner(),
            observers=tuple(observers),
        )
        self._closure(frontier, pass_index=0)
        return frontier

    def step_frame(
        self, frontier: Frontier, frame: int, frame_scores: np.ndarray
    ) -> None:
        """One frame of the recurrence: prune, expand, merge, closure."""
        flat = self.flat
        stats = frontier.stats
        observers = frontier.observers
        if frontier.states.size == 0:
            raise DecodeError(f"beam emptied the search at frame {frame}")

        # Beam pruning: one mask against the strategy's threshold.
        pruner = frontier.pruner
        threshold = pruner.threshold(float(frontier.scores.max()))
        keep = frontier.scores >= threshold
        n_keep = int(np.count_nonzero(keep))
        beam_pruned = frontier.states.size - n_keep
        stats.tokens_pruned += beam_pruned
        states = frontier.states[keep]
        scores = frontier.scores[keep]
        bps = frontier.bps[keep]

        # Histogram pruning: stable top-cap by score.
        cap = pruner.cap()
        cap_pruned = 0
        order = None
        if cap and n_keep > cap:
            order = np.argsort(-scores, kind="stable")[:cap]
            order.sort()
            cap_pruned = n_keep - cap
            stats.tokens_pruned += cap_pruned
            states = states[order]
            scores = scores[order]
            bps = bps[order]
        pruner.observe(n_keep)

        if observers:
            read_idx = np.nonzero(keep)[0]
            if order is not None:
                read_idx = read_idx[order]
            event = PruneEvent(
                frame=frame,
                walk_states=frontier.states,
                survivor_states=states,
                survivor_read_idx=read_idx,
                threshold=threshold,
                beam_pruned=beam_pruned,
                cap_pruned=cap_pruned,
            )
            for observer in observers:
                observer.on_prune(event)

        stats.active_tokens_per_frame.append(states.size)
        stats.states_expanded += states.size
        stats.visited_state_degrees.extend(flat.out_degree[states].tolist())

        # Fused gather + score accumulation over every surviving state's
        # non-epsilon arc block, on the active backend.
        first = flat.first_arc[states]
        n_arcs = flat.num_non_eps[states]
        arc_idx, src, dest, new_scores = self.backend.expand_frame(
            first, n_arcs, scores,
            flat.arc_dest, flat.arc_weight64, flat.arc_ilabel, frame_scores,
        )
        stats.arcs_processed += arc_idx.size

        if observers:
            event = ExpandEvent(
                frame=frame,
                frame_scores=frame_scores,
                states=states,
                first=first,
                n_arcs=n_arcs,
                read_idx=read_idx,
                arc_idx=arc_idx,
                arc_dest=dest,
                arc_src=src,
                arc_scores=new_scores,
            )
            for observer in observers:
                observer.on_expand(event)

        if arc_idx.size == 0:
            # No outgoing non-epsilon arcs anywhere: the next frame starts
            # with an empty frontier (and raises, per the emptied-beam
            # policy in the module docstring).
            _set_empty(frontier)
            return

        # Segment-max merge: best incoming arc per destination token.
        next_states, winners = self.backend.segment_best(dest, new_scores)
        trace_idx = frontier.trace.append_bulk(
            bps[src[winners]], flat.arc_olabel[arc_idx[winners]]
        )
        stats.tokens_created += next_states.size

        frontier.states = next_states
        frontier.scores = new_scores[winners]
        frontier.bps = trace_idx
        self._closure(frontier, pass_index=frame + 1)

    def _closure(self, frontier: Frontier, pass_index: int) -> None:
        """Relax epsilon arcs to fixpoint, a whole frontier per round."""
        flat = self.flat
        stats = frontier.stats
        observers = frontier.observers
        if frontier.states.size == 0:
            return
        # (states, scores, bps) of tokens whose score improved last round.
        active = (frontier.states, frontier.scores, frontier.bps)
        round_index = 0
        while active[0].size:
            states, scores, bps = active
            eps_first = flat.eps_first[states]
            n_eps = flat.num_eps[states]
            arc_idx, src, dest, cand_scores = self.backend.expand_closure(
                eps_first, n_eps, scores, flat.arc_dest, flat.arc_weight64
            )
            if arc_idx.size == 0:
                break
            stats.epsilon_arcs_processed += arc_idx.size

            if observers:
                # Per-arc improvement vs the pre-round token scores (the
                # GPU model's atomic-update semantics).
                pos = np.searchsorted(frontier.states, dest)
                pos_c = np.minimum(pos, frontier.states.size - 1)
                exists = (pos < frontier.states.size) & (
                    frontier.states[pos_c] == dest
                )
                existing = np.where(
                    exists, frontier.scores[pos_c], np.float64(LOG_ZERO)
                )
                event = ClosureEvent(
                    pass_index=pass_index,
                    round_index=round_index,
                    states=states,
                    first=eps_first,
                    n_arcs=n_eps,
                    src=None,
                    arc_idx=arc_idx,
                    arc_dest=dest,
                    arc_src=src,
                    arc_scores=cand_scores,
                    improved=cand_scores > existing,
                )
                for observer in observers:
                    observer.on_closure(event)
            round_index += 1

            uniq, winners = self.backend.segment_best(dest, cand_scores)
            cand_scores = cand_scores[winners]
            cand_prev = bps[src[winners]]
            cand_word = flat.arc_olabel[arc_idx[winners]]

            # Merge candidates into the sorted token arrays: a candidate
            # wins if its state is new or strictly better (ties keep the
            # existing token, like the reference discipline).
            pos = np.searchsorted(frontier.states, uniq)
            pos_clipped = np.minimum(pos, frontier.states.size - 1)
            exists = (pos < frontier.states.size) & (
                frontier.states[pos_clipped] == uniq
            )
            improves = exists & (cand_scores > frontier.scores[pos_clipped])
            is_new = ~exists
            accepted = improves | is_new
            if not accepted.any():
                break

            trace_idx = frontier.trace.append_bulk(
                cand_prev[accepted], cand_word[accepted]
            )
            acc_rows = np.nonzero(accepted)[0]
            imp_in_acc = improves[acc_rows]
            new_in_acc = is_new[acc_rows]
            stats.tokens_created += int(np.count_nonzero(new_in_acc))
            stats.tokens_updated += int(np.count_nonzero(imp_in_acc))

            # In-place update of improved existing tokens ...
            upd = pos[improves]
            frontier.scores[upd] = cand_scores[improves]
            frontier.bps[upd] = trace_idx[imp_in_acc]
            # ... and sorted insertion of brand-new ones.
            ins = pos[is_new]
            frontier.states = np.insert(frontier.states, ins, uniq[is_new])
            frontier.scores = np.insert(frontier.scores, ins, cand_scores[is_new])
            frontier.bps = np.insert(frontier.bps, ins, trace_idx[new_in_acc])

            active = (uniq[accepted], cand_scores[accepted], trace_idx)

    def finalize(self, frontier: Frontier) -> DecodeResult:
        """Pick the best (preferably final) token and backtrack.

        Falls back to the best live token (``reached_final=False``) when
        no token is in a final state -- the shared emptied-beam policy.
        """
        if frontier.states.size == 0:
            raise DecodeError("no active tokens at the end of the utterance")

        finals = self.flat.final_weights[frontier.states]
        final_mask = finals > LOG_ZERO / 2
        if final_mask.any():
            totals = frontier.scores[final_mask] + finals[final_mask]
            i = int(np.argmax(totals))
            score = float(totals[i])
            bp = int(frontier.bps[final_mask][i])
            reached_final = True
        else:
            i = int(np.argmax(frontier.scores))
            score = float(frontier.scores[i])
            bp = int(frontier.bps[i])
            reached_final = False

        # Full hypothesis = stable committed prefix + tail backtrack.
        # With commit_interval=0 the committed prefix is empty and this
        # is the historical full-path walk.
        committed = frontier.trace.committed
        words = committed + tuple(frontier.trace.backtrack(bp))
        return DecodeResult(
            words=words,
            log_likelihood=score,
            reached_final=reached_final,
            stats=frontier.stats,
            committed_len=len(committed),
        )

    # ------------------------------------------------------------------
    # Fused multi-frontier sweep (the continuous-batching fast path)
    # ------------------------------------------------------------------
    def fused_step(
        self, frontiers: List[Frontier], frame_stack: np.ndarray
    ) -> None:
        """One frame of the recurrence for every frontier, fully fused.

        Mirrors :meth:`step_frame` stage by stage over the session-major
        concatenation of all frontiers, keyed by ``session * num_states +
        state`` so sessions never mix; bit-identical per frontier to
        stepping each alone.  Callers guarantee non-empty frontiers and
        uniform score widths; observers are not supported on this path
        (``advance_sessions`` falls back to solo stepping when attached).
        """
        config = self.config
        flat = self.flat
        n = len(frontiers)
        num_states = flat.num_states

        counts = np.array([f.states.size for f in frontiers], dtype=np.int64)
        starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]]
        )
        states = np.concatenate([f.states for f in frontiers])
        scores = np.concatenate([f.scores for f in frontiers])
        bps = np.concatenate([f.bps for f in frontiers])
        seg = np.repeat(np.arange(n, dtype=np.int64), counts)

        # Beam pruning, per session (every count is > 0, checked by the
        # caller).  Each frontier's strategy supplies its own threshold.
        best = np.maximum.reduceat(scores, starts)
        thresholds = np.array(
            [
                frontier.pruner.threshold(float(b))
                for frontier, b in zip(frontiers, best)
            ],
            dtype=np.float64,
        )
        keep = scores >= thresholds[seg]
        states, scores, bps, seg = states[keep], scores[keep], bps[keep], seg[keep]
        kept = np.bincount(seg, minlength=n)
        for i, frontier in enumerate(frontiers):
            frontier.stats.tokens_pruned += int(counts[i] - kept[i])

        # Histogram pruning: stable per-session top-cap by score.  The
        # cap is a config constant, identical across strategies/sessions.
        cap = config.max_active
        if cap and (kept > cap).any():
            order = np.lexsort((-scores, seg))
            seg_sorted = seg[order]
            seg_starts = np.searchsorted(seg_sorted, np.arange(n))
            rank = np.arange(order.size, dtype=np.int64) - seg_starts[seg_sorted]
            mask = np.zeros(order.size, dtype=bool)
            mask[order[rank < cap]] = True
            states, scores = states[mask], scores[mask]
            bps, seg = bps[mask], seg[mask]
            capped = np.bincount(seg, minlength=n)
            for i, frontier in enumerate(frontiers):
                frontier.stats.tokens_pruned += int(kept[i] - capped[i])
                frontier.pruner.observe(int(kept[i]))
            kept = capped
        else:
            for i, frontier in enumerate(frontiers):
                frontier.pruner.observe(int(kept[i]))

        bounds = np.cumsum(kept)[:-1]
        degrees = flat.out_degree[states]
        for i, (frontier, deg) in enumerate(zip(frontiers, np.split(degrees, bounds))):
            frontier.stats.active_tokens_per_frame.append(int(kept[i]))
            frontier.stats.states_expanded += int(kept[i])
            frontier.stats.visited_state_degrees.extend(deg.tolist())

        # Fused gather + score accumulation across every session's
        # surviving states at once (the backend's widest parallel sweep:
        # its row space spans all sessions).
        arc_idx, src, dest, new_scores = self.backend.expand_fused(
            flat.first_arc[states], flat.num_non_eps[states], scores, seg,
            flat.arc_dest, flat.arc_weight64, flat.arc_ilabel, frame_stack,
        )
        arc_seg = seg[src]
        arc_counts = np.bincount(arc_seg, minlength=n)
        for frontier, c in zip(frontiers, arc_counts):
            frontier.stats.arcs_processed += int(c)
        if arc_idx.size == 0:
            for frontier in frontiers:
                _set_empty(frontier)
            return

        # Segment-max merge on the combined (session, state) key.
        combined = arc_seg * num_states + dest
        uniq, winners = self.backend.segment_best(combined, new_scores)
        win_seg = arc_seg[winners]
        win_counts = np.bincount(win_seg, minlength=n)
        win_bounds = np.cumsum(win_counts)[:-1]
        next_states = uniq - win_seg * num_states
        next_scores = new_scores[winners]
        prev = bps[src[winners]]
        words = flat.arc_olabel[arc_idx[winners]]

        for frontier, st, sc, pv, wd in zip(
            frontiers,
            np.split(next_states, win_bounds),
            np.split(next_scores, win_bounds),
            np.split(prev, win_bounds),
            np.split(words, win_bounds),
        ):
            if st.size == 0:
                _set_empty(frontier)
                continue
            frontier.bps = frontier.trace.append_bulk(pv, wd)
            frontier.stats.tokens_created += st.size
            frontier.states = st
            frontier.scores = sc

        self._fused_closure(frontiers)

    def _fused_closure(self, frontiers: List[Frontier]) -> None:
        """Epsilon closure to fixpoint over every frontier in lockstep rounds."""
        flat = self.flat
        n = len(frontiers)
        num_states = flat.num_states

        # Combined sorted token arrays: session-major concatenation keeps
        # the (session * num_states + state) keys globally ascending.
        f_comb = np.concatenate(
            [f.states + i * num_states for i, f in enumerate(frontiers)]
        )
        f_scores = np.concatenate([f.scores for f in frontiers])
        f_bps = np.concatenate([f.bps for f in frontiers])

        act_comb, act_scores, act_bps = f_comb, f_scores, f_bps
        while act_comb.size:
            act_seg, act_states = np.divmod(act_comb, num_states)
            arc_idx, src, dest, cand = self.backend.expand_closure(
                flat.eps_first[act_states], flat.num_eps[act_states],
                act_scores, flat.arc_dest, flat.arc_weight64,
            )
            if arc_idx.size == 0:
                break
            arc_seg = act_seg[src]
            eps_counts = np.bincount(arc_seg, minlength=n)
            for frontier, c in zip(frontiers, eps_counts):
                frontier.stats.epsilon_arcs_processed += int(c)

            uniq, winners = self.backend.segment_best(
                arc_seg * num_states + dest, cand
            )
            cand_scores = cand[winners]
            cand_prev = act_bps[src[winners]]
            cand_word = flat.arc_olabel[arc_idx[winners]]
            cand_seg = arc_seg[winners]

            pos = np.searchsorted(f_comb, uniq)
            pos_clipped = np.minimum(pos, f_comb.size - 1)
            exists = (pos < f_comb.size) & (f_comb[pos_clipped] == uniq)
            improves = exists & (cand_scores > f_scores[pos_clipped])
            is_new = ~exists
            accepted = improves | is_new
            if not accepted.any():
                break

            # Trace records go to each session's own trace, in key order.
            acc_seg = cand_seg[accepted]
            acc_bounds = np.cumsum(np.bincount(acc_seg, minlength=n))[:-1]
            trace_idx = np.concatenate(
                [
                    frontier.trace.append_bulk(pv, wd)
                    for frontier, pv, wd in zip(
                        frontiers,
                        np.split(cand_prev[accepted], acc_bounds),
                        np.split(cand_word[accepted], acc_bounds),
                    )
                ]
            )
            acc_rows = np.nonzero(accepted)[0]
            imp_in_acc = improves[acc_rows]
            new_in_acc = is_new[acc_rows]
            created = np.bincount(acc_seg[new_in_acc], minlength=n)
            updated = np.bincount(acc_seg[imp_in_acc], minlength=n)
            for i, frontier in enumerate(frontiers):
                frontier.stats.tokens_created += int(created[i])
                frontier.stats.tokens_updated += int(updated[i])

            upd = pos[improves]
            f_scores[upd] = cand_scores[improves]
            f_bps[upd] = trace_idx[imp_in_acc]
            ins = pos[is_new]
            f_comb = np.insert(f_comb, ins, uniq[is_new])
            f_scores = np.insert(f_scores, ins, cand_scores[is_new])
            f_bps = np.insert(f_bps, ins, trace_idx[new_in_acc])

            act_comb = uniq[accepted]
            act_scores = cand_scores[accepted]
            act_bps = trace_idx

        sizes = np.bincount(f_comb // num_states, minlength=n)
        bounds = np.cumsum(sizes)[:-1]
        for i, (frontier, st, sc, bp) in enumerate(
            zip(
                frontiers,
                np.split(f_comb, bounds),
                np.split(f_scores, bounds),
                np.split(f_bps, bounds),
            )
        ):
            frontier.states = st - i * num_states
            frontier.scores = sc
            frontier.bps = bp


# ----------------------------------------------------------------------
# The reference (scalar oracle) discipline
# ----------------------------------------------------------------------
class ReferenceKernel:
    """Scalar token-passing discipline with exact hardware event order.

    Reproduces, token for token, the functional search of
    :class:`repro.accel.simulator.AcceleratorSimulator`: tokens walk in
    hash-insertion (dict) order, relaxations are first-wins on ties, and
    the epsilon closure is a FIFO worklist that re-visits tokens whose
    score improves.  ``ViterbiDecoder`` is a thin wrapper over
    :meth:`decode`; the accelerator's ``TraceRecorder`` subscribes a
    :class:`KernelObserver` to capture the full event stream.

    Arrays are pre-converted to plain Python lists once per kernel:
    scalar list indexing is ~5x faster than numpy scalar indexing and
    this discipline is all scalar indexing.
    """

    def __init__(
        self, graph: CompiledWfst, config: DecoderConfig = DecoderConfig()
    ) -> None:
        self.graph = graph
        self.config = config
        flat = graph.flat()
        self._first = flat.first_arc.tolist()
        self._n_non_eps = flat.num_non_eps.tolist()
        self._n_eps = flat.num_eps.tolist()
        self._dest = flat.arc_dest.tolist()
        self._weight = flat.arc_weight64.tolist()
        self._ilabel = flat.arc_ilabel.tolist()
        self._olabel = flat.arc_olabel.tolist()
        self._final = flat.final_weights.tolist()

    # ------------------------------------------------------------------
    def decode(
        self,
        scores: AcousticScores,
        observers: Sequence[KernelObserver] = (),
    ) -> DecodeResult:
        """Decode one utterance; returns the best word sequence."""
        if scores.num_frames == 0:
            raise DecodeError("no frames to decode")
        num_frames = scores.num_frames
        observers = tuple(observers)
        pruner = self.config.make_pruner()
        search = SearchStats(frames=num_frames)

        # Backpointer trace (one record per token write).
        trace_prev: List[int] = [-1]
        trace_word: List[int] = [0]
        # Live tokens: state -> (score, backpointer index).
        tokens: Dict[int, Tuple[float, int]] = {self.graph.start: (0.0, 0)}

        self._eps_pass(tokens, list(tokens.keys()), 0, search, observers,
                       trace_prev, trace_word)

        matrix = scores.matrix
        for frame in range(num_frames):
            frame_scores = matrix[frame].tolist()
            if not tokens:
                raise DecodeError(f"beam emptied the search at frame {frame}")
            best = max(score for score, _ in tokens.values())
            threshold = pruner.threshold(best)

            walk_states: List[int] = []
            survivors: List[Tuple[int, float, int, int]] = []
            idx = 0
            beam_pruned = 0
            if observers:
                for state, (score, bp) in tokens.items():
                    walk_states.append(state)
                    if score >= threshold:
                        survivors.append((state, score, bp, idx))
                    else:
                        beam_pruned += 1
                    idx += 1
            else:
                for state, (score, bp) in tokens.items():
                    if score >= threshold:
                        survivors.append((state, score, bp, idx))
                    else:
                        beam_pruned += 1
                    idx += 1
            search.tokens_pruned += beam_pruned
            n_after_beam = len(survivors)
            cap = pruner.cap()
            cap_pruned = 0
            if cap and n_after_beam > cap:
                survivors.sort(key=lambda item: item[1], reverse=True)
                cap_pruned = n_after_beam - cap
                search.tokens_pruned += cap_pruned
                survivors = survivors[:cap]
            pruner.observe(n_after_beam)

            if observers:
                event = PruneEvent(
                    frame=frame,
                    walk_states=walk_states,
                    survivor_states=[s for s, _, _, _ in survivors],
                    survivor_read_idx=[r for _, _, _, r in survivors],
                    threshold=threshold,
                    beam_pruned=beam_pruned,
                    cap_pruned=cap_pruned,
                )
                for observer in observers:
                    observer.on_prune(event)

            next_tokens: Dict[int, Tuple[float, int]] = {}
            search.active_tokens_per_frame.append(len(survivors))

            self._emit_pass(frame, survivors, next_tokens, frame_scores,
                            search, observers, trace_prev, trace_word)
            self._eps_pass(next_tokens, list(next_tokens.keys()), frame + 1,
                           search, observers, trace_prev, trace_word)
            tokens = next_tokens

        return self._finalize(tokens, search, trace_prev, trace_word)

    # ------------------------------------------------------------------
    def _emit_pass(
        self,
        frame: int,
        survivors: List[Tuple[int, float, int, int]],
        next_tokens: Dict[int, Tuple[float, int]],
        frame_scores: List[float],
        search: SearchStats,
        observers: Tuple[KernelObserver, ...],
        trace_prev: List[int],
        trace_word: List[int],
    ) -> None:
        first_l = self._first
        n_non_l = self._n_non_eps
        n_eps_l = self._n_eps
        dest_l = self._dest
        weight_l = self._weight
        ilabel_l = self._ilabel
        olabel_l = self._olabel
        degrees = search.visited_state_degrees
        tokens_get = next_tokens.get

        record = bool(observers)
        emit_states: List[int] = []
        emit_first: List[int] = []
        emit_n: List[int] = []
        emit_read_idx: List[int] = []
        arc_idx_out: List[int] = []
        arc_dest_out: List[int] = []
        improved_out: List[bool] = []

        for state, score, bp, ridx in survivors:
            first = first_l[state]
            n_non_eps = n_non_l[state]
            if record:
                emit_states.append(state)
                emit_first.append(first)
                emit_n.append(n_non_eps)
                emit_read_idx.append(ridx)
            search.states_expanded += 1
            degrees.append(n_non_eps + n_eps_l[state])

            for a in range(first, first + n_non_eps):
                dest = dest_l[a]
                if record:
                    arc_idx_out.append(a)
                    arc_dest_out.append(dest)
                search.arcs_processed += 1
                new_score = score + weight_l[a] + frame_scores[ilabel_l[a]]
                existing = tokens_get(dest)
                if existing is not None and existing[0] >= new_score:
                    if record:
                        improved_out.append(False)
                    continue
                trace_prev.append(bp)
                trace_word.append(olabel_l[a])
                if existing is None:
                    search.tokens_created += 1
                else:
                    search.tokens_updated += 1
                next_tokens[dest] = (new_score, len(trace_prev) - 1)
                if record:
                    improved_out.append(True)

        if record:
            event = ExpandEvent(
                frame=frame,
                frame_scores=frame_scores,
                states=emit_states,
                first=emit_first,
                n_arcs=emit_n,
                read_idx=emit_read_idx,
                arc_idx=arc_idx_out,
                arc_dest=arc_dest_out,
                improved=improved_out,
            )
            for observer in observers:
                observer.on_expand(event)

    def _eps_pass(
        self,
        tokens: Dict[int, Tuple[float, int]],
        seeds: List[int],
        pass_index: int,
        search: SearchStats,
        observers: Tuple[KernelObserver, ...],
        trace_prev: List[int],
        trace_word: List[int],
    ) -> None:
        first_l = self._first
        n_non_l = self._n_non_eps
        n_eps_l = self._n_eps
        dest_l = self._dest
        weight_l = self._weight
        olabel_l = self._olabel
        tokens_get = tokens.get

        record = bool(observers)
        eps_states: List[int] = []
        eps_first_out: List[int] = []
        eps_n: List[int] = []
        eps_src: List[int] = []
        arc_idx_out: List[int] = []
        arc_dest_out: List[int] = []
        improved_out: List[bool] = []

        worklist: Deque[Tuple[int, int]] = deque((s, -1) for s in seeds)
        arc_event = 0
        while worklist:
            state, src = worklist.popleft()
            score, bp = tokens[state]
            n_eps = n_eps_l[state]
            if n_eps == 0:
                continue
            eps_first = first_l[state] + n_non_l[state]
            if record:
                eps_states.append(state)
                eps_first_out.append(eps_first)
                eps_n.append(n_eps)
                eps_src.append(src)
            for a in range(eps_first, eps_first + n_eps):
                dest = dest_l[a]
                if record:
                    arc_idx_out.append(a)
                    arc_dest_out.append(dest)
                search.epsilon_arcs_processed += 1
                new_score = score + weight_l[a]
                existing = tokens_get(dest)
                if existing is not None and existing[0] >= new_score:
                    if record:
                        improved_out.append(False)
                    arc_event += 1
                    continue
                trace_prev.append(bp)
                trace_word.append(olabel_l[a])
                if existing is None:
                    search.tokens_created += 1
                else:
                    search.tokens_updated += 1
                tokens[dest] = (new_score, len(trace_prev) - 1)
                if record:
                    improved_out.append(True)
                worklist.append((dest, arc_event))
                arc_event += 1

        if record:
            event = ClosureEvent(
                pass_index=pass_index,
                round_index=0,
                states=eps_states,
                first=eps_first_out,
                n_arcs=eps_n,
                src=eps_src,
                arc_idx=arc_idx_out,
                arc_dest=arc_dest_out,
                improved=improved_out,
            )
            for observer in observers:
                observer.on_closure(event)

    def _finalize(
        self,
        tokens: Dict[int, Tuple[float, int]],
        search: SearchStats,
        trace_prev: List[int],
        trace_word: List[int],
    ) -> DecodeResult:
        """Best (preferably final) token; shared fallback policy."""
        if not tokens:
            raise DecodeError("no active tokens at the end of the utterance")
        final_l = self._final
        best: Optional[Tuple[float, int]] = None
        for state, (score, bp) in tokens.items():
            final_weight = final_l[state]
            if final_weight <= LOG_ZERO / 2:
                continue
            total = score + final_weight
            if best is None or total > best[0]:
                best = (total, bp)
        reached_final = best is not None
        if best is None:
            # No final token survived: fall back to the best live token.
            state = max(tokens, key=lambda s: tokens[s][0])
            best = tokens[state]

        score, bp = best
        words: List[int] = []
        index = bp
        while index >= 0:
            if trace_word[index] != 0:
                words.append(trace_word[index])
            index = trace_prev[index]
        words.reverse()
        return DecodeResult(
            words=tuple(words),
            log_likelihood=score,
            reached_final=reached_final,
            stats=search,
        )
