"""Numba-compiled kernel backend (optional: ``pip install repro-asr[compiled]``).

Importing this module requires numba; the dispatch layer in
:mod:`repro.decoder.backends` catches the :class:`ImportError` and falls
back to numpy with a typed warning, so the compiled path is strictly
opt-in and its absence never breaks a decode.

Determinism under ``parallel=True``
-----------------------------------
Every ``prange`` iteration owns one frontier row ``i`` and writes only
the disjoint output slice ``[offsets[i], offsets[i] + counts[i])``
computed from the exclusive prefix sum of ``counts``; no iteration reads
another's writes and there are no reductions, so the result is
bit-identical regardless of thread count or chunk schedule.  Numba
chunks the ``prange`` row space across threads, which in the fused
multi-session sweep means the parallelism spans every session's rows at
once.  Score arithmetic keeps the shared kernel's association order
``(token_score + arc_weight) + acoustic_score`` so float64 path scores
stay bit-identical to the numpy backend.

The segment merge reproduces the numpy backend's
``np.lexsort((-score, dest))`` first-wins semantics with a stable
key-only argsort followed by a strictly-greater run scan: within one
key's run the stable sort preserves input order, and ``>`` (not ``>=``)
keeps the earliest candidate on ties -- including ``0.0`` vs ``-0.0``,
which compare equal.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numba import njit, prange

from repro.decoder.backends import KernelBackend


@njit(parallel=True, nogil=True, cache=True)
def _gather(first, counts, offsets, total):
    arc_idx = np.empty(total, dtype=np.int64)
    src = np.empty(total, dtype=np.int64)
    for i in prange(first.shape[0]):
        base = offsets[i]
        f = first[i]
        for k in range(counts[i]):
            arc_idx[base + k] = f + k
            src[base + k] = i
    return arc_idx, src


@njit(parallel=True, nogil=True, cache=True)
def _expand_frame(
    first, counts, offsets, total,
    scores, arc_dest, arc_weight, arc_ilabel, frame_scores,
):
    arc_idx = np.empty(total, dtype=np.int64)
    src = np.empty(total, dtype=np.int64)
    dest = np.empty(total, dtype=np.int64)
    cand = np.empty(total, dtype=np.float64)
    for i in prange(first.shape[0]):
        base = offsets[i]
        f = first[i]
        s = scores[i]
        for k in range(counts[i]):
            a = f + k
            row = base + k
            arc_idx[row] = a
            src[row] = i
            dest[row] = arc_dest[a]
            cand[row] = (s + arc_weight[a]) + frame_scores[arc_ilabel[a]]
    return arc_idx, src, dest, cand


@njit(parallel=True, nogil=True, cache=True)
def _expand_closure(
    first, counts, offsets, total,
    scores, arc_dest, arc_weight,
):
    arc_idx = np.empty(total, dtype=np.int64)
    src = np.empty(total, dtype=np.int64)
    dest = np.empty(total, dtype=np.int64)
    cand = np.empty(total, dtype=np.float64)
    for i in prange(first.shape[0]):
        base = offsets[i]
        f = first[i]
        s = scores[i]
        for k in range(counts[i]):
            a = f + k
            row = base + k
            arc_idx[row] = a
            src[row] = i
            dest[row] = arc_dest[a]
            cand[row] = s + arc_weight[a]
    return arc_idx, src, dest, cand


@njit(parallel=True, nogil=True, cache=True)
def _expand_fused(
    first, counts, offsets, total,
    scores, seg, arc_dest, arc_weight, arc_ilabel, frame_stack,
):
    arc_idx = np.empty(total, dtype=np.int64)
    src = np.empty(total, dtype=np.int64)
    dest = np.empty(total, dtype=np.int64)
    cand = np.empty(total, dtype=np.float64)
    for i in prange(first.shape[0]):
        base = offsets[i]
        f = first[i]
        s = scores[i]
        frame_row = frame_stack[seg[i]]
        for k in range(counts[i]):
            a = f + k
            row = base + k
            arc_idx[row] = a
            src[row] = i
            dest[row] = arc_dest[a]
            cand[row] = (s + arc_weight[a]) + frame_row[arc_ilabel[a]]
    return arc_idx, src, dest, cand


@njit(nogil=True, cache=True)
def _run_best(sorted_keys, sorted_scores):
    """Per key run of a stably key-sorted array, the strictly-best position.

    Sequential by construction (run boundaries are data-dependent), but a
    single O(n) pass over memory the sort just touched.
    """
    n = sorted_keys.shape[0]
    uniq = np.empty(n, dtype=np.int64)
    win = np.empty(n, dtype=np.int64)
    m = 0
    i = 0
    while i < n:
        key = sorted_keys[i]
        best_pos = i
        best_score = sorted_scores[i]
        j = i + 1
        while j < n and sorted_keys[j] == key:
            if sorted_scores[j] > best_score:
                best_score = sorted_scores[j]
                best_pos = j
            j += 1
        uniq[m] = key
        win[m] = best_pos
        m += 1
        i = j
    return uniq[:m], win[:m]


@njit(nogil=True, cache=True)
def _trace_reachable(prev, bps, keep):
    """Mark phase of traceback compaction: chain walks with early exit.

    Sequential on purpose: chains overlap heavily near the anchor, and
    the early exit on an already-marked record (which a parallel version
    would race on) is what keeps the walk O(kept records) total.  The
    resulting mask is identical to the numpy frontier-marking version --
    both mark exactly the records on some bps-to-anchor chain.
    """
    for i in range(bps.shape[0]):
        j = bps[i]
        while j >= 0 and not keep[j]:
            keep[j] = True
            j = prev[j]


_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)


def _offsets(counts: np.ndarray) -> Tuple[np.ndarray, int]:
    """Exclusive prefix sum of ``counts`` plus the flattened total."""
    ends = np.cumsum(counts)
    total = int(ends[-1]) if len(ends) else 0
    return ends - counts, total


class NumbaBackend(KernelBackend):
    """Compiled implementation of the kernel's inner array operations."""

    name = "numba"

    def csr_gather(
        self, first: np.ndarray, counts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        offsets, total = _offsets(counts)
        if total == 0:
            return _EMPTY_I64, _EMPTY_I64
        return _gather(
            np.ascontiguousarray(first), np.ascontiguousarray(counts),
            offsets, total,
        )

    def segment_best(
        self, keys: np.ndarray, scores: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        order = np.argsort(keys, kind="stable")
        uniq, win = _run_best(
            np.ascontiguousarray(keys[order]),
            np.ascontiguousarray(scores[order]),
        )
        return uniq, order[win]

    def expand_frame(
        self,
        first: np.ndarray,
        counts: np.ndarray,
        scores: np.ndarray,
        arc_dest: np.ndarray,
        arc_weight: np.ndarray,
        arc_ilabel: np.ndarray,
        frame_scores: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        offsets, total = _offsets(counts)
        if total == 0:
            return _EMPTY_I64, _EMPTY_I64, _EMPTY_I64, _EMPTY_F64
        return _expand_frame(
            np.ascontiguousarray(first), np.ascontiguousarray(counts),
            offsets, total,
            np.ascontiguousarray(scores), arc_dest, arc_weight, arc_ilabel,
            np.ascontiguousarray(frame_scores),
        )

    def expand_closure(
        self,
        first: np.ndarray,
        counts: np.ndarray,
        scores: np.ndarray,
        arc_dest: np.ndarray,
        arc_weight: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        offsets, total = _offsets(counts)
        if total == 0:
            return _EMPTY_I64, _EMPTY_I64, _EMPTY_I64, _EMPTY_F64
        return _expand_closure(
            np.ascontiguousarray(first), np.ascontiguousarray(counts),
            offsets, total,
            np.ascontiguousarray(scores), arc_dest, arc_weight,
        )

    def expand_fused(
        self,
        first: np.ndarray,
        counts: np.ndarray,
        scores: np.ndarray,
        seg: np.ndarray,
        arc_dest: np.ndarray,
        arc_weight: np.ndarray,
        arc_ilabel: np.ndarray,
        frame_stack: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        offsets, total = _offsets(counts)
        if total == 0:
            return _EMPTY_I64, _EMPTY_I64, _EMPTY_I64, _EMPTY_F64
        return _expand_fused(
            np.ascontiguousarray(first), np.ascontiguousarray(counts),
            offsets, total,
            np.ascontiguousarray(scores), np.ascontiguousarray(seg),
            arc_dest, arc_weight, arc_ilabel,
            np.ascontiguousarray(frame_stack),
        )

    def trace_reachable(
        self, prev: np.ndarray, size: int, bps: np.ndarray, anchor: int
    ) -> np.ndarray:
        keep = np.zeros(size, dtype=np.bool_)
        keep[anchor] = True
        _trace_reachable(
            np.ascontiguousarray(prev), np.ascontiguousarray(bps), keep
        )
        return keep
