"""The portable numpy kernel backend (the dispatch default).

These are the exact vectorized sweeps :class:`repro.decoder.kernel.
SearchKernel` has always run, extracted behind the
:class:`~repro.decoder.backends.KernelBackend` protocol.  They define
the bit-level contract every other backend must reproduce: the gather
enumerates arcs in block order, the segment merge keeps the earliest
candidate on score ties (``np.lexsort`` is stable), and score
accumulation associates as ``(token + arc_weight) + acoustic``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.decoder.backends import KernelBackend


def csr_gather(
    first: np.ndarray, counts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten CSR arc blocks into ``(arc_indices, source_rows)``.

    ``first[i]`` / ``counts[i]`` describe a contiguous block of arcs; the
    result enumerates every arc of every block in block order, plus the row
    ``i`` each arc came from.
    """
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    src = np.repeat(np.arange(len(first), dtype=np.int64), counts)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return first[src] + offsets, src


def segment_best(
    dest: np.ndarray, score: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per unique destination, the position of its best-scoring candidate.

    Returns ``(unique_dests_sorted, winner_positions)``.  Ties keep the
    earliest candidate (source-major, arc order), mirroring the reference
    discipline's first-wins relaxation.
    """
    order = np.lexsort((-score, dest))
    sorted_dest = dest[order]
    first = np.empty(len(order), dtype=bool)
    first[0] = True
    first[1:] = sorted_dest[1:] != sorted_dest[:-1]
    return sorted_dest[first], order[first]


class NumpyBackend(KernelBackend):
    """Pure-numpy implementation of the kernel's inner array operations."""

    name = "numpy"

    def csr_gather(
        self, first: np.ndarray, counts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return csr_gather(first, counts)

    def segment_best(
        self, keys: np.ndarray, scores: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return segment_best(keys, scores)

    def expand_frame(
        self,
        first: np.ndarray,
        counts: np.ndarray,
        scores: np.ndarray,
        arc_dest: np.ndarray,
        arc_weight: np.ndarray,
        arc_ilabel: np.ndarray,
        frame_scores: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        arc_idx, src = csr_gather(first, counts)
        dest = arc_dest[arc_idx]
        if arc_idx.size == 0:
            return arc_idx, src, dest, np.empty(0, dtype=np.float64)
        cand = (
            scores[src]
            + arc_weight[arc_idx]
            + frame_scores[arc_ilabel[arc_idx]]
        )
        return arc_idx, src, dest, cand

    def expand_closure(
        self,
        first: np.ndarray,
        counts: np.ndarray,
        scores: np.ndarray,
        arc_dest: np.ndarray,
        arc_weight: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        arc_idx, src = csr_gather(first, counts)
        dest = arc_dest[arc_idx]
        if arc_idx.size == 0:
            return arc_idx, src, dest, np.empty(0, dtype=np.float64)
        cand = scores[src] + arc_weight[arc_idx]
        return arc_idx, src, dest, cand

    def expand_fused(
        self,
        first: np.ndarray,
        counts: np.ndarray,
        scores: np.ndarray,
        seg: np.ndarray,
        arc_dest: np.ndarray,
        arc_weight: np.ndarray,
        arc_ilabel: np.ndarray,
        frame_stack: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        arc_idx, src = csr_gather(first, counts)
        dest = arc_dest[arc_idx]
        if arc_idx.size == 0:
            return arc_idx, src, dest, np.empty(0, dtype=np.float64)
        cand = (
            scores[src]
            + arc_weight[arc_idx]
            + frame_stack[seg[src], arc_ilabel[arc_idx]]
        )
        return arc_idx, src, dest, cand

    def trace_reachable(
        self, prev: np.ndarray, size: int, bps: np.ndarray, anchor: int
    ) -> np.ndarray:
        from repro.decoder.traceback import trace_reachable_numpy

        return trace_reachable_numpy(prev, size, bps, anchor)
