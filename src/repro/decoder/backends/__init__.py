"""Kernel backend dispatch: one search recurrence, pluggable array engines.

The hot prune -> expand -> merge -> closure frame sweep of
:class:`repro.decoder.kernel.SearchKernel` bottoms out in a handful of
pure array operations -- the CSR arc gather, the fused gather+score
expansion and the segment-best destination merge.  This package extracts
those operations behind the :class:`KernelBackend` protocol so a
compiled implementation can replace them without forking the recurrence:
all pruning strategy state, merge policy, trace bookkeeping, counters
and observer events stay in the shared kernel, which is what makes the
cross-backend identity guarantee hold *by construction* (and lets the
differential suite in ``tests/test_backend_equivalence.py`` verify it).

Backends
--------
* ``numpy`` -- the portable default; the exact sweeps the kernel always
  ran, moved verbatim into :mod:`repro.decoder.backends.numpy_backend`.
* ``numba`` -- optional (``pip install repro-asr[compiled]``);
  ``@njit(parallel=True, nogil=True)`` kernels with chunked parallelism
  over the gathered arc rows, spanning every session of a fused sweep.
  See :mod:`repro.decoder.backends.numba_backend`.

Selection
---------
``DecoderConfig.backend`` names a backend (``"numpy"`` / ``"numba"``) or
``"auto"`` (the default), which consults the :data:`BACKEND_ENV_VAR`
environment variable and falls back to numpy.  Requesting ``numba``
where it is not importable emits a typed :class:`BackendFallbackWarning`
and uses numpy -- selection never crashes a decode, because every
backend computes bit-identical results and the choice is purely a speed
knob.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError

#: Backend names accepted by ``DecoderConfig.backend``, the
#: ``REPRO_KERNEL_BACKEND`` environment variable and the CLI's
#: ``--kernel-backend`` flag.
KERNEL_BACKENDS: Tuple[str, ...] = ("auto", "numpy", "numba")

#: Environment variable consulted when the configured backend is "auto".
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"


class BackendFallbackWarning(UserWarning):
    """A requested compiled backend is unavailable; numpy is used instead."""


class KernelBackend:
    """The pure-array inner operations of one kernel implementation.

    Every method is a deterministic pure function of its array inputs,
    and every backend must produce **bit-identical** outputs for the
    same inputs -- including float64 score arithmetic, which must
    associate as ``(token_score + arc_weight) + acoustic_score`` -- so
    that word output, path likelihoods, every order-independent counter
    and every observer event stream agree across backends.

    ``first[i]`` / ``counts[i]`` always describe state ``i``'s contiguous
    CSR arc block in the :class:`~repro.wfst.layout.FlatLayout` arrays
    (a contiguity the layout guarantees).
    """

    name: str = "abstract"

    def csr_gather(
        self, first: np.ndarray, counts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flatten CSR arc blocks into ``(arc_indices, source_rows)``."""
        raise NotImplementedError

    def segment_best(
        self, keys: np.ndarray, scores: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per unique key, the position of its best-scoring candidate.

        Returns ``(unique_keys_sorted, winner_positions)``; ties keep
        the earliest candidate in input order (first-wins, mirroring the
        reference discipline's relaxation).  ``keys`` must be non-empty.
        """
        raise NotImplementedError

    def expand_frame(
        self,
        first: np.ndarray,
        counts: np.ndarray,
        scores: np.ndarray,
        arc_dest: np.ndarray,
        arc_weight: np.ndarray,
        arc_ilabel: np.ndarray,
        frame_scores: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fused gather + non-epsilon score accumulation for one frontier.

        Returns ``(arc_idx, src, dest, cand_scores)`` where
        ``cand_scores[k] = (scores[src[k]] + arc_weight[arc_idx[k]])
        + frame_scores[arc_ilabel[arc_idx[k]]]``.
        """
        raise NotImplementedError

    def expand_closure(
        self,
        first: np.ndarray,
        counts: np.ndarray,
        scores: np.ndarray,
        arc_dest: np.ndarray,
        arc_weight: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fused gather + epsilon score accumulation (no acoustic term).

        Returns ``(arc_idx, src, dest, cand_scores)`` with
        ``cand_scores[k] = scores[src[k]] + arc_weight[arc_idx[k]]``.
        """
        raise NotImplementedError

    def expand_fused(
        self,
        first: np.ndarray,
        counts: np.ndarray,
        scores: np.ndarray,
        seg: np.ndarray,
        arc_dest: np.ndarray,
        arc_weight: np.ndarray,
        arc_ilabel: np.ndarray,
        frame_stack: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Multi-session expansion: row ``i`` reads ``frame_stack[seg[i]]``.

        Returns ``(arc_idx, src, dest, cand_scores)`` with
        ``cand_scores[k] = (scores[src[k]] + arc_weight[arc_idx[k]])
        + frame_stack[seg[src[k]], arc_ilabel[arc_idx[k]]]``.
        """
        raise NotImplementedError

    def trace_reachable(
        self, prev: np.ndarray, size: int, bps: np.ndarray, anchor: int
    ) -> np.ndarray:
        """Keep-mask over ``prev[:size]``: records reachable from ``bps``.

        The traceback compaction's mark phase: follow predecessor links
        from every live backpointer, stopping at already-marked records
        (``anchor`` is pre-marked; every live chain passes through it).
        The mask is a pure function of its inputs and must be
        bit-identical across backends -- it decides which trace records
        survive a commit, so a divergent mask would desynchronize
        renumbered backpointers between numpy and numba decodes.
        """
        raise NotImplementedError


# ----------------------------------------------------------------------
# Registry and resolution
# ----------------------------------------------------------------------
_NUMPY_BACKEND: Optional[KernelBackend] = None
_NUMBA_BACKEND: Optional[KernelBackend] = None
_NUMBA_IMPORT_ERROR: Optional[str] = None


def _numpy_backend() -> KernelBackend:
    global _NUMPY_BACKEND
    if _NUMPY_BACKEND is None:
        from repro.decoder.backends.numpy_backend import NumpyBackend

        _NUMPY_BACKEND = NumpyBackend()
    return _NUMPY_BACKEND


def _numba_backend() -> Optional[KernelBackend]:
    global _NUMBA_BACKEND, _NUMBA_IMPORT_ERROR
    if _NUMBA_BACKEND is None and _NUMBA_IMPORT_ERROR is None:
        try:
            from repro.decoder.backends.numba_backend import NumbaBackend
        except ImportError as exc:
            _NUMBA_IMPORT_ERROR = str(exc)
        else:
            _NUMBA_BACKEND = NumbaBackend()
    return _NUMBA_BACKEND


def numba_available() -> bool:
    """True when the numba backend can be imported in this environment."""
    return _numba_backend() is not None


def available_backends() -> Tuple[str, ...]:
    """Concrete backend names importable right now (numpy always is)."""
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    return tuple(names)


def resolve_backend(name: str = "auto") -> KernelBackend:
    """Resolve a backend name to a concrete :class:`KernelBackend`.

    ``"auto"`` consults :data:`BACKEND_ENV_VAR` and defaults to numpy.
    ``"numba"`` falls back to numpy with a typed
    :class:`BackendFallbackWarning` when numba is not importable --
    never a crash, because the backend choice cannot change any decode
    output.  Unknown names raise :class:`ConfigError`.
    """
    if name not in KERNEL_BACKENDS:
        raise ConfigError(
            f"unknown kernel backend {name!r} (choose from {KERNEL_BACKENDS})"
        )
    if name == "auto":
        # Selection only: every backend computes bit-identical results,
        # so this environment read can change which implementation runs
        # but never what it computes.
        requested = os.environ.get(BACKEND_ENV_VAR, "").strip()  # repro-lint: disable=REP001
        if requested and requested not in KERNEL_BACKENDS:
            raise ConfigError(
                f"{BACKEND_ENV_VAR}={requested!r} is not a known kernel "
                f"backend (choose from {KERNEL_BACKENDS})"
            )
        name = requested if requested and requested != "auto" else "numpy"
    if name == "numba":
        backend = _numba_backend()
        if backend is not None:
            return backend
        warnings.warn(
            BackendFallbackWarning(
                "kernel backend 'numba' requested but numba is not "
                "importable; falling back to the numpy backend (install "
                f"it with `pip install repro-asr[compiled]`): "
                f"{_NUMBA_IMPORT_ERROR}"
            ),
            stacklevel=2,
        )
    return _numpy_backend()


__all__ = [
    "BACKEND_ENV_VAR",
    "BackendFallbackWarning",
    "KERNEL_BACKENDS",
    "KernelBackend",
    "available_backends",
    "numba_available",
    "resolve_backend",
]
