"""Invariant linter for the repro codebase (``repro lint``).

The repo's load-bearing guarantees -- bit-identical output across every
decode engine, cycle-identical trace replay, and content-addressed cache
identity -- are behavioural invariants that a single stray nondeterministic
walk or un-fingerprinted config field can silently break long before a
runtime test notices.  This package encodes those invariants as
machine-checked AST rules:

========  ============================================================
rule id   invariant
========  ============================================================
REP001    determinism -- no ``random``/``time``/``os.environ`` use or
          unordered-set iteration inside the kernel/replay hot paths
REP002    typed errors -- every ``raise`` uses the
          :mod:`repro.common.errors` taxonomy; no bare/broad excepts
          without re-raise
REP003    fingerprint completeness -- every config/recipe field is
          reachable from its fingerprint or pricing computation, and
          fingerprinted sources cannot change without a version bump
          or an explicit re-attestation
REP004    argument purity -- WFST ops and compiler passes never mutate
          their FST/array arguments
REP005    validation completeness -- every field of a validated config
          dataclass is range/type-checked
========  ============================================================

See ``docs/INVARIANTS.md`` for the catalogue and the suppression
protocol (``# repro-lint: disable=REPnnn``).
"""

from repro.analysis.core import Project, Rule, SourceFile, Violation
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import AnalysisReport, main, run_analysis

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "Project",
    "Rule",
    "SourceFile",
    "Violation",
    "main",
    "run_analysis",
]
