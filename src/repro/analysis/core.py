"""Core of the invariant linter: source model, rule protocol, suppression.

A :class:`Project` is a lazily-parsed view of the python tree under one
repo root; rules receive the whole project (not one file at a time) so
cross-file invariants -- "every dataclass field reaches its fingerprint
function" -- are first-class.  Violations are plain frozen records keyed
by ``(rule, path, message)`` so baselines survive unrelated line churn.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.common.errors import AnalysisError

#: Trailing-comment suppression: ``x = set()  # repro-lint: disable=REP001``
#: (comma-separated list of rule ids).
_SUPPRESS = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")
#: Whole-file opt-out, honoured within the first ten lines.
_SKIP_FILE = re.compile(r"#\s*repro-lint:\s*skip-file")


@dataclass(frozen=True)
class Violation:
    """One rule finding, addressed by content rather than line number."""

    rule: str
    path: str  #: repo-root-relative posix path
    line: int
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across unrelated line churn."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class SourceFile:
    """One parsed python source file plus its suppression annotations."""

    path: Path
    rel: str
    text: str
    tree: ast.Module
    #: line number -> rule ids disabled on that line
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    skip_all: bool = False

    @classmethod
    def parse(cls, path: Path, rel: str) -> "SourceFile":
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=rel)
        except (OSError, SyntaxError, ValueError) as exc:
            raise AnalysisError(f"cannot parse {rel}: {exc}") from exc
        suppressions: Dict[int, Set[str]] = {}
        skip_all = False
        for lineno, line in enumerate(text.splitlines(), start=1):
            if lineno <= 10 and _SKIP_FILE.search(line):
                skip_all = True
            match = _SUPPRESS.search(line)
            if match:
                rules = {
                    token.strip()
                    for token in match.group(1).split(",")
                    if token.strip()
                }
                suppressions.setdefault(lineno, set()).update(rules)
        return cls(
            path=path, rel=rel, text=text, tree=tree,
            suppressions=suppressions, skip_all=skip_all,
        )

    def suppressed(self, violation: Violation) -> bool:
        if self.skip_all:
            return True
        return violation.rule in self.suppressions.get(violation.line, set())


class Project:
    """Lazily-parsed python tree under ``root``, shared by every rule."""

    def __init__(
        self,
        root: Path,
        scan_paths: Sequence[str],
        limit_to: Optional[Sequence[str]] = None,
    ) -> None:
        self.root = Path(root).resolve()
        self.scan_paths = tuple(scan_paths)
        self._cache: Dict[str, Optional[SourceFile]] = {}
        self._limit = (
            None if limit_to is None
            else {self._normalize(p) for p in limit_to}
        )

    def _normalize(self, rel: str) -> str:
        path = Path(rel)
        if path.is_absolute():
            path = path.relative_to(self.root)
        return path.as_posix()

    # ------------------------------------------------------------------
    def get(self, rel: str) -> Optional[SourceFile]:
        """The parsed file at repo-relative ``rel``, or ``None`` if absent.

        Missing files are a legitimate state (rules configured for the
        full repo run unchanged over fixture mini-trees in tests), so
        absence is not an error here; rules decide what absence means.
        """
        rel = self._normalize(rel)
        if rel not in self._cache:
            path = self.root / rel
            self._cache[rel] = (
                SourceFile.parse(path, rel) if path.is_file() else None
            )
        return self._cache[rel]

    def files(self) -> Iterator[SourceFile]:
        """Every ``.py`` file under the scan paths, in sorted order."""
        seen: Set[str] = set()
        for scan in self.scan_paths:
            base = self.root / scan
            if base.is_file():
                candidates = [base]
            elif base.is_dir():
                candidates = sorted(base.rglob("*.py"))
            else:
                continue
            for path in candidates:
                if "__pycache__" in path.parts:
                    continue
                rel = path.relative_to(self.root).as_posix()
                if rel in seen:
                    continue
                seen.add(rel)
                if self._limit is not None and rel not in self._limit:
                    continue
                parsed = self.get(rel)
                if parsed is not None:
                    yield parsed


class Rule:
    """One machine-checked invariant.

    Subclasses set :attr:`rule_id` / :attr:`name` / :attr:`rationale` and
    implement :meth:`check` over the whole project.  The engine applies
    suppression comments and the committed baseline afterwards, so rules
    simply report everything they see.
    """

    rule_id: str = "REP000"
    name: str = "abstract"
    rationale: str = ""

    def check(self, project: Project) -> Iterable[Violation]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Small AST helpers shared by several rules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def attribute_names(node: ast.AST) -> Set[str]:
    """Every attribute name referenced anywhere under ``node``."""
    return {
        child.attr
        for child in ast.walk(node)
        if isinstance(child, ast.Attribute)
    }


def plain_names(node: ast.AST) -> Set[str]:
    """Every bare identifier referenced anywhere under ``node``."""
    return {
        child.id for child in ast.walk(node) if isinstance(child, ast.Name)
    }


def self_attribute_reads(node: ast.AST, owner: str = "self") -> Set[str]:
    """Attribute names accessed on ``owner`` anywhere under ``node``."""
    found: Set[str] = set()
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == owner
        ):
            found.add(child.attr)
    return found


def decorator_names(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name:
            names.add(name.split(".")[-1])
    return names


def is_dataclass(node: ast.ClassDef) -> bool:
    return "dataclass" in decorator_names(node)


def class_defs(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            yield node


def dataclass_fields(node: ast.ClassDef) -> List[Tuple[str, str]]:
    """``(field_name, annotation_source)`` for each annotated field."""
    fields: List[Tuple[str, str]] = []
    for stmt in node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        ):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append((stmt.target.id, annotation))
    return fields
