"""REP005 -- config-validation completeness.

A config dataclass that validates *some* fields promises callers that
construction-time errors are :class:`ConfigError`; fields that slip past
``__post_init__`` break that promise and surface later as inscrutable
numpy/shape errors deep in a decode.  For every dataclass named
``*Config``/``*Recipe`` that defines ``__post_init__`` or ``validate``,
this rule requires every field to be read by that validator (directly or
through the class's own properties/methods, found by fixpoint).

Fields that need no range check are exempt by *type*, not by name:
``bool`` fields (any value is valid) and nested ``*Config``/``*Recipe``
fields (they validate themselves on construction).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, Set

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import (
    Project,
    Rule,
    SourceFile,
    Violation,
    class_defs,
    dataclass_fields,
    is_dataclass,
    self_attribute_reads,
)

_VALIDATORS = ("__post_init__", "validate")
_OPTIONAL = re.compile(r"^(?:typing\.)?Optional\[(.*)\]$")


class ValidationCompletenessRule(Rule):
    rule_id = "REP005"
    name = "validation-completeness"
    rationale = (
        "a config that validates some fields must validate all of them, "
        "or bad values surface as inscrutable errors mid-decode"
    )

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config

    def check(self, project: Project) -> Iterable[Violation]:
        for src in project.files():
            yield from self._check_file(src)

    # ------------------------------------------------------------------
    def _check_file(self, src: SourceFile) -> Iterator[Violation]:
        for cls in class_defs(src.tree):
            if not is_dataclass(cls):
                continue
            if not cls.name.endswith(self.config.validated_class_suffixes):
                continue
            validators = [
                node for node in cls.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _VALIDATORS
            ]
            if not validators:
                continue
            yield from self._check_class(src, cls, validators)

    def _check_class(
        self,
        src: SourceFile,
        cls: ast.ClassDef,
        validators: Iterable[ast.AST],
    ) -> Iterator[Violation]:
        coverage: Set[str] = set()
        for validator in validators:
            coverage |= self_attribute_reads(validator)
        coverage = self._expand(cls, coverage)

        for field_name, annotation in dataclass_fields(cls):
            if field_name.startswith("_"):
                continue
            if self._exempt_annotation(annotation):
                continue
            if field_name in coverage:
                continue
            yield Violation(
                rule=self.rule_id, path=src.rel, line=cls.lineno,
                message=(
                    f"field '{cls.name}.{field_name}' has no range/type "
                    f"check in {'/'.join(_VALIDATORS)}; validate it (or "
                    f"make its type self-validating)"
                ),
            )

    def _exempt_annotation(self, annotation: str) -> bool:
        inner = annotation.strip().strip("\"'")
        match = _OPTIONAL.match(inner)
        if match:
            inner = match.group(1).strip()
        if inner == "bool":
            return True
        # Nested configs/recipes validate themselves on construction.
        tail = inner.split("[")[0].split(".")[-1]
        return tail.endswith(self.config.validated_class_suffixes)

    @staticmethod
    def _expand(cls: ast.ClassDef, coverage: Set[str]) -> Set[str]:
        """Fixpoint through the class's own members: a validator that
        checks ``self.resolved_max_beam`` covers ``max_beam``."""
        member_reads = {
            node.name: self_attribute_reads(node)
            for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        expanded = set(coverage)
        changed = True
        while changed:
            changed = False
            for member, reads in member_reads.items():
                if member in expanded and not reads <= expanded:
                    expanded |= reads
                    changed = True
        return expanded
