"""REP001 -- determinism of the kernel/replay hot paths.

Cross-engine word identity and cycle-identical trace replay both require
the hot paths to be pure functions of (graph, scores, config): no wall
clock, no RNG, no environment reads, no iteration order that Python does
not guarantee.  Sets are the one stdlib container with unspecified
iteration order, so iterating one without sorting is flagged even when
today's CPython happens to be stable for the values involved.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import Project, Rule, SourceFile, Violation

#: Modules whose very import marks a hot path as nondeterministic.
_BANNED_MODULES = ("random", "time")
#: ``os`` attributes that read ambient process state.
_OS_READS = frozenset({"environ", "getenv", "getenvb"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class DeterminismRule(Rule):
    rule_id = "REP001"
    name = "determinism"
    rationale = (
        "kernel/replay hot paths must be pure functions of "
        "(graph, scores, config) for bit-identical engines and "
        "cycle-identical replay"
    )

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config

    def check(self, project: Project) -> Iterable[Violation]:
        for rel in self.config.hot_modules:
            src = project.get(rel)
            if src is not None:
                yield from self._check_file(src)

    # ------------------------------------------------------------------
    def _check_file(self, src: SourceFile) -> Iterator[Violation]:
        numpy_aliases: Set[str] = set()
        os_aliases: Set[str] = set()
        set_names: Set[str] = set()

        def report(node: ast.AST, message: str) -> Violation:
            return Violation(
                rule=self.rule_id, path=src.rel,
                line=getattr(node, "lineno", 1), message=message,
            )

        # Pass 1: imports and names bound to set expressions.
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top == "numpy":
                        numpy_aliases.add(alias.asname or top)
                    elif top == "os":
                        os_aliases.add(alias.asname or top)
            elif isinstance(node, ast.Assign):
                if (
                    len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and _is_set_expr(node.value)
                ):
                    set_names.add(node.targets[0].id)

        # Pass 2: violations.
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _BANNED_MODULES:
                        yield report(node, self._module_msg(alias.name))
                    elif alias.name.startswith("numpy.random"):
                        yield report(node, self._module_msg("numpy.random"))
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                top = module.split(".")[0]
                if top in _BANNED_MODULES or module.startswith("numpy.random"):
                    yield report(node, self._module_msg(module))
                elif top == "numpy" and any(
                    alias.name == "random" for alias in node.names
                ):
                    yield report(node, self._module_msg("numpy.random"))
                elif top == "os" and any(
                    alias.name in _OS_READS for alias in node.names
                ):
                    yield report(node, self._environ_msg())
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in numpy_aliases
                    and node.attr == "random"
                ):
                    yield report(node, self._module_msg("numpy.random"))
                elif (
                    isinstance(node.value, ast.Name)
                    and node.value.id in os_aliases
                    and node.attr in _OS_READS
                ):
                    yield report(node, self._environ_msg())
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(node.iter, set_names, report)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from self._check_iter(
                        generator.iter, set_names, report
                    )

    def _check_iter(
        self,
        iter_node: ast.AST,
        set_names: Set[str],
        report,
    ) -> Iterator[Violation]:
        if _is_set_expr(iter_node) or (
            isinstance(iter_node, ast.Name) and iter_node.id in set_names
        ):
            yield report(
                iter_node,
                "nondeterminism hazard: iterates over an unordered set; "
                "wrap in sorted(...) or use an order-preserving container",
            )

    @staticmethod
    def _module_msg(module: str) -> str:
        return (
            f"nondeterminism hazard: uses the '{module}' module in a hot "
            f"path; derive values from explicit config fields and seeds"
        )

    @staticmethod
    def _environ_msg() -> str:
        return (
            "nondeterminism hazard: reads the process environment in a "
            "hot path; thread the value through an explicit config field"
        )
