"""REP003 -- fingerprint completeness and version-bump guarding.

Two checks protect the content-addressed caches:

1. **Field coverage** -- every field of a fingerprinted dataclass
   (:class:`GraphRecipe`, :class:`AcceleratorConfig`, :class:`HashConfig`)
   must be reachable from its fingerprint/pricing anchors.  A field the
   anchors never read either silently fragments the cache (hashed but
   unused) or, worse, changes behaviour without changing the address
   (used but unhashed).  Reachability follows one level of indirection
   through the dataclass's own properties/methods (``arc_issue_window``
   covers ``prefetch_fifo_entries``), and a call to
   ``dataclasses.asdict``/``astuple``/``fields`` inside a function anchor
   counts as full coverage.

2. **Version guard** -- the committed guard file records, per version
   constant (``COMPILER_VERSION``, ``TRACE_FORMAT_VERSION``), the value
   and a content hash of the sources it guards.  If the guarded sources
   change while the constant stays put, the rule fails: either bump the
   constant (output may differ -> cached artifacts must re-address) or
   explicitly re-attest that output is unchanged with
   ``tools/run_analysis.py --update-version-guard``.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.analysis.config import (
    AnalysisConfig,
    FingerprintSpec,
    VersionGuardSpec,
)
from repro.analysis.core import (
    Project,
    Rule,
    Violation,
    attribute_names,
    dataclass_fields,
    plain_names,
    self_attribute_reads,
)
from repro.common.errors import AnalysisError

#: Calls that expand every dataclass field inside a function anchor.
_FULL_COVERAGE_CALLS = frozenset({"asdict", "astuple", "fields"})


def compute_guard_state(
    root: Path, specs: Iterable[VersionGuardSpec]
) -> Dict[str, Dict[str, object]]:
    """Current ``symbol -> {version, content_hash}`` for the guard file."""
    state: Dict[str, Dict[str, object]] = {}
    for spec in specs:
        version = _read_version(root, spec)
        if version is None:
            continue
        state[spec.symbol] = {
            "version": version,
            "content_hash": _hash_sources(root, spec.guarded),
        }
    return state


def load_guard_file(path: Path) -> Dict[str, Dict[str, object]]:
    if not path.is_file():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"corrupt version guard {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise AnalysisError(f"corrupt version guard {path}: not an object")
    return payload


def _read_version(root: Path, spec: VersionGuardSpec) -> Optional[int]:
    module = root / spec.module
    if not module.is_file():
        return None
    tree = ast.parse(module.read_text(encoding="utf-8"))
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == spec.symbol
            for t in node.targets
        ):
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, int
            ):
                return node.value.value
    return None


def _hash_sources(root: Path, guarded: Tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    for rel in sorted(guarded):
        path = root / rel
        if not path.is_file():
            continue
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:32]


class FingerprintRule(Rule):
    rule_id = "REP003"
    name = "fingerprint-completeness"
    rationale = (
        "content-addressed caches are only sound if every "
        "behaviour-bearing field feeds the address and fingerprinted "
        "sources cannot drift without a version bump"
    )

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config

    def check(self, project: Project) -> Iterable[Violation]:
        for spec in self.config.fingerprint_specs:
            yield from self._check_spec(project, spec)
        yield from self._check_version_guards(project)

    # ------------------------------------------------------------------
    # Part 1: field coverage
    # ------------------------------------------------------------------
    def _check_spec(
        self, project: Project, spec: FingerprintSpec
    ) -> Iterator[Violation]:
        cls_rel, _, cls_name = spec.cls.partition("::")
        src = project.get(cls_rel)
        if src is None:  # fixture mini-trees omit most of the repo
            return
        cls_node = self._find_class(src.tree, cls_name)
        if cls_node is None:
            yield Violation(
                rule=self.rule_id, path=cls_rel, line=1,
                message=(
                    f"analysis config names dataclass '{cls_name}' which "
                    f"does not exist here; update fingerprint_specs"
                ),
            )
            return

        coverage, full = self._anchor_coverage(project, spec)
        coverage = self._expand_through_members(cls_node, coverage)

        for field_name, _annotation in dataclass_fields(cls_node):
            if field_name.startswith("_"):
                continue
            if field_name in spec.allow:
                if not str(spec.allow[field_name]).strip():
                    yield Violation(
                        rule=self.rule_id, path=cls_rel,
                        line=cls_node.lineno,
                        message=(
                            f"'{cls_name}.{field_name}' is exempted "
                            f"without a written justification; document "
                            f"why it need not reach the fingerprint"
                        ),
                    )
                continue
            if full or field_name in coverage:
                continue
            yield Violation(
                rule=self.rule_id, path=cls_rel, line=cls_node.lineno,
                message=(
                    f"field '{cls_name}.{field_name}' is not reachable "
                    f"from its fingerprint/pricing anchors "
                    f"({', '.join(spec.anchors)}); hash or consume it, "
                    f"or exempt it with a justification in the analysis "
                    f"config"
                ),
            )

    def _anchor_coverage(
        self, project: Project, spec: FingerprintSpec
    ) -> Tuple[Set[str], bool]:
        coverage: Set[str] = set()
        full = False
        for anchor in spec.anchors:
            rel, _, qualname = anchor.partition("::")
            src = project.get(rel)
            if src is None:
                continue
            if not qualname:
                coverage |= attribute_names(src.tree)
                coverage |= plain_names(src.tree)
                continue
            node = self._resolve(src.tree, qualname)
            if node is None:
                continue
            coverage |= attribute_names(node)
            coverage |= plain_names(node)
            for child in ast.walk(node):
                if isinstance(child, ast.Call):
                    func = child.func
                    name = (
                        func.id if isinstance(func, ast.Name)
                        else func.attr if isinstance(func, ast.Attribute)
                        else None
                    )
                    if name in _FULL_COVERAGE_CALLS:
                        full = True
        return coverage, full

    @staticmethod
    def _find_class(
        tree: ast.Module, name: str
    ) -> Optional[ast.ClassDef]:
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None

    @classmethod
    def _resolve(cls, tree: ast.Module, qualname: str) -> Optional[ast.AST]:
        parts = qualname.split(".")
        scope: ast.AST = tree
        for part in parts:
            found = None
            for node in ast.iter_child_nodes(scope):
                if isinstance(
                    node,
                    (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
                ) and node.name == part:
                    found = node
                    break
            if found is None:
                return None
            scope = found
        return scope

    @staticmethod
    def _expand_through_members(
        cls_node: ast.ClassDef, coverage: Set[str]
    ) -> Set[str]:
        """Fixpoint: a covered property/method covers the fields it reads
        (``num_sets`` covers ``size_bytes``/``assoc``/``line_bytes``)."""
        member_reads = {
            node.name: self_attribute_reads(node)
            for node in cls_node.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        expanded = set(coverage)
        changed = True
        while changed:
            changed = False
            for member, reads in member_reads.items():
                if member in expanded and not reads <= expanded:
                    expanded |= reads
                    changed = True
        return expanded

    # ------------------------------------------------------------------
    # Part 2: version guard
    # ------------------------------------------------------------------
    def _check_version_guards(self, project: Project) -> Iterator[Violation]:
        recorded = load_guard_file(
            project.root / self.config.version_guard_path
        )
        for spec in self.config.version_guards:
            version = _read_version(project.root, spec)
            module = project.get(spec.module)
            if module is None:
                continue  # fixture mini-tree
            if version is None:
                yield Violation(
                    rule=self.rule_id, path=spec.module, line=1,
                    message=(
                        f"guarded version constant {spec.symbol} not "
                        f"found as a module-level int literal"
                    ),
                )
                continue
            entry = recorded.get(spec.symbol)
            current_hash = _hash_sources(project.root, spec.guarded)
            if entry is None:
                yield Violation(
                    rule=self.rule_id, path=spec.module, line=1,
                    message=(
                        f"version guard for {spec.symbol} is not "
                        f"initialised; run 'python tools/run_analysis.py "
                        f"--update-version-guard'"
                    ),
                )
            elif entry.get("version") != version:
                yield Violation(
                    rule=self.rule_id, path=spec.module, line=1,
                    message=(
                        f"{spec.symbol} was bumped "
                        f"({entry.get('version')} -> {version}); "
                        f"re-attest the guard with 'python "
                        f"tools/run_analysis.py --update-version-guard'"
                    ),
                )
            elif entry.get("content_hash") != current_hash:
                yield Violation(
                    rule=self.rule_id, path=spec.module, line=1,
                    message=(
                        f"sources guarded by {spec.symbol} changed "
                        f"without a version bump; bump {spec.symbol} so "
                        f"cached artifacts re-address, or -- only if the "
                        f"change provably cannot alter output -- "
                        f"re-attest with 'python tools/run_analysis.py "
                        f"--update-version-guard'"
                    ),
                )
