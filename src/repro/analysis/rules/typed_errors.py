"""REP002 -- typed-error discipline.

Every error the library raises must derive from the
:mod:`repro.common.errors` taxonomy so callers can catch library failures
without catching unrelated bugs, and broad handlers must not swallow the
taxonomy along with everything else.  The allowed class set is parsed
from the taxonomy module itself, so adding a new typed error there is
immediately allowed here.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Set

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import (
    Project,
    Rule,
    SourceFile,
    Violation,
    class_defs,
    dotted_name,
)

#: Raises of these names are always acceptable: abstract-method markers.
_ALWAYS_ALLOWED = frozenset({"NotImplementedError"})
#: Exception-looking builtins without the Error/Exception/Warning suffix.
_KNOWN_EXCEPTIONS = frozenset({
    "StopIteration", "StopAsyncIteration", "SystemExit",
    "KeyboardInterrupt", "GeneratorExit",
})
_BROAD = frozenset({"Exception", "BaseException"})


def _looks_like_exception_class(name: str) -> bool:
    return name.endswith(("Error", "Exception", "Warning")) or (
        name in _KNOWN_EXCEPTIONS
    )


class TypedErrorsRule(Rule):
    rule_id = "REP002"
    name = "typed-errors"
    rationale = (
        "library failures must be catchable as ReproError subclasses "
        "without catching unrelated bugs"
    )

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config

    def check(self, project: Project) -> Iterable[Violation]:
        allowed = self._allowed_names(project)
        for src in project.files():
            yield from self._check_file(src, allowed)

    # ------------------------------------------------------------------
    def _allowed_names(self, project: Project) -> Set[str]:
        allowed = set(_ALWAYS_ALLOWED)
        taxonomy = project.get(self.config.errors_module)
        if taxonomy is not None:
            allowed.update(node.name for node in class_defs(taxonomy.tree))
        return allowed

    def _check_file(
        self, src: SourceFile, allowed: Set[str]
    ) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Raise):
                name = self._raised_class(node)
                if (
                    name is not None
                    and _looks_like_exception_class(name)
                    and name not in allowed
                ):
                    yield Violation(
                        rule=self.rule_id, path=src.rel, line=node.lineno,
                        message=(
                            f"raises {name} outside the repro.common.errors "
                            f"taxonomy; raise (or derive) a ReproError "
                            f"subclass so callers can catch library "
                            f"failures precisely"
                        ),
                    )
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(src, node)

    @staticmethod
    def _raised_class(node: ast.Raise) -> Optional[str]:
        exc = node.exc
        if exc is None:  # bare re-raise
            return None
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = dotted_name(target)
        return name.split(".")[-1] if name else None

    def _check_handler(
        self, src: SourceFile, node: ast.ExceptHandler
    ) -> Iterator[Violation]:
        if node.type is None:
            yield Violation(
                rule=self.rule_id, path=src.rel, line=node.lineno,
                message=(
                    "bare 'except:' swallows every failure including "
                    "typed errors; catch specific exception classes"
                ),
            )
            return
        caught = []
        types = (
            node.type.elts if isinstance(node.type, ast.Tuple)
            else [node.type]
        )
        for type_node in types:
            name = dotted_name(type_node)
            if name and name.split(".")[-1] in _BROAD:
                caught.append(name.split(".")[-1])
        if caught and not self._reraises(node):
            yield Violation(
                rule=self.rule_id, path=src.rel, line=node.lineno,
                message=(
                    f"catches {'/'.join(caught)} without re-raising; "
                    f"catch the specific typed errors instead (or "
                    f"re-raise after handling)"
                ),
            )

    @classmethod
    def _reraises(cls, handler: ast.ExceptHandler) -> bool:
        """True when the handler body contains a bare ``raise`` (nested
        function bodies do not count -- they run later, if ever)."""
        def scan(nodes: Iterable[ast.AST]) -> bool:
            for node in nodes:
                if isinstance(
                    node,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                     ast.ClassDef),
                ):
                    continue
                if isinstance(node, ast.Raise) and node.exc is None:
                    return True
                if scan(ast.iter_child_nodes(node)):
                    return True
            return False

        return scan(handler.body)
