"""REP004 -- argument purity of WFST ops and compiler passes.

Graph operations and compiler passes feed the content-addressed artifact
cache: a pass that mutates its input FST in place corrupts whatever else
holds a reference to that object (the exact ``CompiledWfst.from_fst``
bug PR 5 fixed) and breaks compile-twice bit-identity.  This rule flags
attribute/subscript assignment, deletion, in-place operators and known
mutating method calls whose target chain roots at a function parameter --
including closures that mutate an enclosing function's argument.

Limitations (documented, not silent): rebinding a bare parameter name is
allowed (it cannot affect the caller), and mutation through an alias
(``x = fst; x.start = 0``) is not tracked.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import Project, Rule, SourceFile, Violation

#: Methods that mutate their receiver: stdlib containers, numpy arrays,
#: and this repo's Fst mutator surface.
MUTATING_METHODS = frozenset({
    # containers
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
    "appendleft", "extendleft", "popleft",
    # numpy in-place
    "fill", "itemset", "resize", "put", "byteswap",
    # repro.wfst.fst.Fst mutators
    "add_state", "add_states", "add_arc", "set_start", "set_final",
    "replace_arcs",
})

_SELF_NAMES = frozenset({"self", "cls"})
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _chain_root(node: ast.AST) -> Optional[ast.Name]:
    """The leftmost Name of an Attribute/Subscript chain, if any."""
    depth = 0
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
        depth += 1
    if depth and isinstance(node, ast.Name):
        return node
    return None


class ArgPurityRule(Rule):
    rule_id = "REP004"
    name = "arg-purity"
    rationale = (
        "ops/compiler passes must return new graphs; in-place mutation "
        "of arguments corrupts shared references and cached artifacts"
    )

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config

    def check(self, project: Project) -> Iterable[Violation]:
        for rel in self.config.pure_modules:
            src = project.get(rel)
            if src is not None:
                yield from self._walk(src, src.tree, set())

    # ------------------------------------------------------------------
    def _walk(
        self, src: SourceFile, node: ast.AST, params: Set[str]
    ) -> Iterator[Violation]:
        """Recursive scope-aware walk: entering a function (or lambda)
        adds its parameters to the in-force set, so closures mutating an
        enclosing argument are caught with the right attribution."""
        if isinstance(node, _FUNC_NODES):
            params = params | self._params(node)
        else:
            yield from self._check_node(src, node, params)
        for child in ast.iter_child_nodes(node):
            yield from self._walk(src, child, params)

    @staticmethod
    def _params(func: ast.AST) -> Set[str]:
        args = func.args
        names = [a.arg for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs
        )]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return {n for n in names if n not in _SELF_NAMES}

    def _check_node(
        self, src: SourceFile, node: ast.AST, params: Set[str]
    ) -> Iterator[Violation]:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call):
            yield from self._check_call(src, node, params)
            return

        for target in targets:
            root = _chain_root(target)
            if root is not None and root.id in params:
                yield Violation(
                    rule=self.rule_id, path=src.rel, line=node.lineno,
                    message=(
                        f"mutates argument '{root.id}' via "
                        f"'{ast.unparse(target)}'; ops and compiler "
                        f"passes must build and return new objects"
                    ),
                )

    def _check_call(
        self, src: SourceFile, node: ast.Call, params: Set[str]
    ) -> Iterator[Violation]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            root: Optional[ast.Name]
            if isinstance(func.value, ast.Name):
                root = func.value
            else:
                root = _chain_root(func.value)
            if root is not None and root.id in params:
                yield Violation(
                    rule=self.rule_id, path=src.rel, line=node.lineno,
                    message=(
                        f"calls mutating method '.{func.attr}()' on "
                        f"argument '{root.id}'; copy first or build a "
                        f"new object"
                    ),
                )
        elif (
            isinstance(func, ast.Name)
            and func.id in ("setattr", "delattr")
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in params
        ):
            yield Violation(
                rule=self.rule_id, path=src.rel, line=node.lineno,
                message=(
                    f"calls {func.id}() on argument "
                    f"'{node.args[0].id}'; arguments are read-only here"
                ),
            )
