"""Rule registry: the five invariant rules, built from one config."""

from __future__ import annotations

from typing import Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import Rule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.fingerprint import FingerprintRule
from repro.analysis.rules.purity import ArgPurityRule
from repro.analysis.rules.typed_errors import TypedErrorsRule
from repro.analysis.rules.validation import ValidationCompletenessRule

__all__ = [
    "ArgPurityRule",
    "DeterminismRule",
    "FingerprintRule",
    "TypedErrorsRule",
    "ValidationCompletenessRule",
    "default_rules",
]


def default_rules(config: AnalysisConfig) -> Tuple[Rule, ...]:
    """Every rule, in report order (ids ascending)."""
    return (
        DeterminismRule(config),
        TypedErrorsRule(config),
        FingerprintRule(config),
        ArgPurityRule(config),
        ValidationCompletenessRule(config),
    )
