"""Declarative configuration of the invariant linter.

Everything the rules need to know about *this* repo lives here: which
modules are determinism-critical hot paths, which modules must stay
argument-pure, which dataclasses feed which fingerprint computation, and
which version constants guard which source files.  The configuration is
plain data so tests can point the same rules at fixture mini-trees.

Exemptions are part of the configuration -- visible, justified, reviewed
-- never silent: every ``allow`` entry of a fingerprint pair carries a
written justification, and an empty justification is itself a lint error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple


@dataclass(frozen=True)
class FingerprintSpec:
    """One dataclass whose fields must reach a fingerprint/pricing anchor.

    Attributes:
        cls: ``"relative/path.py::ClassName"`` of the dataclass.
        anchors: where coverage is searched -- either
            ``"relative/path.py::Qualified.name"`` (one function/method)
            or ``"relative/path.py"`` (a whole module); several anchors
            are unioned.
        allow: field -> written justification for fields deliberately
            not reachable from the anchors (e.g. recorded-but-unmodelled
            Table I bookkeeping).  Empty justifications are reported.
    """

    cls: str
    anchors: Tuple[str, ...]
    allow: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class VersionGuardSpec:
    """One version constant guarding a set of fingerprinted sources.

    Any change to the guarded sources without either bumping ``symbol``
    or re-attesting the guard (``tools/run_analysis.py
    --update-version-guard``) is a lint error: it could silently change
    cached-artifact content without moving its content address.
    """

    symbol: str
    module: str  #: file defining ``symbol`` as a module-level int
    guarded: Tuple[str, ...]  #: repo-relative files hashed by the guard


@dataclass(frozen=True)
class AnalysisConfig:
    """Full rule configuration; :meth:`default` matches this repo."""

    scan_paths: Tuple[str, ...] = ("src/repro",)
    #: REP001 scope: the kernel/replay hot paths where any
    #: nondeterminism breaks cross-engine equivalence or trace replay.
    hot_modules: Tuple[str, ...] = (
        "src/repro/decoder/kernel.py",
        "src/repro/decoder/batch.py",
        "src/repro/decoder/session.py",
        "src/repro/decoder/traceback.py",
        "src/repro/decoder/backends/__init__.py",
        "src/repro/decoder/backends/numpy_backend.py",
        "src/repro/decoder/backends/numba_backend.py",
        "src/repro/accel/trace.py",
        "src/repro/accel/replay.py",
        "src/repro/wfst/layout.py",
        # Batched acoustic scoring must be bitwise batch-stable -- any
        # nondeterminism here breaks the features-vs-scores identity
        # the serving paths promise.
        "src/repro/acoustic/dnn.py",
        "src/repro/acoustic/scorer.py",
        "src/repro/acoustic/batch_scorer.py",
        "src/repro/system/score_ring.py",
    )
    #: REP002: the module defining the error taxonomy; every class
    #: defined there is an allowed raise.
    errors_module: str = "src/repro/common/errors.py"
    #: REP004 scope: modules whose functions must not mutate arguments.
    pure_modules: Tuple[str, ...] = (
        "src/repro/wfst/ops.py",
        "src/repro/graph/compiler.py",
    )
    #: REP005 scope: dataclasses with these name suffixes and a
    #: ``__post_init__``/``validate`` method must check every field.
    validated_class_suffixes: Tuple[str, ...] = ("Config", "Recipe")
    fingerprint_specs: Tuple[FingerprintSpec, ...] = ()
    version_guards: Tuple[VersionGuardSpec, ...] = ()
    #: Committed guard state (symbol -> {version, content_hash}).
    version_guard_path: str = "src/repro/analysis/version_guard.json"
    #: Committed baseline of accepted pre-existing violations.
    baseline_path: str = "src/repro/analysis/baseline.json"

    @staticmethod
    def default() -> "AnalysisConfig":
        return AnalysisConfig(
            fingerprint_specs=(
                # Every recipe field must feed the artifact content
                # address, or equal recipes with different compiled
                # output would collide in the graph cache.
                FingerprintSpec(
                    cls="src/repro/graph/recipe.py::GraphRecipe",
                    anchors=(
                        "src/repro/graph/recipe.py::GraphRecipe.fingerprint",
                        "src/repro/graph/recipe.py::GraphRecipe.to_dict",
                    ),
                ),
                # Every hash-table field must be consumed by the replay
                # pricing (or its memo keys): a field that changes
                # replay behaviour without appearing there poisons the
                # per-config memoization.
                FingerprintSpec(
                    cls="src/repro/accel/config.py::HashConfig",
                    anchors=(
                        "src/repro/accel/replay.py",
                        "src/repro/energy/components.py",
                    ),
                ),
                # Accelerator fields must be consumed somewhere in the
                # pricing surface (replay, simulator, stats/seconds
                # conversion, energy/area models, or the sweep runner
                # that maps config fields onto replay inputs); a field
                # none of them reads is a dead knob that sweeps would
                # silently vary to identical results.
                FingerprintSpec(
                    cls="src/repro/accel/config.py::AcceleratorConfig",
                    anchors=(
                        "src/repro/accel/replay.py",
                        "src/repro/accel/simulator.py",
                        "src/repro/accel/stats.py",
                        "src/repro/energy/components.py",
                        "src/repro/energy/cpu_model.py",
                        "src/repro/explore/runner.py",
                    ),
                    allow={
                        "fp_adders": (
                            "Table I bookkeeping: the pipeline model "
                            "abstracts the Likelihood Evaluation Unit "
                            "at one arc/cycle, so LEU adder count is "
                            "recorded (reports, docs) but not priced"
                        ),
                        "fp_comparators": (
                            "Table I bookkeeping: LEU comparator count "
                            "recorded but abstracted by the one-arc-"
                            "per-cycle pipeline model"
                        ),
                        "acoustic_issuer_inflight": (
                            "the double-buffered Acoustic Likelihood "
                            "Buffer hides acoustic-fetch latency "
                            "entirely (paper Section III), so the "
                            "issuer depth cannot change any cycle count"
                        ),
                    },
                ),
            ),
            version_guards=(
                VersionGuardSpec(
                    symbol="COMPILER_VERSION",
                    module="src/repro/graph/recipe.py",
                    guarded=(
                        "src/repro/graph/compiler.py",
                        "src/repro/graph/recipe.py",
                        "src/repro/wfst/epsilon_removal.py",
                        "src/repro/wfst/layout.py",
                        "src/repro/wfst/ops.py",
                        "src/repro/lexicon/lexicon.py",
                        "src/repro/lexicon/lexicon_fst.py",
                        "src/repro/lexicon/phones.py",
                        "src/repro/lm/grammar_fst.py",
                        "src/repro/lm/ngram.py",
                        "src/repro/lm/trigram.py",
                        "src/repro/datasets/corpus.py",
                        "src/repro/datasets/synthetic_graph.py",
                    ),
                ),
                VersionGuardSpec(
                    symbol="TRACE_FORMAT_VERSION",
                    module="src/repro/accel/trace.py",
                    guarded=("src/repro/accel/trace.py",),
                ),
            ),
        )
