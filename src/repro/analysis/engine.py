"""Rule engine: run rules, apply suppressions and baseline, report.

The engine is deliberately small: rules do the reasoning, the engine
handles the bookkeeping every linter needs -- suppression comments, a
committed content-keyed baseline (so adopting a new rule on a large tree
does not require fixing the world atomically), text/JSON output, and the
``--update-version-guard`` / ``--write-baseline`` maintenance verbs.

Exit codes: 0 clean, 1 violations, 2 the analysis itself failed.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import Project, Rule, Violation
from repro.analysis.rules import default_rules
from repro.analysis.rules.fingerprint import compute_guard_state
from repro.common.errors import AnalysisError


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def render_text(self) -> str:
        lines = [v.render() for v in self.violations]
        summary = (
            f"repro-lint: {len(self.violations)} violation(s) in "
            f"{self.files_checked} file(s)"
        )
        if self.suppressed:
            summary += f", {self.suppressed} suppressed"
        if self.baselined:
            summary += f", {self.baselined} baselined"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "violations": [
                    {
                        "rule": v.rule, "path": v.path,
                        "line": v.line, "message": v.message,
                    }
                    for v in self.violations
                ],
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "files_checked": self.files_checked,
                "rules_run": list(self.rules_run),
            },
            indent=2,
        )


def _load_baseline(path: Path) -> Set[Tuple[str, str, str]]:
    if not path.is_file():
        return set()
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"corrupt baseline {path}: {exc}") from exc
    if not isinstance(entries, list):
        raise AnalysisError(f"corrupt baseline {path}: not a list")
    baseline: Set[Tuple[str, str, str]] = set()
    for entry in entries:
        try:
            baseline.add((entry["rule"], entry["path"], entry["message"]))
        except (TypeError, KeyError) as exc:
            raise AnalysisError(
                f"corrupt baseline {path}: entry {entry!r}"
            ) from exc
    return baseline


def _write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    entries = sorted(
        (
            {"rule": v.rule, "path": v.path, "message": v.message}
            for v in violations
        ),
        key=lambda e: (e["rule"], e["path"], e["message"]),
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(entries, indent=2) + "\n", encoding="utf-8"
    )


def run_analysis(
    root: Path,
    paths: Optional[Sequence[str]] = None,
    config: Optional[AnalysisConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    use_baseline: bool = True,
) -> AnalysisReport:
    """Run every rule over the tree at ``root`` and post-process.

    ``paths`` narrows *per-file* rules to the listed files (cross-file
    rules like REP003 still see the whole tree -- a fingerprint hole is
    a project property, not a file property).
    """
    config = config or AnalysisConfig.default()
    rules = list(rules) if rules is not None else default_rules(config)
    project = Project(root, config.scan_paths, limit_to=paths)
    baseline = (
        _load_baseline(Path(root) / config.baseline_path)
        if use_baseline else set()
    )

    report = AnalysisReport(rules_run=tuple(r.rule_id for r in rules))
    raw: List[Violation] = []
    for rule in rules:
        raw.extend(rule.check(project))

    seen: Set[Tuple[str, str, int, str]] = set()
    for violation in sorted(
        raw, key=lambda v: (v.path, v.line, v.rule, v.message)
    ):
        dedup = (violation.rule, violation.path, violation.line,
                 violation.message)
        if dedup in seen:
            continue
        seen.add(dedup)
        src = project.get(violation.path)
        if src is not None and src.suppressed(violation):
            report.suppressed += 1
            continue
        if violation.key() in baseline:
            report.baselined += 1
            continue
        report.violations.append(violation)

    report.files_checked = sum(1 for _ in project.files())
    return report


def update_version_guard(root: Path, config: AnalysisConfig) -> Path:
    """Recompute and write the committed version-guard state."""
    state = compute_guard_state(Path(root), config.version_guards)
    path = Path(root) / config.version_guard_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(state, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*",
        help="limit per-file rules to these files (default: whole tree)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report baselined violations too",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current violations into the baseline file",
    )
    parser.add_argument(
        "--update-version-guard", action="store_true",
        help=(
            "re-attest the version guard: record current versions and "
            "source hashes (use after bumping a version constant, or "
            "when a guarded change provably cannot alter output)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def run_from_options(options: argparse.Namespace) -> int:
    config = AnalysisConfig.default()
    root = Path(options.root).resolve()

    if options.list_rules:
        for rule in default_rules(config):
            print(f"{rule.rule_id}  {rule.name}: {rule.rationale}")
        return 0

    if options.update_version_guard:
        path = update_version_guard(root, config)
        print(f"repro-lint: wrote {path.relative_to(root)}")

    try:
        report = run_analysis(
            root,
            paths=options.paths or None,
            config=config,
            use_baseline=not options.no_baseline,
        )
    except AnalysisError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if options.write_baseline:
        path = Path(root) / config.baseline_path
        _write_baseline(path, report.violations)
        print(
            f"repro-lint: wrote {len(report.violations)} entr"
            f"{'y' if len(report.violations) == 1 else 'ies'} to "
            f"{config.baseline_path}"
        )
        return 0

    if options.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="invariant linter for the repro codebase",
    )
    add_arguments(parser)
    return run_from_options(parser.parse_args(argv))


if __name__ == "__main__":
    # CLI exit status, not a library failure.
    raise SystemExit(main())  # repro-lint: disable=REP002
