"""Content-addressed artifact cache: compile once, load bit-exact forever.

Every :class:`~repro.graph.recipe.GraphRecipe` fingerprints to a stable
content address (recipe fields + compiler version), and :class:`GraphCache`
stores the compiled artifact under it -- in memory always, and as a
versioned ``.npz`` graph bundle (:func:`repro.wfst.io.save_graph_bundle`)
when a directory is configured.  Properties:

* within a process, every consumer of the same recipe shares one compile;
* across processes/runs, a disk directory makes compilation a one-time
  cost per recipe (``benchmarks/bench_graph_compile.py`` gates the warm
  load at >= 5x a cold compile);
* invalidation is automatic: any recipe or compiler-version change moves
  the address, and stale files are simply never addressed again (the
  directory can be deleted at any time; bundles additionally embed a
  format version, so archives from an incompatible schema are re-compiled
  rather than misread).
"""

from __future__ import annotations

import os
import tempfile
import zipfile
from typing import Dict, Optional

from repro.common.errors import GraphError
from repro.graph.compiler import GraphArtifact, GraphCompiler, PassStats
from repro.graph.recipe import GraphRecipe
from repro.wfst.io import load_graph_bundle, save_graph_bundle, save_graph_mmap

#: Default on-disk artifact store of the CLI commands (content-addressed;
#: safe to delete at any time -- see docs/ARCHITECTURE.md).
DEFAULT_GRAPH_CACHE = os.path.join(
    os.path.expanduser("~"), ".cache", "repro-asr", "graphs"
)


class GraphCache:
    """In-memory (and optionally on-disk) store of compiled graph artifacts.

    Args:
        directory: optional directory for persistent bundle files.
            Created on first write.  ``None`` keeps artifacts in memory
            only.
        compiler: the compiler used on a miss (defaults to a fresh
            :class:`GraphCompiler`).
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        compiler: Optional[GraphCompiler] = None,
    ) -> None:
        self.directory = (
            os.path.expanduser(directory) if directory is not None else None
        )
        self.compiler = compiler or GraphCompiler()
        self._memory: Dict[str, GraphArtifact] = {}
        self._tmp_root: Optional[str] = None
        self.compiles = 0  #: pipelines actually executed
        self.hits = 0      #: lookups satisfied without compiling

    def get(self, recipe: GraphRecipe) -> GraphArtifact:
        """The artifact for ``recipe``: memory hit, disk hit, or compile."""
        key = recipe.fingerprint()
        cached = self._memory.get(key)
        if cached is not None:
            self.hits += 1
            return cached

        artifact = self._load_from_disk(recipe, key)
        if artifact is not None:
            self.hits += 1
        else:
            artifact = self.compiler.compile(recipe)
            self.compiles += 1
            self._store_to_disk(artifact)
        self._memory[key] = artifact
        return artifact

    def mmap_dir(self, recipe: GraphRecipe) -> str:
        """The mmap layout directory for ``recipe``'s artifact.

        Compiles (or cache-loads) the artifact, then materialises it as an
        uncompressed ``.npy`` directory (:func:`repro.wfst.io.save_graph_mmap`)
        under the same content address, so every serving-tier worker can
        memory-map one shared copy of the graph.  A memory-only cache
        materialises into a per-cache temporary directory instead.
        """
        artifact = self.get(recipe)
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            root = self.directory
        else:
            if self._tmp_root is None:
                self._tmp_root = tempfile.mkdtemp(prefix="repro-graph-mmap-")
            root = self._tmp_root
        return save_graph_mmap(
            artifact.graph,
            os.path.join(root, f"{artifact.fingerprint}.graph.mmap"),
            fingerprint=artifact.graph.fingerprint(),
        )

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.graph.npz")

    def _load_from_disk(
        self, recipe: GraphRecipe, key: str
    ) -> Optional[GraphArtifact]:
        if self.directory is None:
            return None
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            graph, meta = load_graph_bundle(path)
        except (GraphError, OSError, KeyError, ValueError,
                zipfile.BadZipFile, EOFError):
            # Stale schema or a torn write (np.load raises BadZipFile for
            # a truncated archive, EOFError for an empty one): fall back
            # to re-compiling.
            return None
        return GraphArtifact(
            recipe=recipe,
            fingerprint=key,
            graph=graph,
            passes=tuple(
                PassStats.from_dict(p) for p in meta.get("passes", [])
            ),
            compile_seconds=0.0,
            source="disk",
        )

    def _store_to_disk(self, artifact: GraphArtifact) -> None:
        if self.directory is None:
            return
        os.makedirs(self.directory, exist_ok=True)
        # Write-then-rename so an interrupted or concurrent store never
        # leaves a torn file at a valid content address.
        path = self._path(artifact.fingerprint)
        tmp = f"{path}.{os.getpid()}.tmp.npz"
        save_graph_bundle(
            artifact.graph,
            tmp,
            fingerprint=artifact.graph.fingerprint(),
            recipe=artifact.recipe.to_dict(),
            passes=[p.to_dict() for p in artifact.passes],
        )
        os.replace(tmp, path)


def compile_graph(
    recipe: GraphRecipe, cache: Optional[GraphCache] = None
) -> GraphArtifact:
    """Compile ``recipe``, through ``cache`` when one is supplied.

    The single entry point every graph consumer (tasks, benches, sweeps,
    the CLI) goes through.
    """
    if cache is not None:
        return cache.get(recipe)
    return GraphCompiler().compile(recipe)
