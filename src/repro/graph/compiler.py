"""The staged graph compiler: recipe in, packed artifact out.

The paper compiles its decoding WFST *offline* into the packed binary
layout the accelerator walks (Section III); this module is that offline
compiler.  A :class:`GraphCompiler` executes a
:class:`~repro.graph.recipe.GraphRecipe` as an explicit pass pipeline --

    lexicon -> grammar -> compose -> epsilon (check or removal)
            -> arcsort -> pack

for composed recipes, or a single ``synthesize`` pass for synthetic ones
-- recording per-pass statistics (states/arcs/epsilon-arcs in and out,
wall time) in :class:`PassStats`.  The result is a :class:`GraphArtifact`:
the packed :class:`~repro.wfst.layout.CompiledWfst` plus provenance, with
the :class:`~repro.wfst.layout.FlatLayout` and Section IV-B
:class:`~repro.wfst.sorted_layout.SortedWfst` views derived on demand.

Artifacts are content-addressed by the recipe fingerprint; see
:mod:`repro.graph.cache` for the compile-once / load-bit-exact store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.datasets.corpus import CorpusConfig, generate_corpus
from repro.datasets.synthetic_graph import generate_kaldi_like_graph
from repro.graph.recipe import GraphRecipe
from repro.lexicon.lexicon import Lexicon, generate_lexicon
from repro.lexicon.lexicon_fst import build_lexicon_fst
from repro.lm.grammar_fst import build_grammar_fst
from repro.lm.ngram import NGramModel, train_ngram
from repro.lm.trigram import TrigramModel, build_trigram_fst, train_trigram
from repro.wfst.epsilon_removal import remove_epsilons
from repro.wfst.fst import EPSILON, Fst
from repro.wfst.layout import CompiledWfst, FlatLayout
from repro.wfst.ops import arcsort, check_epsilon_acyclic, compose
from repro.wfst.sorted_layout import SortedWfst, sort_states_by_arc_count


@dataclass(frozen=True)
class PassStats:
    """Size and timing bookkeeping of one compiler pass."""

    name: str
    states_in: int
    arcs_in: int
    eps_in: int
    states_out: int
    arcs_out: int
    eps_out: int
    seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "states_in": self.states_in,
            "arcs_in": self.arcs_in,
            "eps_in": self.eps_in,
            "states_out": self.states_out,
            "arcs_out": self.arcs_out,
            "eps_out": self.eps_out,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PassStats":
        return cls(**payload)


def _shape(graph: Union[Fst, CompiledWfst, None]) -> Tuple[int, int, int]:
    """``(states, arcs, epsilon_arcs)`` of either graph representation."""
    if graph is None:
        return (0, 0, 0)
    if isinstance(graph, CompiledWfst):
        eps = int((graph.arc_ilabel == EPSILON).sum())
        return (graph.num_states, graph.num_arcs, eps)
    return (graph.num_states, graph.num_arcs, graph.num_epsilon_arcs())


@dataclass
class GraphArtifact:
    """A compiled decoding graph with its provenance.

    Attributes:
        recipe: the recipe that produced (or addresses) the graph.
        fingerprint: the recipe fingerprint -- the artifact's content
            address in the cache.
        graph: the packed graph.
        passes: per-pass statistics of the compile that built the graph
            (preserved through the on-disk cache).
        compile_seconds: wall time of that compile.
        source: where this instance came from: ``"compiled"``,
            ``"memory"`` (cache hit) or ``"disk"`` (bundle load).
        lexicon / lm / corpus: the intermediate models and training
            corpus of a *fresh* composed compile; ``None`` after a cache
            load (consumers that need them regenerate deterministically
            from the recipe seed).
    """

    recipe: GraphRecipe
    fingerprint: str
    graph: CompiledWfst
    passes: Tuple[PassStats, ...]
    compile_seconds: float
    source: str = "compiled"
    lexicon: Optional[Lexicon] = None
    lm: Optional[Union[NGramModel, TrigramModel]] = None
    corpus: Optional[List[List[int]]] = None
    _sorted: Optional[SortedWfst] = field(default=None, repr=False)

    def flat(self) -> FlatLayout:
        """The Structure-of-Arrays decode view (lazily built, shared)."""
        return self.graph.flat()

    def sorted_graph(
        self, max_direct_arcs: Optional[int] = None
    ) -> SortedWfst:
        """The Section IV-B arc-count-sorted layout (memoized)."""
        if self._sorted is None or (
            max_direct_arcs is not None
            and self._sorted.tables.max_direct_arcs != max_direct_arcs
        ):
            kwargs = (
                {} if max_direct_arcs is None
                else {"max_direct_arcs": max_direct_arcs}
            )
            self._sorted = sort_states_by_arc_count(self.graph, **kwargs)
        return self._sorted

    def report(self) -> str:
        """An aligned per-pass table for logs and the CLI."""
        header = ("pass", "states", "arcs", "eps", "ms")
        rows: List[Tuple[str, ...]] = []
        for p in self.passes:
            rows.append((
                p.name,
                f"{p.states_in} -> {p.states_out}",
                f"{p.arcs_in} -> {p.arcs_out}",
                f"{p.eps_in} -> {p.eps_out}",
                f"{p.seconds * 1e3:.1f}",
            ))
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows
            else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        lines.append(
            f"artifact {self.fingerprint} "
            f"({self.recipe.describe()}, {self.source}, "
            f"{self.compile_seconds * 1e3:.1f} ms)"
        )
        return "\n".join(lines)


class GraphCompiler:
    """Executes recipes as staged pass pipelines."""

    def compile(self, recipe: GraphRecipe) -> GraphArtifact:
        """Compile ``recipe`` from scratch (no cache involved)."""
        t0 = time.perf_counter()
        passes: List[PassStats] = []

        def run(
            name: str,
            func: Callable[[], Union[Fst, CompiledWfst]],
            before: Union[Fst, CompiledWfst, None],
        ) -> Union[Fst, CompiledWfst]:
            states_in, arcs_in, eps_in = _shape(before)
            t = time.perf_counter()
            result = func()
            seconds = time.perf_counter() - t
            out = result if result is not None else before
            states_out, arcs_out, eps_out = _shape(out)
            passes.append(PassStats(
                name, states_in, arcs_in, eps_in,
                states_out, arcs_out, eps_out, seconds,
            ))
            return out

        lexicon: Optional[Lexicon] = None
        lm: Optional[Union[NGramModel, TrigramModel]] = None
        corpus: Optional[List[List[int]]] = None

        if recipe.kind == "synthetic":
            graph = run(
                "synthesize",
                lambda: generate_kaldi_like_graph(recipe.synthetic),
                None,
            )
        else:
            def build_lexicon() -> Fst:
                nonlocal lexicon
                lexicon = generate_lexicon(
                    recipe.vocab_size, seed=recipe.seed
                )
                return build_lexicon_fst(
                    lexicon, silence_prob=recipe.silence_prob
                )

            def build_grammar() -> Fst:
                nonlocal lm, corpus
                corpus = generate_corpus(CorpusConfig(
                    vocab_size=recipe.vocab_size,
                    num_sentences=recipe.corpus_sentences,
                    seed=recipe.seed,
                ))
                if recipe.lm_order == 3:
                    lm = train_trigram(corpus, recipe.vocab_size)
                    return build_trigram_fst(lm)
                lm = train_ngram(corpus, recipe.vocab_size)
                return build_grammar_fst(lm)

            lexicon_fst = run("lexicon", build_lexicon, None)
            grammar_fst = run("grammar", build_grammar, None)
            composed = run(
                "compose",
                lambda: compose(lexicon_fst, grammar_fst),
                lexicon_fst,
            )
            if recipe.remove_epsilons:
                composed = run(
                    "remove-epsilons",
                    lambda: remove_epsilons(composed),
                    composed,
                )
            else:
                composed = run(
                    "epsilon-check",
                    lambda: check_epsilon_acyclic(composed),
                    composed,
                )
            if recipe.arcsort:
                composed = run(
                    "arcsort", lambda: arcsort(composed), composed
                )
            # Arc order is already final (sorted or intentionally raw), so
            # packing only partitions non-epsilon arcs first.
            graph = run(
                "pack",
                lambda: CompiledWfst.from_fst(composed, arcsort=False),
                composed,
            )

        return GraphArtifact(
            recipe=recipe,
            fingerprint=recipe.fingerprint(),
            graph=graph,
            passes=tuple(passes),
            compile_seconds=time.perf_counter() - t0,
            source="compiled",
            lexicon=lexicon,
            lm=lm,
            corpus=corpus,
        )
