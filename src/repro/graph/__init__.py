"""Staged graph compiler with a content-addressed artifact cache.

The paper's accelerator walks a decoding WFST compiled *offline* into a
packed binary layout (Section III).  This subpackage is that offline
compiler, factored the way the rest of the repo factors hot paths -- one
shared engine under every consumer:

* :mod:`repro.graph.recipe` -- declarative :class:`GraphRecipe`
  (lexicon/LM sources, composition, optional epsilon removal and arc
  sorting) with a stable content fingerprint;
* :mod:`repro.graph.compiler` -- :class:`GraphCompiler`, an explicit pass
  pipeline (lexicon -> grammar -> compose -> epsilon -> arcsort -> pack)
  with per-pass statistics, producing a :class:`GraphArtifact`;
* :mod:`repro.graph.cache` -- :class:`GraphCache`, the content-addressed
  in-memory/on-disk artifact store behind :func:`compile_graph`.

Tasks (:mod:`repro.datasets.task`), memory-system workloads
(:mod:`repro.system.experiment`), the benchmark suite and the
``repro compile`` CLI all build their graphs through
:func:`compile_graph`, so any graph variant compiles once per machine and
loads bit-exact thereafter.
"""

from repro.graph.cache import DEFAULT_GRAPH_CACHE, GraphCache, compile_graph
from repro.graph.compiler import GraphArtifact, GraphCompiler, PassStats
from repro.graph.recipe import COMPILER_VERSION, GraphRecipe

__all__ = [
    "COMPILER_VERSION",
    "GraphRecipe",
    "GraphCompiler",
    "GraphArtifact",
    "PassStats",
    "GraphCache",
    "DEFAULT_GRAPH_CACHE",
    "compile_graph",
]
