"""Declarative recipes for decoding-graph compilation.

A :class:`GraphRecipe` captures *everything* that determines the packed
decoding graph the accelerator walks (paper, Section III): the lexicon and
LM sources, the composition, and the optional normalisation passes
(epsilon removal, arc sorting).  Recipes are plain frozen dataclasses, so
two equal recipes always compile to bit-identical graphs, and
:meth:`GraphRecipe.fingerprint` gives the content address under which the
compiled artifact is cached (:mod:`repro.graph.cache`).

Two kinds of recipe exist, mirroring the two graph sources the repo uses:

* ``composed`` -- the paper's L ∘ G construction: a generated lexicon
  (:mod:`repro.lexicon`), a bigram or trigram LM trained on a synthetic
  corpus (:mod:`repro.lm`), composed, connected, optionally
  epsilon-removed, arc-sorted and packed.
* ``synthetic`` -- a Kaldi-statistics random graph
  (:mod:`repro.datasets.synthetic_graph`) for memory-system experiments
  at scales composition cannot reach in pure Python.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, fields
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - circular at runtime only
    from repro.datasets.task import TaskConfig

from repro.common.errors import ConfigError
from repro.datasets.synthetic_graph import SyntheticGraphConfig

#: Bumped whenever the compiler's output for an unchanged recipe could
#: change (pass semantics, packing order, ...); part of every fingerprint
#: so stale cached artifacts are never addressed again.
COMPILER_VERSION = 1

_LM_ORDERS = (2, 3)


@dataclass(frozen=True)
class GraphRecipe:
    """A declarative description of one compiled decoding graph.

    Attributes:
        kind: ``"composed"`` (lexicon ∘ LM) or ``"synthetic"``.
        vocab_size / corpus_sentences / lm_order / silence_prob / seed:
            the composed-graph source parameters (ignored for synthetic
            recipes).  ``lm_order`` selects the bigram (2) or trigram (3)
            grammar transducer.
        remove_epsilons: fold output-free epsilon arcs after composition
            (trades graph size for epsilon-pass pipeline work -- the
            ablation of ``bench_ablation_epsilon_removal``).
        arcsort: pack arcs in the canonical sorted order (non-epsilon
            first, then input label).  ``False`` keeps construction order,
            only partitioned non-epsilon-first as the layout requires.
        synthetic: the :class:`SyntheticGraphConfig` of a synthetic
            recipe (required iff ``kind == "synthetic"``).
    """

    kind: str = "composed"
    vocab_size: int = 500
    corpus_sentences: int = 2000
    lm_order: int = 2
    silence_prob: float = 0.2
    seed: int = 0
    remove_epsilons: bool = False
    arcsort: bool = True
    synthetic: Optional[SyntheticGraphConfig] = field(default=None)

    def __post_init__(self) -> None:
        if self.kind not in ("composed", "synthetic"):
            raise ConfigError(f"unknown recipe kind {self.kind!r}")
        if self.kind == "synthetic":
            if self.synthetic is None:
                raise ConfigError(
                    "synthetic recipes need a SyntheticGraphConfig"
                )
            if self.remove_epsilons:
                raise ConfigError(
                    "epsilon removal applies to composed recipes only "
                    "(synthetic graphs are generated pre-packed)"
                )
        else:
            if self.synthetic is not None:
                raise ConfigError(
                    "composed recipes must not carry a synthetic config"
                )
            if self.lm_order not in _LM_ORDERS:
                raise ConfigError(
                    f"lm_order must be one of {_LM_ORDERS}, "
                    f"got {self.lm_order}"
                )
            if self.vocab_size < 2:
                raise ConfigError("vocab_size must be >= 2")
            if self.corpus_sentences < 1:
                raise ConfigError("corpus_sentences must be >= 1")
            if not 0.0 <= self.silence_prob < 1.0:
                raise ConfigError("silence_prob must be in [0, 1)")
        if self.seed < 0:
            raise ConfigError("seed must be non-negative")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def composed(cls, **kwargs: Any) -> "GraphRecipe":
        return cls(kind="composed", **kwargs)

    @classmethod
    def synthetic_graph(
        cls, config: SyntheticGraphConfig, arcsort: bool = True
    ) -> "GraphRecipe":
        return cls(kind="synthetic", synthetic=config, arcsort=arcsort)

    @classmethod
    def from_task_config(cls, config: "TaskConfig") -> "GraphRecipe":
        """The recipe of a :class:`repro.datasets.task.TaskConfig`'s graph."""
        return cls(
            kind="composed",
            vocab_size=config.vocab_size,
            corpus_sentences=config.corpus_sentences,
            lm_order=config.lm_order,
            silence_prob=config.silence_prob,
            seed=config.seed,
            remove_epsilons=config.remove_epsilons,
            arcsort=config.arcsort,
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable field dict (nested configs expanded)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "GraphRecipe":
        payload = dict(payload)
        synthetic = payload.pop("synthetic", None)
        if synthetic is not None:
            synthetic = SyntheticGraphConfig(**synthetic)
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown recipe fields: {sorted(unknown)}")
        return cls(synthetic=synthetic, **payload)

    def fingerprint(self) -> str:
        """Content address of the compiled artifact (32 hex chars).

        Hashes every recipe field plus :data:`COMPILER_VERSION` in a
        canonical order, so any change to the recipe *or* to compiler
        semantics changes the address and the cache re-compiles instead of
        serving a stale artifact.
        """
        h = hashlib.sha256()
        h.update(f"compiler-v{COMPILER_VERSION}".encode())
        for key, value in sorted(_flatten(self.to_dict()).items()):
            h.update(f"|{key}={value!r}".encode())
        return h.hexdigest()[:32]

    def describe(self) -> str:
        """A short human-readable label for logs and reports."""
        if self.kind == "synthetic":
            cfg = self.synthetic
            return (
                f"synthetic(states={cfg.num_states}, "
                f"phones={cfg.num_phones}, seed={cfg.seed})"
            )
        extras = []
        if self.remove_epsilons:
            extras.append("eps-free")
        if not self.arcsort:
            extras.append("unsorted")
        suffix = f", {','.join(extras)}" if extras else ""
        return (
            f"composed(vocab={self.vocab_size}, lm={self.lm_order}-gram, "
            f"seed={self.seed}{suffix})"
        )


def _flatten(payload: Dict[str, Any], prefix: str = "") -> Dict[str, object]:
    flat: Dict[str, object] = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{name}."))
        else:
            flat[name] = value
    return flat
