"""Synthetic text corpora (training data for the Section II language
model, standing in for the paper's Section V Kaldi setup).

Sentences are drawn from a hidden Markov chain over the vocabulary whose
unigram marginals follow a Zipf law -- matching the statistical texture of
real text closely enough that the trained bigram LM has the skewed fan-out
the grammar FST (and thus the decoding graph's out-degree distribution)
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng


@dataclass(frozen=True)
class CorpusConfig:
    """Corpus generation parameters."""

    vocab_size: int
    num_sentences: int
    mean_sentence_len: int = 8
    zipf_exponent: float = 1.1
    branching: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ConfigError("vocab_size must be >= 2")
        if self.num_sentences < 1:
            raise ConfigError("num_sentences must be >= 1")
        if self.mean_sentence_len < 1:
            raise ConfigError("mean_sentence_len must be >= 1")
        if self.branching < 1:
            raise ConfigError("branching must be >= 1")
        if self.zipf_exponent <= 0.0:
            raise ConfigError("zipf_exponent must be positive")
        if self.seed < 0:
            raise ConfigError("seed must be non-negative")


def generate_corpus(config: CorpusConfig) -> List[List[int]]:
    """Generate sentences of word ids in ``1..vocab_size``.

    Each word is given a sparse successor set (``branching`` candidates)
    with Zipf-weighted global popularity, and sentences are random walks
    over that chain.
    """
    rng = make_rng(config.seed, "corpus")
    v = config.vocab_size

    ranks = np.arange(1, v + 1, dtype=np.float64)
    zipf = ranks ** (-config.zipf_exponent)
    zipf /= zipf.sum()

    # Sparse successor sets: per word, `branching` successors sampled by
    # popularity, with transition probabilities re-normalised.
    branching = min(config.branching, v)
    successors = np.zeros((v + 1, branching), dtype=np.int64)
    succ_probs = np.zeros((v + 1, branching), dtype=np.float64)
    for w in range(v + 1):  # row 0 doubles as the sentence-start history
        cand = rng.choice(v, size=branching, replace=False, p=zipf) + 1
        weights = zipf[cand - 1] * rng.uniform(0.5, 1.5, size=branching)
        successors[w] = cand
        succ_probs[w] = weights / weights.sum()

    stop_prob = 1.0 / config.mean_sentence_len
    sentences: List[List[int]] = []
    for _ in range(config.num_sentences):
        sentence: List[int] = []
        history = 0
        while True:
            word = int(
                successors[history][
                    rng.choice(branching, p=succ_probs[history])
                ]
            )
            sentence.append(word)
            history = word
            if len(sentence) >= 1 and rng.random() < stop_prob:
                break
            if len(sentence) >= 4 * config.mean_sentence_len:
                break
        sentences.append(sentence)
    return sentences
