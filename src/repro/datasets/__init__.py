"""Synthetic dataset generation (stand-in for the paper's Section V
evaluation setup: Kaldi's 13.7M-state English WFST and Librispeech audio).

Provides everything the evaluation needs in place of the paper's
proprietary data:

* :mod:`repro.datasets.corpus` -- Zipf-distributed Markov text corpora.
* :mod:`repro.datasets.task` -- full ASR tasks: lexicon + LM + composed
  decoding graph + aligned test utterances with acoustic scores.
* :mod:`repro.datasets.synthetic_graph` -- large random decoding graphs with
  the published Kaldi graph statistics (arc/state ratio, out-degree skew,
  epsilon fraction) for memory-system experiments at scale.
"""

from repro.datasets.corpus import CorpusConfig, generate_corpus
from repro.datasets.task import AsrTask, TaskConfig, Utterance, generate_task
from repro.datasets.audio_task import (
    AudioTask,
    AudioTaskConfig,
    generate_audio_task,
)
from repro.datasets.synthetic_graph import (
    SyntheticGraphConfig,
    generate_kaldi_like_graph,
)

__all__ = [
    "CorpusConfig",
    "generate_corpus",
    "AsrTask",
    "TaskConfig",
    "Utterance",
    "generate_task",
    "SyntheticGraphConfig",
    "generate_kaldi_like_graph",
    "AudioTask",
    "AudioTaskConfig",
    "generate_audio_task",
]
