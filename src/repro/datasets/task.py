"""End-to-end ASR task generation (a scaled synthetic counterpart of the
paper's Section V evaluation setup, with ground truth for WER).

A *task* bundles everything one evaluation run needs: the lexicon, the
trained LM, the composed and compiled decoding graph (L ∘ G), and a set of
test utterances with ground-truth transcripts, phone alignments and
acoustic score matrices.  The graph itself is built by the staged graph
compiler (:mod:`repro.graph`): :class:`TaskConfig`'s graph axes
(``lm_order``, ``remove_epsilons``, ``arcsort``) map onto a
:class:`~repro.graph.recipe.GraphRecipe`, and passing a
:class:`~repro.graph.cache.GraphCache` makes repeated task generation a
cache hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.acoustic.scorer import AcousticScores, SyntheticScorer
from repro.datasets.corpus import CorpusConfig, generate_corpus
from repro.frontend.audio import PhoneAlignment
from repro.lexicon.lexicon import Lexicon, generate_lexicon
from repro.lm.ngram import NGramModel, train_ngram
from repro.lm.trigram import TrigramModel, train_trigram
from repro.wfst.layout import CompiledWfst


@dataclass(frozen=True)
class Utterance:
    """One test utterance with ground truth and acoustic scores.

    Audio-backed tasks (:func:`repro.datasets.audio_task.generate_audio_task`)
    also keep the spliced MFCC ``features`` the scores were computed
    from, so feature-mode serving paths (``push_features``) can replay
    the exact front-end output; synthetic tasks leave it ``None``.
    """

    words: Tuple[int, ...]
    alignment: PhoneAlignment
    scores: AcousticScores
    features: Optional[np.ndarray] = None

    @property
    def num_frames(self) -> int:
        return self.scores.num_frames

    @property
    def duration_seconds(self) -> float:
        """Speech duration assuming the standard 10 ms frame hop."""
        return self.num_frames * 0.01


@dataclass(frozen=True)
class TaskConfig:
    """Parameters of a generated ASR task.

    ``lm_order`` / ``remove_epsilons`` / ``arcsort`` are the graph-recipe
    axes: they select the grammar transducer order (bigram or trigram) and
    the optional normalisation passes of the staged graph compiler.
    """

    vocab_size: int = 500
    corpus_sentences: int = 2000
    num_utterances: int = 10
    utterance_words: int = 6
    mean_frames_per_phone: int = 6
    silence_prob: float = 0.2
    score_separation: float = 4.0
    score_noise: float = 1.5
    seed: int = 0
    lm_order: int = 2
    remove_epsilons: bool = False
    arcsort: bool = True

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ConfigError("vocab_size must be >= 2")
        if self.num_utterances < 1:
            raise ConfigError("num_utterances must be >= 1")
        if self.utterance_words < 1:
            raise ConfigError("utterance_words must be >= 1")
        if self.lm_order not in (2, 3):
            raise ConfigError("lm_order must be 2 (bigram) or 3 (trigram)")
        if self.corpus_sentences < 1:
            raise ConfigError("corpus_sentences must be >= 1")
        if self.mean_frames_per_phone < 1:
            raise ConfigError("mean_frames_per_phone must be >= 1")
        if not 0.0 <= self.silence_prob < 1.0:
            raise ConfigError("silence_prob must be in [0, 1)")
        if self.score_separation <= 0.0:
            raise ConfigError("score_separation must be positive")
        if self.score_noise < 0.0:
            raise ConfigError("score_noise must be >= 0")
        if self.seed < 0:
            raise ConfigError("seed must be non-negative")


@dataclass
class AsrTask:
    """A complete decoding task."""

    config: TaskConfig
    lexicon: Lexicon
    lm: Union[NGramModel, TrigramModel]
    graph: CompiledWfst
    utterances: List[Utterance]
    #: Provenance of the decoding graph (recipe, pass stats, fingerprint).
    artifact: Optional["GraphArtifact"] = None

    @property
    def num_phones(self) -> int:
        return self.lexicon.phones.num_phones

    def transcript(self, utt: Utterance) -> List[str]:
        return [self.lexicon.word_of(w) for w in utt.words]


def generate_task(
    config: TaskConfig = TaskConfig(),
    graph_cache: Optional["GraphCache"] = None,
    graph: Optional[CompiledWfst] = None,
) -> AsrTask:
    """Generate a full ASR task deterministically from ``config.seed``.

    The decoding graph comes from the staged graph compiler
    (:func:`repro.graph.compile_graph`); pass ``graph_cache`` to reuse
    compiled artifacts across tasks, processes and runs, or ``graph`` to
    skip compilation entirely and decode a pre-compiled graph (it must
    stem from the same recipe for meaningful WER).
    """
    artifact = None
    if graph is None:
        from repro.graph import GraphRecipe, compile_graph

        recipe = GraphRecipe.from_task_config(config)
        artifact = compile_graph(recipe, cache=graph_cache)
        graph = artifact.graph

    # A fresh compile hands back its intermediate lexicon/LM/corpus; a
    # cache hit (or a supplied graph) regenerates them, deterministic
    # from the seed and cheap next to composition.
    lexicon = artifact.lexicon if artifact is not None else None
    if lexicon is None:
        lexicon = generate_lexicon(config.vocab_size, seed=config.seed)
    corpus = artifact.corpus if artifact is not None else None
    if corpus is None:
        corpus = generate_corpus(
            CorpusConfig(
                vocab_size=config.vocab_size,
                num_sentences=config.corpus_sentences,
                seed=config.seed,
            )
        )
    lm = artifact.lm if artifact is not None else None
    if lm is None:
        lm = (
            train_trigram(corpus, config.vocab_size)
            if config.lm_order == 3
            else train_ngram(corpus, config.vocab_size)
        )

    utterances = _generate_utterances(config, lexicon, corpus)
    return AsrTask(config, lexicon, lm, graph, utterances, artifact)


def _generate_utterances(
    config: TaskConfig,
    lexicon: Lexicon,
    corpus: Sequence[Sequence[int]],
) -> List[Utterance]:
    """Draw test sentences from the corpus distribution and score them."""
    rng = make_rng(config.seed, "utterances")
    scorer = SyntheticScorer(
        num_phones=lexicon.phones.num_phones,
        separation=config.score_separation,
        noise=config.score_noise,
        seed=config.seed,
    )
    sil = lexicon.phones.silence_id

    utterances: List[Utterance] = []
    for utt_id in range(config.num_utterances):
        # Reuse corpus sentences so the test set matches the LM.
        sentence = list(corpus[int(rng.integers(0, len(corpus)))])
        words = tuple(sentence[: config.utterance_words])
        if not words:
            words = (int(rng.integers(1, config.vocab_size + 1)),)

        phones: List[int] = []
        for w in words:
            if config.silence_prob > 0 and rng.random() < config.silence_prob:
                phones.append(sil)
            phones.extend(lexicon.pronunciation(w))

        durations = [
            3 + int(rng.poisson(max(config.mean_frames_per_phone - 3, 0)))
            for _ in phones
        ]
        alignment = PhoneAlignment(tuple(phones), tuple(durations))
        scores = scorer.score(alignment, utterance_id=utt_id)
        utterances.append(Utterance(words, alignment, scores))
    return utterances
