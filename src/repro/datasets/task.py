"""End-to-end ASR task generation (a scaled synthetic counterpart of the
paper's Section V evaluation setup, with ground truth for WER).

A *task* bundles everything one evaluation run needs: the lexicon, the
trained bigram LM, the composed and compiled decoding graph (L ∘ G), and a
set of test utterances with ground-truth transcripts, phone alignments and
acoustic score matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.acoustic.scorer import AcousticScores, SyntheticScorer
from repro.datasets.corpus import CorpusConfig, generate_corpus
from repro.frontend.audio import PhoneAlignment
from repro.lexicon.lexicon import Lexicon, generate_lexicon
from repro.lexicon.lexicon_fst import build_lexicon_fst
from repro.lm.grammar_fst import build_grammar_fst
from repro.lm.ngram import NGramModel, train_ngram
from repro.wfst.layout import CompiledWfst
from repro.wfst.ops import compose, remove_epsilon_cycles


@dataclass(frozen=True)
class Utterance:
    """One test utterance with ground truth and acoustic scores."""

    words: Tuple[int, ...]
    alignment: PhoneAlignment
    scores: AcousticScores

    @property
    def num_frames(self) -> int:
        return self.scores.num_frames

    @property
    def duration_seconds(self) -> float:
        """Speech duration assuming the standard 10 ms frame hop."""
        return self.num_frames * 0.01


@dataclass(frozen=True)
class TaskConfig:
    """Parameters of a generated ASR task."""

    vocab_size: int = 500
    corpus_sentences: int = 2000
    num_utterances: int = 10
    utterance_words: int = 6
    mean_frames_per_phone: int = 6
    silence_prob: float = 0.2
    score_separation: float = 4.0
    score_noise: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ConfigError("vocab_size must be >= 2")
        if self.num_utterances < 1:
            raise ConfigError("num_utterances must be >= 1")
        if self.utterance_words < 1:
            raise ConfigError("utterance_words must be >= 1")


@dataclass
class AsrTask:
    """A complete decoding task."""

    config: TaskConfig
    lexicon: Lexicon
    lm: NGramModel
    graph: CompiledWfst
    utterances: List[Utterance]

    @property
    def num_phones(self) -> int:
        return self.lexicon.phones.num_phones

    def transcript(self, utt: Utterance) -> List[str]:
        return [self.lexicon.word_of(w) for w in utt.words]


def generate_task(config: TaskConfig = TaskConfig()) -> AsrTask:
    """Generate a full ASR task deterministically from ``config.seed``."""
    lexicon = generate_lexicon(config.vocab_size, seed=config.seed)
    corpus = generate_corpus(
        CorpusConfig(
            vocab_size=config.vocab_size,
            num_sentences=config.corpus_sentences,
            seed=config.seed,
        )
    )
    lm = train_ngram(corpus, config.vocab_size)

    lexicon_fst = build_lexicon_fst(lexicon, silence_prob=config.silence_prob)
    grammar_fst = build_grammar_fst(lm)
    decoding_fst = compose(lexicon_fst, grammar_fst)
    remove_epsilon_cycles(decoding_fst)
    graph = CompiledWfst.from_fst(decoding_fst)

    utterances = _generate_utterances(config, lexicon, corpus)
    return AsrTask(config, lexicon, lm, graph, utterances)


def _generate_utterances(
    config: TaskConfig,
    lexicon: Lexicon,
    corpus: Sequence[Sequence[int]],
) -> List[Utterance]:
    """Draw test sentences from the corpus distribution and score them."""
    rng = make_rng(config.seed, "utterances")
    scorer = SyntheticScorer(
        num_phones=lexicon.phones.num_phones,
        separation=config.score_separation,
        noise=config.score_noise,
        seed=config.seed,
    )
    sil = lexicon.phones.silence_id

    utterances: List[Utterance] = []
    for utt_id in range(config.num_utterances):
        # Reuse corpus sentences so the test set matches the LM.
        sentence = list(corpus[int(rng.integers(0, len(corpus)))])
        words = tuple(sentence[: config.utterance_words])
        if not words:
            words = (int(rng.integers(1, config.vocab_size + 1)),)

        phones: List[int] = []
        for w in words:
            if config.silence_prob > 0 and rng.random() < config.silence_prob:
                phones.append(sil)
            phones.extend(lexicon.pronunciation(w))

        durations = [
            3 + int(rng.poisson(max(config.mean_frames_per_phone - 3, 0)))
            for _ in phones
        ]
        alignment = PhoneAlignment(tuple(phones), tuple(durations))
        scores = scorer.score(alignment, utterance_id=utt_id)
        utterances.append(Utterance(words, alignment, scores))
    return utterances
