"""Large random decoding graphs with Kaldi-like statistics.

Composition of a real lexicon and LM cannot practically reach the paper's
graph scale (13.7M states, 34.8M arcs) in pure Python, so the memory-system
experiments use graphs generated directly with the published statistics:

* arc/state ratio ≈ 2.55 (34M arcs / 13.4M states),
* heavily skewed out-degrees (most states small, max 770; 95%+ of states
  directly addressable with N = 16 -- paper, Section IV-B and Figure 7),
* ≈ 11.5% epsilon arcs (paper, Section II),
* sparse, unpredictable connectivity (destinations spread over the whole
  state array -- this is what defeats conventional prefetchers).

The generated graph is fully decodable: every state reaches a final state,
and phone/word labels are drawn from the supplied inventory sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.wfst.fst import EPSILON
from repro.wfst.layout import CompiledWfst, StateRecord


@dataclass(frozen=True)
class SyntheticGraphConfig:
    """Shape parameters for the random graph."""

    num_states: int = 100_000
    mean_arcs_per_state: float = 2.55
    max_arcs_per_state: int = 770
    degree_power: float = 2.6
    epsilon_fraction: float = 0.115
    num_phones: int = 40
    num_words: int = 5000
    final_fraction: float = 0.001
    locality: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_states < 2:
            raise ConfigError("num_states must be >= 2")
        if self.mean_arcs_per_state < 1.0:
            raise ConfigError("mean_arcs_per_state must be >= 1")
        if not 0.0 <= self.epsilon_fraction < 1.0:
            raise ConfigError("epsilon_fraction must be in [0, 1)")
        if self.max_arcs_per_state < 1:
            raise ConfigError("max_arcs_per_state must be >= 1")
        if self.degree_power <= 0.0:
            raise ConfigError("degree_power must be positive")
        if self.num_phones < 1 or self.num_words < 1:
            raise ConfigError("num_phones and num_words must be >= 1")
        if not 0.0 <= self.final_fraction <= 1.0:
            raise ConfigError("final_fraction must be in [0, 1]")
        if not 0.0 <= self.locality <= 1.0:
            raise ConfigError("locality must be in [0, 1]")
        if self.seed < 0:
            raise ConfigError("seed must be non-negative")


def generate_kaldi_like_graph(config: SyntheticGraphConfig) -> CompiledWfst:
    """Generate a compiled decoding graph with the configured statistics."""
    rng = make_rng(config.seed, "synthetic-graph")
    n = config.num_states

    degrees = _sample_degrees(config, rng)
    total_arcs = int(degrees.sum())

    # Destination states: a mix of local transitions (chain-like lexicon
    # structure) and global jumps (cross-word arcs), which yields the
    # sparse, cache-hostile access pattern the paper describes.
    first_arc = np.zeros(n, dtype=np.int64)
    np.cumsum(degrees[:-1], out=first_arc[1:])

    src_of_arc = np.repeat(np.arange(n, dtype=np.int64), degrees)
    local = rng.random(total_arcs) < config.locality
    jitter = rng.integers(1, 50, size=total_arcs)
    dest = np.where(
        local,
        (src_of_arc + jitter) % n,
        rng.integers(0, n, size=total_arcs),
    ).astype(np.uint32)

    ilabel = rng.integers(1, config.num_phones + 1, size=total_arcs).astype(
        np.uint32
    )
    eps_mask = rng.random(total_arcs) < config.epsilon_fraction
    ilabel[eps_mask] = EPSILON

    olabel = np.zeros(total_arcs, dtype=np.uint32)
    word_mask = rng.random(total_arcs) < 0.2
    olabel[word_mask] = rng.integers(
        1, config.num_words + 1, size=int(word_mask.sum())
    ).astype(np.uint32)

    weight = np.log(rng.uniform(0.05, 1.0, size=total_arcs)).astype(np.float32)

    # Per-state layout: non-epsilon arcs first (required by the format).
    states_packed = np.zeros(n, dtype=np.uint64)
    order = np.lexsort((eps_mask, src_of_arc))
    dest, weight, ilabel, olabel = (
        dest[order], weight[order], ilabel[order], olabel[order]
    )
    n_eps_per_state = np.zeros(n, dtype=np.int64)
    np.add.at(n_eps_per_state, src_of_arc, eps_mask)
    for s in range(n):
        n_arcs = int(degrees[s])
        n_eps = int(n_eps_per_state[s])
        states_packed[s] = CompiledWfst.pack_state(
            StateRecord(int(first_arc[s]), n_arcs - n_eps, n_eps)
        )

    from repro.common.logmath import LOG_ZERO

    final_weights = np.full(n, LOG_ZERO, dtype=np.float64)
    n_final = max(1, int(n * config.final_fraction))
    final_states = rng.choice(n, size=n_final, replace=False)
    final_weights[final_states] = 0.0

    graph = CompiledWfst(
        start=0,
        states_packed=states_packed,
        arc_dest=dest,
        arc_weight=weight,
        arc_ilabel=ilabel,
        arc_olabel=olabel,
        final_weights=final_weights,
    )
    _break_epsilon_cycles(graph)
    return graph


def _sample_degrees(
    config: SyntheticGraphConfig, rng: np.random.Generator
) -> np.ndarray:
    """Sample a power-law out-degree per state matching the target mean.

    Degrees follow ``P(d) ∝ d^-power`` over ``1..max_arcs_per_state``; the
    distribution is then mixed with its own truncation at the target mean to
    pin the arc/state ratio while keeping the heavy tail (Figure 7's shape:
    ~97% of states small, a few-hundred-arc tail).
    """
    d = np.arange(1, config.max_arcs_per_state + 1, dtype=np.float64)
    pmf = d ** (-config.degree_power)
    pmf /= pmf.sum()
    current_mean = float((d * pmf).sum())

    if current_mean < config.mean_arcs_per_state:
        # The requested mean needs a heavier tail than the configured
        # exponent provides: bisect on the exponent (mean is monotonically
        # decreasing in the exponent) until the mean matches.
        lo, hi = 0.1, config.degree_power
        for _ in range(60):
            mid = (lo + hi) / 2.0
            pmf_mid = d ** (-mid)
            pmf_mid /= pmf_mid.sum()
            if float((d * pmf_mid).sum()) > config.mean_arcs_per_state:
                lo = mid  # tail too heavy: raise the exponent
            else:
                hi = mid
        pmf = d ** (-((lo + hi) / 2.0))
        pmf /= pmf.sum()

    return rng.choice(
        np.arange(1, config.max_arcs_per_state + 1),
        size=config.num_states,
        p=pmf,
    ).astype(np.int64)


def _break_epsilon_cycles(graph: CompiledWfst) -> None:
    """Force epsilon arcs to point 'forward' so epsilon closures terminate.

    Random destinations can create epsilon cycles, which the decoders
    reject; redirecting each epsilon arc to a strictly larger state id
    (wrapping disabled) makes the epsilon subgraph a DAG while preserving
    its volume and sparsity.
    """
    eps_idx = np.nonzero(graph.arc_ilabel == EPSILON)[0]
    if len(eps_idx) == 0:
        return
    n = graph.num_states
    # Source of each arc, recovered from the state records.
    src = np.zeros(graph.num_arcs, dtype=np.int64)
    for s in range(n):
        first, n_non_eps, n_eps = graph.arc_range(s)
        src[first : first + n_non_eps + n_eps] = s
    dest = graph.arc_dest
    for i in eps_idx:
        s = src[i]
        if dest[i] <= s:
            span = n - 1 - s
            if span <= 0:
                dest[i] = s  # self arc at the last state: make non-eps
                graph.arc_ilabel[i] = 1
            else:
                dest[i] = s + 1 + (int(dest[i]) % span)
