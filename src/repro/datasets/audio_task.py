"""End-to-end audio tasks: the full paper pipeline as a library call.

Where :func:`repro.datasets.generate_task` short-circuits the acoustic
front end with a synthetic scorer, :func:`generate_audio_task` exercises
every stage of Section II: it synthesises training audio, extracts MFCCs
(with CMVN and splicing), trains the numpy DNN, builds the decoding graph,
and produces test utterances whose score matrices come from the *trained
DNN on synthesised test audio* -- the same inputs the accelerator's
Acoustic Likelihood Buffer would receive from the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.acoustic import Dnn, DnnConfig, DnnScorer, TrainConfig, train_dnn
from repro.datasets.corpus import CorpusConfig, generate_corpus
from repro.datasets.task import AsrTask, TaskConfig, Utterance
from repro.frontend import (
    AudioSynthesizer,
    MfccConfig,
    MfccExtractor,
    cmvn,
    splice,
)
from repro.lexicon import generate_lexicon
from repro.lexicon.lexicon_fst import build_lexicon_fst
from repro.lm.grammar_fst import build_grammar_fst
from repro.lm.ngram import train_ngram
from repro.wfst.layout import CompiledWfst
from repro.wfst.ops import compose


@dataclass(frozen=True)
class AudioTaskConfig:
    """Parameters of an audio-backed ASR task."""

    vocab_size: int = 30
    corpus_sentences: int = 300
    num_utterances: int = 4
    utterance_words: int = 3
    train_utterances: int = 50
    train_phones_per_utterance: int = 12
    mean_frames_per_phone: int = 6
    hidden_dims: Tuple[int, ...] = (128, 128)
    epochs: int = 10
    splice_context: int = 2
    acoustic_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ConfigError("vocab_size must be >= 2")
        if self.num_utterances < 1 or self.train_utterances < 1:
            raise ConfigError("utterance counts must be >= 1")
        if self.corpus_sentences < 1:
            raise ConfigError("corpus_sentences must be >= 1")
        if self.utterance_words < 1:
            raise ConfigError("utterance_words must be >= 1")
        if self.train_phones_per_utterance < 1:
            raise ConfigError("train_phones_per_utterance must be >= 1")
        if self.mean_frames_per_phone < 1:
            raise ConfigError("mean_frames_per_phone must be >= 1")
        if not self.hidden_dims or any(d < 1 for d in self.hidden_dims):
            raise ConfigError("hidden_dims must be positive and non-empty")
        if self.epochs < 1:
            raise ConfigError("epochs must be >= 1")
        if self.splice_context < 0:
            raise ConfigError("splice_context must be >= 0")
        if self.acoustic_scale <= 0.0:
            raise ConfigError("acoustic_scale must be positive")
        if self.seed < 0:
            raise ConfigError("seed must be non-negative")


@dataclass
class AudioTask:
    """An :class:`AsrTask` plus its trained acoustic model."""

    task: AsrTask
    dnn: Dnn
    scorer: DnnScorer
    frame_accuracy: float


def generate_audio_task(config: AudioTaskConfig = AudioTaskConfig()) -> AudioTask:
    """Build a complete audio-backed task deterministically from the seed."""
    lexicon = generate_lexicon(config.vocab_size, seed=config.seed)
    phones = lexicon.phones
    corpus = generate_corpus(
        CorpusConfig(
            vocab_size=config.vocab_size,
            num_sentences=config.corpus_sentences,
            seed=config.seed,
        )
    )
    lm = train_ngram(corpus, config.vocab_size)
    graph = CompiledWfst.from_fst(
        compose(build_lexicon_fst(lexicon), build_grammar_fst(lm))
    )

    synth = AudioSynthesizer(phones, seed=config.seed)
    extractor = MfccExtractor(MfccConfig())

    def features_of(waveform: np.ndarray) -> np.ndarray:
        return splice(
            cmvn(extractor.extract(waveform)), context=config.splice_context
        )

    # ----- train the acoustic model on random phone strings -------------
    rng = make_rng(config.seed, "audio-task-train")
    train_x: List[np.ndarray] = []
    train_y: List[np.ndarray] = []
    for utt in range(config.train_utterances):
        seq = rng.integers(1, phones.num_phones + 1,
                           size=config.train_phones_per_utterance)
        wave, align = synth.synthesize(
            seq.tolist(), seed=config.seed * 1000 + utt,
            mean_frames=config.mean_frames_per_phone,
        )
        feats = features_of(wave)
        labels = align.frame_labels()[: len(feats)] - 1
        train_x.append(feats[: len(labels)])
        train_y.append(labels)
    x = np.vstack(train_x)
    y = np.concatenate(train_y)

    dnn = Dnn(
        DnnConfig(
            input_dim=x.shape[1],
            hidden_dims=config.hidden_dims,
            num_classes=phones.num_phones,
        ),
        seed=config.seed,
    )
    train_dnn(
        dnn, x, y,
        TrainConfig(epochs=config.epochs, learning_rate=0.08,
                    seed=config.seed),
    )
    frame_accuracy = float((dnn.predict(x) == y).mean())

    priors = DnnScorer.priors_from_labels(y, phones.num_phones)
    scorer = DnnScorer(dnn, priors, acoustic_scale=config.acoustic_scale)

    # ----- synthesise and score the test utterances ---------------------
    test_rng = make_rng(config.seed, "audio-task-test")
    utterances: List[Utterance] = []
    for utt_id in range(config.num_utterances):
        sentence = corpus[int(test_rng.integers(0, len(corpus)))]
        words = tuple(sentence[: config.utterance_words])
        if not words:
            words = (int(test_rng.integers(1, config.vocab_size + 1)),)
        phone_seq: List[int] = []
        for w in words:
            phone_seq.extend(lexicon.pronunciation(w))
        wave, align = synth.synthesize(
            phone_seq, seed=config.seed * 7000 + utt_id,
            mean_frames=config.mean_frames_per_phone,
        )
        feats = features_of(wave)
        scores = scorer.score(feats)
        utterances.append(Utterance(words, align, scores, features=feats))

    task_config = TaskConfig(
        vocab_size=config.vocab_size,
        corpus_sentences=config.corpus_sentences,
        num_utterances=config.num_utterances,
        utterance_words=config.utterance_words,
        seed=config.seed,
    )
    task = AsrTask(task_config, lexicon, lm, graph, utterances)
    return AudioTask(task, dnn, scorer, frame_accuracy)
