"""Command-line interface.

Seven subcommands cover the common workflows:

* ``repro-asr compile``      -- run the staged graph compiler on a recipe
  (composed lexicon ∘ LM or synthetic Kaldi-like graph), print the
  per-pass report and cache/save the packed artifact.
* ``repro-asr build-task``   -- generate a synthetic ASR task and save its
  decoding graph.
* ``repro-asr decode``       -- decode a task's utterances on any engine
  of the shared search kernel: ``--engine reference`` (scalar oracle),
  ``batch`` (vectorized), ``lattice`` (N-best summaries) or ``gpu``
  (workload summaries); ``--streaming`` for chunked live sessions and
  ``--pruning adaptive --target-active N`` for the adaptive-beam
  strategy.
* ``repro-asr serve``        -- continuous-batching serving demo: live
  sessions join mid-flight and stream chunks through one fused engine;
  ``--workers N`` serves through the sharded multi-process tier over one
  memory-mapped graph and reports p50/p99 SLO stats.
* ``repro-asr simulate``     -- decode on the cycle-accurate accelerator
  simulator in any of the paper's four configurations.
* ``repro-asr compare``      -- run the six-platform comparison on a
  memory-system workload and print the Figure 9/10/11 style table.
* ``repro-asr sweep``        -- design-space sweep over accelerator
  parameters (trace-once/replay-many with an on-disk trace cache),
  with JSON/CSV artifacts; the engine behind the paper's Figures 4-5.

Run ``python -m repro.cli --help`` for details.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.accel import AcceleratorConfig, AcceleratorSimulator
from repro.analysis import engine as analysis_engine
from repro.common.errors import ConfigError
from repro.datasets import (
    AudioTaskConfig,
    SyntheticGraphConfig,
    TaskConfig,
    generate_audio_task,
    generate_task,
)
from repro.decoder import (
    BatchDecoder,
    DecoderConfig,
    KERNEL_BACKENDS,
    LatticeDecoder,
    PRUNING_STRATEGIES,
    ViterbiDecoder,
    word_error_rate,
)
from repro.decoder.backends import resolve_backend
from repro.energy import AcceleratorEnergyModel
from repro.graph import (
    DEFAULT_GRAPH_CACHE,
    GraphCache,
    GraphRecipe,
    compile_graph,
)
from repro.system import (
    ServerConfig,
    ServingTier,
    StreamingServer,
    TierConfig,
    make_memory_workload,
    run_platform_comparison,
)
from repro.wfst import load_any_graph, save_wfst, sort_states_by_arc_count

CONFIG_NAMES = ("base", "state", "arc", "both")


def _accel_config(name: str) -> AcceleratorConfig:
    base = AcceleratorConfig()
    return {
        "base": base,
        "state": base.with_state_direct(),
        "arc": base.with_prefetch(),
        "both": base.with_both(),
    }[name]


def _add_task_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--vocab", type=int, default=200,
                        help="vocabulary size (default 200)")
    parser.add_argument("--utterances", type=int, default=5,
                        help="number of test utterances (default 5)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--beam", type=float, default=14.0)
    parser.add_argument("--lm-order", type=int, choices=(2, 3), default=2,
                        dest="lm_order",
                        help="grammar transducer order: 2 = bigram, "
                             "3 = trigram (default 2)")


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--graph", metavar="PATH",
                        help="decode a pre-compiled graph artifact "
                             "(npz graph or bundle from 'repro compile "
                             "--output') instead of the task's own; must "
                             "have been compiled from the same recipe for "
                             "meaningful WER")
    parser.add_argument("--graph-cache", default=DEFAULT_GRAPH_CACHE,
                        dest="graph_cache", metavar="DIR|none",
                        help=f"on-disk compiled-graph artifact cache "
                             f"(default {DEFAULT_GRAPH_CACHE}; "
                             f"'none' disables)")


def _graph_cache(args: argparse.Namespace) -> Optional[GraphCache]:
    directory = getattr(args, "graph_cache", None)
    if directory is None or directory == "none":
        return GraphCache()
    return GraphCache(directory)


def _task_config(args: argparse.Namespace) -> TaskConfig:
    return TaskConfig(
        vocab_size=args.vocab,
        num_utterances=args.utterances,
        seed=args.seed,
        lm_order=getattr(args, "lm_order", 2),
    )


def _build_task(args: argparse.Namespace):
    """The task of ``args``: compiled through the cache, or, with
    ``--graph``, generated around a pre-compiled graph (no compile)."""
    graph = load_any_graph(args.graph) if getattr(args, "graph", None) else None
    return generate_task(
        _task_config(args), graph_cache=_graph_cache(args), graph=graph
    )


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel-backend", choices=KERNEL_BACKENDS,
                        default="auto", dest="kernel_backend",
                        help="search-kernel array backend: 'numpy' "
                             "(portable default), 'numba' (compiled; "
                             "needs the [compiled] extra, falls back to "
                             "numpy with a warning), or 'auto' (reads "
                             "REPRO_KERNEL_BACKEND, then numpy). Purely "
                             "a speed knob: every backend decodes "
                             "bit-identically (default: auto)")


def _add_pruning_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pruning", choices=PRUNING_STRATEGIES,
                        default="beam",
                        help="pruning strategy: fixed 'beam' window or "
                             "'adaptive' (tracks --target-active tokens "
                             "per frame; default: beam)")
    parser.add_argument("--max-active", type=int, default=0,
                        dest="max_active",
                        help="histogram cap on tokens per frame "
                             "(0 disables; default 0)")
    parser.add_argument("--target-active", type=int, default=0,
                        dest="target_active",
                        help="adaptive-beam target active-token count "
                             "(required with --pruning adaptive)")


def _decoder_config(args: argparse.Namespace) -> DecoderConfig:
    return DecoderConfig(
        beam=args.beam,
        max_active=getattr(args, "max_active", 0),
        pruning=getattr(args, "pruning", "beam"),
        target_active=getattr(args, "target_active", 0),
        backend=getattr(args, "kernel_backend", "auto"),
        commit_interval=getattr(args, "commit_interval", 0),
    )


def cmd_compile(args: argparse.Namespace) -> int:
    """Run the staged graph compiler and print the per-pass report."""
    if args.states:
        if args.remove_epsilons:
            raise ConfigError(
                "--remove-epsilons applies to composed recipes only "
                "(synthetic graphs are generated pre-packed)"
            )
        if args.no_arcsort:
            raise ConfigError(
                "--no-arcsort applies to composed recipes only"
            )
        recipe = GraphRecipe.synthetic_graph(SyntheticGraphConfig(
            num_states=args.states, num_phones=args.phones, seed=args.seed
        ))
    else:
        recipe = GraphRecipe.composed(
            vocab_size=args.vocab,
            corpus_sentences=args.corpus_sentences,
            lm_order=args.lm_order,
            silence_prob=args.silence_prob,
            seed=args.seed,
            remove_epsilons=args.remove_epsilons,
            arcsort=not args.no_arcsort,
        )
    cache = _graph_cache(args)
    artifact = compile_graph(recipe, cache=cache)
    print(artifact.report())
    graph = artifact.graph
    print(f"graph: {graph.num_states} states / {graph.num_arcs} arcs "
          f"({graph.total_size_bytes / 1024:.0f} KB), "
          f"{100 * graph.epsilon_fraction():.1f}% epsilon")
    if cache.directory is not None:
        print(f"cache: {cache.directory} "
              f"({cache.hits} hit(s), {cache.compiles} compile(s))")
    if args.output:
        from repro.wfst import save_graph_bundle

        save_graph_bundle(
            graph,
            args.output,
            fingerprint=graph.fingerprint(),
            recipe=recipe.to_dict(),
            passes=[p.to_dict() for p in artifact.passes],
        )
        print(f"artifact bundle written to {args.output}")
    return 0


def cmd_build_task(args: argparse.Namespace) -> int:
    task = _build_task(args)
    print(f"task: vocab {task.lexicon.vocab_size}, graph "
          f"{task.graph.num_states} states / {task.graph.num_arcs} arcs "
          f"({task.graph.total_size_bytes / 1024:.0f} KB)")
    if args.output:
        save_wfst(task.graph, args.output)
        print(f"graph written to {args.output}")
    return 0


def cmd_decode(args: argparse.Namespace) -> int:
    from repro.decoder import DecodeResult
    from repro.gpu import GpuViterbiDecoder

    task = _build_task(args)
    if args.graph:
        print(f"decoding pre-compiled graph {args.graph} "
              f"({task.graph.num_states} states)")
    config = _decoder_config(args)
    scores = [u.scores for u in task.utterances]
    server = None
    extras: List[List[str]] = [[] for _ in task.utterances]
    t0 = time.perf_counter()
    if args.streaming:
        server = StreamingServer(task.graph, config)
        results = server.decode_streaming(
            scores, chunk_frames=args.chunk_frames
        )
    elif args.engine == "batch":
        decoder = BatchDecoder(task.graph, config)
        results = decoder.decode_batch(scores)
    elif args.engine == "lattice":
        lattice_decoder = LatticeDecoder(task.graph, config)
        results = []
        for i, utt in enumerate(task.utterances):
            lattice = lattice_decoder.decode(utt.scores)
            entries = lattice.nbest(args.nbest)
            best = entries[0]
            results.append(DecodeResult(
                words=best.words,
                log_likelihood=best.log_likelihood,
                reached_final=lattice.reached_final,
                stats=lattice.stats,
            ))
            extras[i].append(
                f"  lattice: {lattice.num_nodes} nodes / "
                f"{lattice.num_edges} edges"
            )
            for rank, entry in enumerate(entries, start=1):
                words = " ".join(
                    task.lexicon.word_of(w) for w in entry.words
                )
                extras[i].append(
                    f"  nbest {rank}: {entry.log_likelihood:9.3f}  {words}"
                )
    elif args.engine == "gpu":
        gpu = GpuViterbiDecoder(task.graph, config=config)
        results = []
        for i, utt in enumerate(task.utterances):
            result, work = gpu.decode(utt.scores)
            results.append(result)
            extras[i].append(
                f"  gpu workload: {work.kernel_launches} launches, "
                f"{work.arcs_expanded} arcs + "
                f"{work.epsilon_arcs_expanded} eps arcs expanded, "
                f"{work.atomic_updates} atomics, "
                f"{work.epsilon_iterations} eps iterations"
            )
    else:
        reference = ViterbiDecoder(task.graph, config)
        results = [reference.decode(u.scores) for u in task.utterances]
    elapsed = time.perf_counter() - t0

    total = 0.0
    for i, (utt, result) in enumerate(zip(task.utterances, results)):
        wer = word_error_rate(utt.words, result.words)
        total += wer
        print(f"utt {i}: WER {wer:.2f}  "
              f"({result.stats.arcs_processed} arcs, "
              f"{result.stats.mean_active_tokens:.0f} active tokens/frame)  "
              f"{' '.join(task.transcript(result))}")
        for line in extras[i]:
            print(line)
    frames = sum(u.num_frames for u in task.utterances)
    engine = "streaming" if args.streaming else args.engine
    # The scalar reference discipline has no array backend to report.
    backend = (
        "" if (args.engine == "reference" and not args.streaming)
        else f" [{resolve_backend(config.backend).name} kernel]"
    )
    print(f"engine '{engine}'{backend}: {frames} frames in "
          f"{elapsed * 1e3:.1f} ms ({frames / elapsed:.0f} frames/s)")
    if server is not None:
        stats = server.stats
        print(f"streaming: {stats.sweeps} sweeps, mean occupancy "
              f"{stats.mean_occupancy:.1f} sessions/sweep, "
              f"{stats.aggregate_frames_per_second:.0f} frames/s of "
              f"engine busy time")
    print(f"mean WER {total / len(task.utterances):.3f}")
    return 0


def _serve_tier(args: argparse.Namespace, task, scorer=None) -> int:
    """Serve the task through the sharded multi-process tier.

    With ``scorer`` (``--score-features``) sessions run in features
    mode: the front door's scoring thread batches every live session's
    MFCC chunks into stacked DNN forwards and ships the scored planes to
    the shards over zero-copy shared memory."""
    mode = "features" if scorer is not None else "scores"
    tier = ServingTier(
        graph=task.graph,
        search_config=DecoderConfig(
            beam=args.beam, backend=args.kernel_backend,
            commit_interval=args.commit_interval,
        ),
        tier_config=TierConfig(
            num_workers=args.workers, max_batch=args.max_batch
        ),
        scorer=scorer,
    )
    with tier:
        if mode == "features":
            matrices = [u.features for u in task.utterances]
            push = tier.push_features
        else:
            matrices = [u.scores.matrix for u in task.utterances]
            push = tier.push
        sids = []
        for i, matrix in enumerate(matrices):
            sid = tier.open_session(mode=mode)
            sids.append(sid)
            print(f"session {sid} joined -> shard {tier.worker_of(sid)} "
                  f"({len(matrix)} frames)")
        offsets = [0] * len(matrices)
        while any(o < len(m) for o, m in zip(offsets, matrices)):
            for i, (sid, matrix) in enumerate(zip(sids, matrices)):
                if offsets[i] >= len(matrix):
                    continue
                chunk = matrix[offsets[i]: offsets[i] + args.chunk_frames]
                push(sid, chunk)
                offsets[i] += len(chunk)
                if offsets[i] >= len(matrix):
                    tier.close_input(sid)
        records = [tier.result(sid) for sid in sids]
        stats = tier.stats

    total_wer = 0.0
    decoded = 0
    for i, record in enumerate(records):
        if record.error is not None:
            print(f"session {record.session_id}: FAILED ({record.error})")
            continue
        utt = task.utterances[i]
        wer = word_error_rate(utt.words, record.result.words)
        total_wer += wer
        decoded += 1
        s = record.stats
        print(f"session {record.session_id}: WER {wer:.2f}  "
              f"{s.frames_decoded} frames, mean wait "
              f"{s.mean_wait_s * 1e3:.2f} ms  "
              f"{' '.join(task.transcript(record.result))}")
    slo = stats.slo()
    print(f"tier: {args.workers} shards served {stats.sessions_finished} "
          f"sessions / {stats.frames_decoded} frames on the "
          f"{stats.kernel_backend} kernel backend; aggregate "
          f"{slo['aggregate_frames_per_second']:.0f} frames/s")
    print(f"SLO: session latency p50 "
          f"{slo['p50_session_latency_s'] * 1e3:.1f} ms / p99 "
          f"{slo['p99_session_latency_s'] * 1e3:.1f} ms; frame wait p50 "
          f"{slo['p50_mean_wait_s'] * 1e3:.2f} ms / p99 "
          f"{slo['p99_mean_wait_s'] * 1e3:.2f} ms")
    print(f"traceback: peak trace memory "
          f"{slo['trace_memory_bytes'] / 1024:.1f} KiB/session, "
          f"{slo['committed_frames']:.0f} committed frames "
          f"(commit interval {args.commit_interval})")
    if scorer is not None:
        print(f"scoring: {stats.scored_frames} frames in "
              f"{stats.score_batches} cross-session batches, "
              f"{stats.scored_frames_per_second:.0f} scored frames/s; "
              f"transport {stats.descriptors_shipped} descriptors, "
              f"{stats.ipc_bytes_per_frame:.1f} pipe bytes/frame "
              f"({stats.ring_stalls} plane stalls)")
    if decoded:
        print(f"mean WER {total_wer / decoded:.3f}")
    return 0 if decoded == len(records) else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Continuous-batching demo: staggered live sessions, chunked input."""
    if args.chunk_frames < 1:
        raise ConfigError("--chunk-frames must be >= 1")
    if args.stagger < 0:
        raise ConfigError("--stagger must be >= 0")
    if args.workers < 1:
        raise ConfigError("--workers must be >= 1")
    scorer = None
    if args.score_features:
        # Features mode needs a trained acoustic model and the MFCCs it
        # was trained on -- the audio-backed task carries both.
        audio = generate_audio_task(
            AudioTaskConfig(
                vocab_size=min(args.vocab, 60),
                num_utterances=args.utterances,
                seed=args.seed,
            )
        )
        task, scorer = audio.task, audio.scorer
        print(f"audio task: DNN frame accuracy "
              f"{audio.frame_accuracy:.3f}, score width "
              f"{scorer.dnn.config.num_classes + 1}")
    else:
        task = _build_task(args)
    if args.workers > 1:
        return _serve_tier(args, task, scorer=scorer)
    server = StreamingServer(
        task.graph,
        DecoderConfig(beam=args.beam, backend=args.kernel_backend,
                      commit_interval=args.commit_interval),
        ServerConfig(max_batch=args.max_batch),
        scorer=scorer,
    )

    def announce_join(round_no: int, i: int, sid: int) -> None:
        print(f"[round {round_no:3d}] session {sid} joined "
              f"({task.utterances[i].num_frames} frames)")

    records = server.serve_staggered(
        [u.features if scorer is not None else u.scores
         for u in task.utterances],
        chunk_frames=args.chunk_frames,
        stagger=args.stagger,
        on_join=announce_join,
        mode="features" if scorer is not None else "scores",
    )

    total_wer = 0.0
    decoded = 0
    for i, record in enumerate(records):
        if record.error is not None:
            print(f"session {record.session_id}: FAILED ({record.error})")
            continue
        utt = task.utterances[i]
        wer = word_error_rate(utt.words, record.result.words)
        total_wer += wer
        decoded += 1
        s = record.stats
        print(f"session {record.session_id}: WER {wer:.2f}  "
              f"{s.frames_decoded} frames in "
              f"{s.sweeps} sweeps, {s.frames_per_second:.0f} frames/s, "
              f"mean wait {s.mean_wait_s * 1e3:.2f} ms  "
              f"{' '.join(task.transcript(record.result))}")
    stats = server.stats
    print(f"kernel backend: {server.kernel_backend}")
    print(f"served {stats.sessions_finalized} sessions / "
          f"{stats.frames_decoded} frames in {stats.sweeps} sweeps "
          f"(mean occupancy {stats.mean_occupancy:.1f}, "
          f"max {stats.max_occupancy}); aggregate "
          f"{stats.aggregate_frames_per_second:.0f} frames/s")
    peak_trace = max(
        (r.stats.trace_peak_bytes for r in records if r.error is None),
        default=0,
    )
    committed = sum(
        r.stats.committed_frames for r in records if r.error is None
    )
    print(f"traceback: peak trace memory {peak_trace / 1024:.1f} "
          f"KiB/session, {committed} committed frames "
          f"(commit interval {args.commit_interval})")
    if scorer is not None:
        print(f"scoring: {stats.scored_frames} frames in "
              f"{stats.score_batches} cross-session batches, "
              f"{stats.scored_frames_per_second:.0f} scored frames/s")
    if decoded:
        print(f"mean WER {total_wer / decoded:.3f}")
    return 0 if decoded == len(records) else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    task = _build_task(args)
    config = _accel_config(args.config)
    sorted_graph = (
        sort_states_by_arc_count(
            task.graph, max_direct_arcs=config.state_direct_max_arcs
        )
        if config.state_direct_enabled
        else None
    )
    sim = AcceleratorSimulator(
        task.graph, config, beam=args.beam, sorted_graph=sorted_graph
    )
    energy_model = AcceleratorEnergyModel()
    total_cycles = 0
    total_energy = 0.0
    speech = 0.0
    for i, utt in enumerate(task.utterances):
        result = sim.decode(utt.scores)
        total_cycles += result.stats.cycles
        total_energy += energy_model.energy(config, result.stats).total_j
        speech += utt.duration_seconds
        s = result.stats
        print(f"utt {i}: {s.cycles} cycles | miss state "
              f"{s.state_cache.miss_ratio:.3f} arc {s.arc_cache.miss_ratio:.3f} "
              f"token {s.token_cache.miss_ratio:.3f} | hash "
              f"{s.hash.avg_cycles_per_request:.2f} cyc/req | "
              f"DRAM {s.traffic.total_bytes() / 1024:.0f} KB")
    seconds = total_cycles / config.frequency_hz
    print(f"config '{args.config}': {seconds * 1e3:.3f} ms for {speech:.2f} s "
          f"of speech ({seconds / speech:.5f} s/s), "
          f"{total_energy * 1e3:.3f} mJ")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload = make_memory_workload(
        num_utterances=1,
        frames_per_utterance=args.frames,
        beam=8.0,
        max_active=args.max_active,
        seed=args.seed,
        graph_config=SyntheticGraphConfig(
            num_states=args.states, num_phones=50, seed=args.seed
        ),
    )
    comparison = run_platform_comparison(workload)
    report = comparison.report()
    print(f"{'platform':16s} {'decode s/s':>12s} {'power W':>10s} "
          f"{'energy J/s':>12s}")
    for row in report.rows():
        print(f"{row['platform']:16s} {row['decode_s_per_speech_s']:12.5f} "
              f"{row['avg_power_w']:10.3f} {row['energy_j_per_speech_s']:12.5f}")
    speed = report.speedup_vs("GPU")
    energy = report.energy_reduction_vs("GPU")
    print(f"\nvs GPU: speedup {speed['ASIC+State&Arc']:.2f}x, "
          f"energy reduction {energy['ASIC+State&Arc']:.0f}x "
          f"(paper: 1.7x, 287x)")
    return 0


#: Default on-disk trace cache for ``repro sweep`` (content-addressed;
#: safe to delete at any time -- see docs/ARCHITECTURE.md).
DEFAULT_TRACE_CACHE = os.path.join(
    os.path.expanduser("~"), ".cache", "repro-asr", "traces"
)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Design-space sweep via the trace-once/replay-many runner."""
    from repro.explore import ParameterGrid, SweepRunner, TraceCache

    workload = make_memory_workload(
        num_utterances=1,
        frames_per_utterance=args.frames,
        beam=8.0,
        max_active=args.max_active,
        seed=args.seed,
        graph_config=SyntheticGraphConfig(
            num_states=args.states, num_phones=50, seed=args.seed
        ),
        graph=load_any_graph(args.graph) if args.graph else None,
        graph_cache=_graph_cache(args),
    )
    if args.param:
        grid = ParameterGrid.from_specs(args.param)
        points = grid.points()
        labels = None
    else:
        # Default: the paper's four accelerator configurations.
        points = [
            {},
            {"state_direct_enabled": True},
            {"prefetch_enabled": True},
            {"state_direct_enabled": True, "prefetch_enabled": True},
        ]
        labels = ["ASIC", "ASIC+State", "ASIC+Arc", "ASIC+State&Arc"]

    cache_dir = None if args.trace_cache == "none" else args.trace_cache
    runner = SweepRunner(
        workload,
        base_config=_accel_config(args.config),
        trace_cache=TraceCache(cache_dir),
        processes=args.processes,
    )
    result = runner.run(points, labels=labels)

    print(f"{len(result)} points in {result.elapsed_seconds:.2f}s "
          f"({result.trace_recordings} trace(s) recorded, "
          f"{result.trace_cache_hits} cache hit(s), "
          f"{result.processes} process(es))")
    header = (f"{'point':40s} {'cycles':>12s} {'decode s/s':>11s} "
              f"{'arc miss':>9s} {'hash c/r':>9s} {'power mW':>9s} "
              f"{'energy mJ':>10s}")
    print(header)
    print("-" * len(header))
    for p in result.points:
        print(f"{p.label[:40]:40s} {p.cycles:12d} "
              f"{p.decode_s_per_speech_s:11.5f} "
              f"{100 * p.stats.arc_cache.miss_ratio:8.1f}% "
              f"{p.stats.hash.avg_cycles_per_request:9.2f} "
              f"{p.avg_power_w * 1e3:9.0f} {p.energy_j * 1e3:10.3f}")
    if args.json:
        print(f"JSON artifact: {result.to_json(args.json)}")
    if args.csv:
        print(f"CSV artifact: {result.to_csv(args.csv)}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    return analysis_engine.run_from_options(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-asr",
        description="MICRO 2016 ASR-accelerator reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "compile",
        help="run the staged graph compiler (recipe -> packed artifact)",
    )
    p.add_argument("--vocab", type=int, default=200,
                   help="composed recipe: vocabulary size (default 200)")
    p.add_argument("--corpus-sentences", type=int, default=2000,
                   dest="corpus_sentences",
                   help="composed recipe: LM training sentences "
                        "(default 2000)")
    p.add_argument("--lm-order", type=int, choices=(2, 3), default=2,
                   dest="lm_order",
                   help="grammar order: 2 = bigram, 3 = trigram (default 2)")
    p.add_argument("--silence-prob", type=float, default=0.2,
                   dest="silence_prob")
    p.add_argument("--remove-epsilons", action="store_true",
                   dest="remove_epsilons",
                   help="fold output-free epsilon arcs (bigger graph, "
                        "no epsilon pipeline passes)")
    p.add_argument("--no-arcsort", action="store_true", dest="no_arcsort",
                   help="pack arcs in construction order (non-epsilon "
                        "first only)")
    p.add_argument("--states", type=int, default=0,
                   help="compile a synthetic Kaldi-like graph with this "
                        "many states instead of composing L ∘ G")
    p.add_argument("--phones", type=int, default=50,
                   help="synthetic recipe: phone inventory (default 50)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--graph-cache", default=DEFAULT_GRAPH_CACHE,
                   dest="graph_cache", metavar="DIR|none",
                   help=f"artifact cache directory (default "
                        f"{DEFAULT_GRAPH_CACHE}; 'none' disables)")
    p.add_argument("--output", help="write the artifact bundle (npz)")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("build-task", help="generate a synthetic ASR task")
    _add_task_args(p)
    _add_graph_args(p)
    p.add_argument("--output", help="write the compiled graph (npz)")
    p.set_defaults(func=cmd_build_task)

    p = sub.add_parser("decode", help="decode with the software decoder")
    _add_task_args(p)
    _add_graph_args(p)
    _add_pruning_args(p)
    _add_backend_arg(p)
    p.add_argument("--engine",
                   choices=("reference", "batch", "lattice", "gpu"),
                   default="reference",
                   help="decode engine: scalar token passing, the "
                        "vectorized batch engine, the lattice/N-best "
                        "decoder, or the GPU workload model -- all on "
                        "the shared search kernel (default: reference)")
    p.add_argument("--nbest", type=int, default=3,
                   help="hypotheses to print per utterance with "
                        "--engine lattice (default 3)")
    p.add_argument("--streaming", action="store_true",
                   help="decode through chunked live sessions on the "
                        "continuous-batching server (word-identical to "
                        "the offline engines)")
    p.add_argument("--chunk-frames", type=int, default=10,
                   dest="chunk_frames",
                   help="frames per streamed chunk (default 10)")
    p.add_argument("--commit-interval", type=int, default=0,
                   dest="commit_interval",
                   help="with --streaming: frames between committed-"
                        "prefix traceback commits (bounds trace memory "
                        "and makes partials stable; 0 disables, "
                        "default 0)")
    p.set_defaults(func=cmd_decode)

    p = sub.add_parser("serve",
                       help="continuous-batching live serving demo")
    _add_task_args(p)
    _add_graph_args(p)
    _add_backend_arg(p)
    p.add_argument("--chunk-frames", type=int, default=10,
                   dest="chunk_frames",
                   help="frames per streamed chunk (default 10)")
    p.add_argument("--commit-interval", type=int, default=0,
                   dest="commit_interval",
                   help="frames between committed-prefix traceback "
                        "commits: bounds per-session trace memory and "
                        "keeps partial output stable (0 disables, "
                        "default 0)")
    p.add_argument("--stagger", type=int, default=3,
                   help="rounds between session arrivals; 0 admits every "
                        "session up front (default 3)")
    p.add_argument("--max-batch", type=int, default=64, dest="max_batch",
                   help="max sessions per lockstep sweep (default 64)")
    p.add_argument("--workers", type=int, default=1,
                   help="decode worker processes; >= 2 serves through "
                        "the sharded tier over one memory-mapped graph "
                        "and prints p50/p99 SLO stats (default 1: "
                        "in-process server)")
    p.add_argument("--score-features", action="store_true",
                   dest="score_features",
                   help="serve an audio-backed task in features mode: "
                        "sessions push MFCC chunks and the server scores "
                        "them in cross-session batched DNN forwards "
                        "(bit-identical words to pushing scores); with "
                        "--workers >= 2 the scored planes reach the "
                        "shards over zero-copy shared memory")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("simulate", help="decode on the accelerator simulator")
    _add_task_args(p)
    _add_graph_args(p)
    p.add_argument("--config", choices=CONFIG_NAMES, default="both",
                   help="accelerator configuration (default: both)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("compare", help="six-platform comparison")
    p.add_argument("--states", type=int, default=50_000)
    p.add_argument("--frames", type=int, default=20)
    p.add_argument("--max-active", type=int, default=2000, dest="max_active")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "sweep",
        help="design-space sweep over accelerator parameters "
             "(trace-once/replay-many)",
    )
    p.add_argument("--states", type=int, default=20_000,
                   help="workload graph size (default 20000 states)")
    p.add_argument("--frames", type=int, default=15)
    p.add_argument("--max-active", type=int, default=1200, dest="max_active")
    p.add_argument("--seed", type=int, default=5)
    p.add_argument("--config", choices=CONFIG_NAMES, default="base",
                   help="base configuration the sweep starts from")
    p.add_argument("--param", action="append", metavar="PATH=V1,V2,...",
                   help="sweep dimension over a config field path, e.g. "
                        "'arc_cache.size_bytes=256K,1M' or "
                        "'prefetch_enabled=false,true', or a workload "
                        "axis: 'beam=6,8,10', 'pruning=beam,adaptive', "
                        "'target_active=500,1000' (re-traced per value); "
                        "repeatable (dimensions combine as a cartesian "
                        "product). Default: the paper's four "
                        "configurations")
    p.add_argument("--processes", type=int, default=None,
                   help="replay worker processes (default: CPU count)")
    p.add_argument("--graph", metavar="PATH",
                   help="sweep over a pre-compiled graph artifact instead "
                        "of synthesizing one (npz graph or bundle)")
    p.add_argument("--graph-cache", default=DEFAULT_GRAPH_CACHE,
                   dest="graph_cache", metavar="DIR|none",
                   help=f"compiled-graph artifact cache (default "
                        f"{DEFAULT_GRAPH_CACHE}; 'none' disables)")
    p.add_argument("--trace-cache", default=DEFAULT_TRACE_CACHE,
                   metavar="DIR|none",
                   help=f"on-disk trace cache directory (default "
                        f"{DEFAULT_TRACE_CACHE}; 'none' disables)")
    p.add_argument("--json", help="write the sweep result as JSON")
    p.add_argument("--csv", help="write the sweep result as CSV")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "lint",
        help="run the invariant linter (determinism, typed errors, "
             "fingerprint completeness, arg purity, validation "
             "completeness; see docs/INVARIANTS.md)",
    )
    analysis_engine.add_arguments(p)
    p.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
