"""Exception hierarchy for the repro package (library plumbing; no direct
paper counterpart).

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class GraphError(ReproError):
    """A WFST is malformed or an operation on it is undefined."""


class DecodeError(ReproError):
    """Decoding failed (e.g. no surviving path, empty input)."""


class SimulationError(ReproError):
    """The cycle-accurate simulator reached an inconsistent state."""


class AnalysisError(ReproError):
    """The static-analysis framework could not run (bad config, unreadable
    source, corrupt baseline or version-guard file)."""


class TierError(ReproError):
    """The sharded serving tier could not accept or route work."""


class AdmissionError(TierError):
    """A new session was load-shed at the front door (admission limit)."""


class BackpressureError(TierError):
    """A push was load-shed because its shard's queue is saturated."""
