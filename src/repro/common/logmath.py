"""Log-space probability arithmetic.

ASR systems work with log probabilities to avoid floating-point underflow
(paper, Section II).  In log space a probability product becomes a sum --
which is exactly why the accelerator's Likelihood Evaluation unit only needs
adders (paper, Section III-B).

All likelihoods in this library are natural-log probabilities ``<= 0.0``;
``LOG_ZERO`` stands in for ``log(0)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ConfigError

# A large negative sentinel standing in for log(0).  Chosen so that adding a
# handful of weights to it can never overflow to -inf in float32 pipelines
# while still being unreachable by any real path score.
LOG_ZERO: float = -1.0e30

# Anything below this is treated as log(0) when testing.
_LOG_ZERO_THRESHOLD: float = -1.0e29


def is_log_zero(x: float) -> bool:
    """Return True when ``x`` represents the probability zero."""
    return x <= _LOG_ZERO_THRESHOLD


def from_prob(p: float) -> float:
    """Convert a linear probability to log space.

    Raises:
        ConfigError: if ``p`` is negative.
    """
    if p < 0.0:
        raise ConfigError(f"probability must be non-negative, got {p}")
    if p == 0.0:
        return LOG_ZERO
    return math.log(p)


def to_prob(logp: float) -> float:
    """Convert a log probability back to linear space."""
    if is_log_zero(logp):
        return 0.0
    return math.exp(logp)


def log_mul(a: float, b: float) -> float:
    """Multiply two probabilities in log space (i.e. add the logs)."""
    if is_log_zero(a) or is_log_zero(b):
        return LOG_ZERO
    return a + b


def log_add(a: float, b: float) -> float:
    """Add two probabilities in log space (log-sum-exp of two values)."""
    if is_log_zero(a):
        return b
    if is_log_zero(b):
        return a
    hi, lo = (a, b) if a >= b else (b, a)
    return hi + math.log1p(math.exp(lo - hi))


def log_add_array(values: np.ndarray) -> float:
    """Log-sum-exp over a 1-D array, ignoring LOG_ZERO entries."""
    arr = np.asarray(values, dtype=np.float64)
    live = arr[arr > _LOG_ZERO_THRESHOLD]
    if live.size == 0:
        return LOG_ZERO
    hi = float(live.max())
    return hi + math.log(float(np.exp(live - hi).sum()))
