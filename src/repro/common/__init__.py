"""Shared utilities: log-space arithmetic, configuration, errors, RNG."""

from repro.common.errors import (
    ReproError,
    ConfigError,
    GraphError,
    DecodeError,
    SimulationError,
)
from repro.common.logmath import (
    LOG_ZERO,
    log_add,
    log_add_array,
    log_mul,
    from_prob,
    to_prob,
    is_log_zero,
)
from repro.common.rng import make_rng

__all__ = [
    "ReproError",
    "ConfigError",
    "GraphError",
    "DecodeError",
    "SimulationError",
    "LOG_ZERO",
    "log_add",
    "log_add_array",
    "log_mul",
    "from_prob",
    "to_prob",
    "is_log_zero",
    "make_rng",
]
