"""Shared utilities: log-space arithmetic, errors, RNG, ASCII plotting.

Substrate for the reproduction rather than any one paper section: the
log-space arithmetic realises the additions-only likelihood algebra of the
paper's Equation 1, and the seeded RNG helpers keep every synthetic
workload bit-reproducible.
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    GraphError,
    DecodeError,
    SimulationError,
)
from repro.common.logmath import (
    LOG_ZERO,
    log_add,
    log_add_array,
    log_mul,
    from_prob,
    to_prob,
    is_log_zero,
)
from repro.common.rng import make_rng

__all__ = [
    "ReproError",
    "ConfigError",
    "GraphError",
    "DecodeError",
    "SimulationError",
    "LOG_ZERO",
    "log_add",
    "log_add_array",
    "log_mul",
    "from_prob",
    "to_prob",
    "is_log_zero",
    "make_rng",
]
