"""Minimal ASCII charts for benchmark reports.

The paper's figures are bar charts and line plots; the benchmark harness
renders text approximations so the *shape* of each reproduced figure is
visible directly in the terminal and in ``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.common.errors import ConfigError


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "",
    log_scale: bool = False,
) -> str:
    """Horizontal bar chart; one labelled bar per (label, value)."""
    if not items:
        raise ConfigError("bar_chart needs at least one item")
    import math

    values = [v for _l, v in items]
    if log_scale:
        if min(values) <= 0:
            raise ConfigError("log_scale requires positive values")
        scaled = [math.log10(v) for v in values]
        lo = min(scaled) - 0.05 * (max(scaled) - min(scaled) + 1e-12)
        span = max(scaled) - lo
        lengths = [
            max(int(width * (s - lo) / span) if span else width, 1)
            for s in scaled
        ]
    else:
        top = max(values)
        if top <= 0:
            top = 1.0
        lengths = [max(int(width * v / top), 0) for v in values]

    label_w = max(len(label) for label, _v in items)
    lines = []
    for (label, value), length in zip(items, lengths):
        lines.append(
            f"{label.ljust(label_w)} | {'#' * length} {value:g}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: Sequence[Tuple[str, Sequence[float]]],
    height: int = 12,
    width: int = 60,
) -> str:
    """Plot one or more y-series against shared x values.

    Each series gets a distinct marker; x positions are spread evenly
    (category-style, matching the paper's swept-parameter figures).
    """
    if not series or not xs:
        raise ConfigError("line_chart needs x values and at least one series")
    markers = "*o+x@%"
    all_y = [y for _name, ys in series for y in ys]
    lo, hi = min(all_y), max(all_y)
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (_name, ys) in enumerate(series):
        marker = markers[s_idx % len(markers)]
        for i, y in enumerate(ys):
            col = int(i * (width - 1) / max(len(xs) - 1, 1))
            row = height - 1 - int((y - lo) / (hi - lo) * (height - 1))
            grid[row][col] = marker

    lines = [f"{hi:10.3g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{lo:10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * width)
    x_labels = "  ".join(str(x) for x in xs)
    lines.append(" " * 12 + x_labels[: width + 10])
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, (name, _ys) in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
