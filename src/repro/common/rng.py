"""Deterministic random-number helpers (reproducibility plumbing for the
Section V evaluation workloads; no direct paper counterpart).

All stochastic pieces of the library (corpus generation, audio synthesis,
DNN initialisation) draw from generators produced here so that every
experiment is reproducible bit-for-bit from its seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int, stream: str = "") -> np.random.Generator:
    """Create an independent generator for ``(seed, stream)``.

    Separate subsystems pass distinct ``stream`` labels so that adding a
    consumer in one subsystem never perturbs the random draws of another.
    """
    ss = np.random.SeedSequence([seed, _stream_key(stream)])
    return np.random.default_rng(ss)


def _stream_key(stream: str) -> int:
    # Stable 63-bit hash of the stream label (Python's hash() is salted).
    key = 1469598103934665603
    for ch in stream.encode("utf-8"):
        key = (key ^ ch) * 1099511628211 % (1 << 63)
    return key
