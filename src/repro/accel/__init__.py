"""Cycle-accurate simulator of the Viterbi-search accelerator.

This package is the paper's primary contribution: the five-stage pipeline of
Figure 3 (State Issuer, Arc Issuer, Acoustic-Likelihood Issuer, Likelihood
Evaluation, Token Issuer) with its State/Arc/Token caches, dual token hash
tables (with backup and overflow buffers), memory controller, and the two
memory-system techniques of Section IV:

* the decoupled access/execute **prefetching architecture** for the Arc
  cache (Request FIFO + Arc FIFO + Reorder Buffer), and
* the **bandwidth-saving direct state lookup** (states sorted by arc count,
  comparator bank + offset table in the State Issuer).

The simulator *functionally decodes* -- its word output is checked against
the reference software decoder -- while accounting cycles at transaction
level: stalls arise only from cache misses and hash collisions, matching
the paper's characterisation of the design.
"""

from repro.accel.config import AcceleratorConfig, CacheConfig, HashConfig
from repro.accel.stats import MemoryTraffic, SimStats
from repro.accel.memory import MemoryController, Region
from repro.accel.cache import Cache
from repro.accel.hashtable import TokenHashTable
from repro.accel.prefetch import PrefetchConfig
from repro.accel.replay import TraceReplayer, replay_decode
from repro.accel.simulator import AcceleratorResult, AcceleratorSimulator
from repro.accel.trace import (
    DecodeTrace,
    FrameTrace,
    TraceRecorder,
    frame_traces,
    record_decode_trace,
    summarize,
)

__all__ = [
    "AcceleratorConfig",
    "CacheConfig",
    "HashConfig",
    "MemoryTraffic",
    "SimStats",
    "MemoryController",
    "Region",
    "Cache",
    "TokenHashTable",
    "PrefetchConfig",
    "AcceleratorResult",
    "AcceleratorSimulator",
    "DecodeTrace",
    "TraceRecorder",
    "TraceReplayer",
    "record_decode_trace",
    "replay_decode",
    "FrameTrace",
    "frame_traces",
    "summarize",
]
