"""Timed replay of recorded decode traces (the replay half of
trace-once/replay-many).

A :class:`~repro.accel.trace.DecodeTrace` fixes everything the beam search
decided -- which tokens were walked, which survived, which arcs were
fetched, which relaxations won.  :class:`TraceReplayer` re-prices that
event stream under an arbitrary
:class:`~repro.accel.config.AcceleratorConfig`: cache geometry, prefetch
decoupling depth, hash sizing, DRAM latency and the Section IV techniques
can all change without re-running the search.  The result is asserted
cycle-identical (and statistics-identical) to
:class:`~repro.accel.simulator.AcceleratorSimulator` in
``tests/test_trace_replay.py``.

Why it is fast: the replay splits the timing model into

* a **vectorized prologue** -- cache line/set streams for every recorded
  address, token-record addresses, direct-lookup eligibility and the full
  hash-table chain behaviour (positions, collisions, overflow points) are
  computed with numpy per configuration, and the State Issuer's token walk
  collapses to arithmetic whenever the frame's hash table never spilled to
  the Overflow Buffer (the common case); and
* a **sequential core** that carries only what is genuinely
  order-dependent -- LRU tag state, the memory controller's in-flight
  window and the pipeline timestamp recurrences -- in one tight loop.

A multi-point design-space sweep then costs one functional search plus one
cheap replay per configuration; :mod:`repro.explore` builds on this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError, SimulationError
from repro.accel.config import AcceleratorConfig
from repro.accel.hashtable import HASH_MULTIPLIER, OVERFLOW_ENTRY_BYTES
from repro.accel.simulator import (
    TOKEN_RECORD_BYTES,
    AcceleratorResult,
    address_map,
)
from repro.accel.stats import SimStats
from repro.accel.trace import DecodeTrace, layout_fingerprint
from repro.decoder.result import SearchStats
from repro.wfst.layout import ARC_BYTES, STATE_BYTES, CompiledWfst
from repro.wfst.sorted_layout import SortedWfst


class TraceReplayer:
    """Re-time a recorded decode under one accelerator configuration.

    Mirrors the :class:`~repro.accel.simulator.AcceleratorSimulator`
    constructor contract: configurations with ``state_direct_enabled``
    require the Section IV-B ``sorted_graph`` and walk its re-ordered
    layout, so they must replay traces recorded on ``sorted_graph.graph``;
    all other configurations replay traces recorded on ``graph``.

    Args:
        graph: baseline compiled graph.
        config: the accelerator configuration to price the trace under.
        sorted_graph: arc-count-sorted layout (required iff the config
            enables the Section IV-B direct state lookup).
    """

    def __init__(
        self,
        graph: CompiledWfst,
        config: AcceleratorConfig = AcceleratorConfig(),
        sorted_graph: Optional[SortedWfst] = None,
    ) -> None:
        if config.state_direct_enabled and sorted_graph is None:
            raise ConfigError(
                "state_direct_enabled requires a sorted_graph "
                "(see repro.wfst.sort_states_by_arc_count)"
            )
        self.graph = sorted_graph.graph if config.state_direct_enabled else graph
        self.sorted_graph = sorted_graph if config.state_direct_enabled else None
        self.config = config
        self._states_base, self._arcs_base, self._tokens_base = address_map(
            self.graph
        )
        self._layout_key = layout_fingerprint(self.graph)
        if self.sorted_graph is not None and self.sorted_graph.tables.boundaries:
            self._direct_boundary = self.sorted_graph.tables.boundaries[-1]
        else:
            self._direct_boundary = 0

    # ------------------------------------------------------------------
    def replay(self, trace: DecodeTrace) -> AcceleratorResult:
        """Price one recorded decode; cycle-identical to the simulator."""
        cfg = self.config
        graph = self.graph
        if (
            trace.num_states != graph.num_states
            or trace.num_arcs != graph.num_arcs
            or trace.layout_key != self._layout_key
        ):
            raise SimulationError(
                "trace/layout mismatch: the trace was recorded on a "
                "different graph layout than the one being replayed "
                "(baseline vs Section IV-B sorted layouts need separate "
                "traces)"
            )
        if 2 * trace.frame_bytes > cfg.acoustic_buffer_bytes:
            raise ConfigError(
                f"acoustic scores need 2 x {trace.frame_bytes} bytes but the "
                f"Acoustic Likelihood Buffer holds only "
                f"{cfg.acoustic_buffer_bytes}"
            )

        F = trace.num_frames
        ne = len(trace.emit_arc_idx)
        nz = len(trace.eps_arc_idx)

        # Vectorized prologue.  Every product is keyed by the config
        # parameters it depends on and memoized on the trace, so a sweep
        # that replays the trace under many configurations pays each
        # distinct precomputation once (e.g. the state-cache stream is
        # shared by every point that only varies the arc cache).
        memo = getattr(trace, "_replay_memo", None)
        if memo is None:
            memo = {}
            trace._replay_memo = memo

        # --- address streams -------------------------------------------
        acc, scc, tcc = cfg.arc_cache, cfg.state_cache, cfg.token_cache
        if acc.perfect:
            ealine = easet = zaline = zaset = None
        else:
            key = ("arc", acc.line_bytes, acc.num_sets)
            cached = memo.get(key)
            if cached is None:
                lines = (self._arcs_base + trace.emit_arc_idx * ARC_BYTES) // acc.line_bytes
                ealine = lines.tolist()
                easet = (lines % acc.num_sets).tolist()
                lines = (self._arcs_base + trace.eps_arc_idx * ARC_BYTES) // acc.line_bytes
                zaline = lines.tolist()
                zaset = (lines % acc.num_sets).tolist()
                memo[key] = (ealine, easet, zaline, zaset)
            else:
                ealine, easet, zaline, zaset = cached
        if scc.perfect:
            esline = esset = zsline = zsset = None
        else:
            key = ("state", scc.line_bytes, scc.num_sets)
            cached = memo.get(key)
            if cached is None:
                lines = (self._states_base + trace.emit_states * STATE_BYTES) // scc.line_bytes
                esline = lines.tolist()
                esset = (lines % scc.num_sets).tolist()
                lines = (self._states_base + trace.eps_states * STATE_BYTES) // scc.line_bytes
                zsline = lines.tolist()
                zsset = (lines % scc.num_sets).tolist()
                memo[key] = (esline, esset, zsline, zsset)
            else:
                esline, esset, zsline, zsset = cached
        n_improve = trace.search.tokens_created + trace.search.tokens_updated
        if tcc.perfect:
            tline = tset = None
        else:
            key = ("token", tcc.line_bytes, tcc.num_sets)
            cached = memo.get(key)
            if cached is None:
                lines = (
                    self._tokens_base
                    + np.arange(n_improve, dtype=np.int64) * TOKEN_RECORD_BYTES
                ) // tcc.line_bytes
                tline = lines.tolist()
                tset = (lines % tcc.num_sets).tolist()
                memo[key] = (tline, tset)
            else:
                tline, tset = cached

        # --- direct-lookup eligibility (Section IV-B) ------------------
        boundary = self._direct_boundary if self.sorted_graph else 0
        key = ("direct", boundary)
        cached = memo.get(key)
        if cached is None:
            if boundary > 0:
                emit_mask = trace.emit_states < boundary
                eps_mask = trace.eps_states < boundary
                edirect = emit_mask.tolist()
                zdirect = eps_mask.tolist()
                direct_total = int(np.count_nonzero(emit_mask))
                direct_total += int(np.count_nonzero(eps_mask))
            else:
                edirect = [False] * len(trace.emit_states)
                zdirect = [False] * len(trace.eps_states)
                direct_total = 0
            memo[key] = (edirect, zdirect, direct_total)
        else:
            edirect, zdirect, direct_total = cached
        fetched_total = (
            len(trace.emit_states) + len(trace.eps_states) - direct_total
        )

        # --- traceback-buffer commit schedule --------------------------
        # Windowed-traceback pricing (the design axis of
        # repro.decoder.traceback): every ``traceback_window_frames``
        # frames the commit re-reads each backpointer record written
        # since the last commit plus the records the previous commit
        # retained, then rewrites the records still reachable from the
        # live tokens (approximated by the next frame's token-walk
        # count, which is exactly the live frontier the commit keeps).
        # Per-group write counts and per-frame walk counts are config-
        # independent, so one precomputation serves a whole sweep.
        tb_win = cfg.traceback_window_frames
        tb_cpr = cfg.traceback_cycles_per_record
        if tb_win > 0:
            cached = memo.get("traceback")
            if cached is None:
                eimp_cum = np.concatenate(
                    ([0], np.cumsum(trace.emit_improved, dtype=np.int64))
                )
                zimp_cum = np.concatenate(
                    ([0], np.cumsum(trace.eps_improved, dtype=np.int64))
                )
                eao = trace.emit_arc_offsets
                zao = trace.eps_arc_offsets
                group_writes = [int(zimp_cum[zao[1]] - zimp_cum[zao[0]])]
                for g in range(1, F + 1):
                    group_writes.append(
                        int(eimp_cum[eao[g]] - eimp_cum[eao[g - 1]])
                        + int(zimp_cum[zao[g + 1]] - zimp_cum[zao[g]])
                    )
                walk_counts = np.diff(trace.read_offsets).tolist()
                cached = (group_writes, walk_counts)
                memo["traceback"] = cached
            tb_group_writes, tb_walk_counts = cached
        else:
            tb_group_writes = tb_walk_counts = None

        # --- hash-table chain behaviour --------------------------------
        hcfg = cfg.hash_table
        key = ("hash", hcfg.num_entries, hcfg.backup_entries, hcfg.perfect)
        cached = memo.get(key)
        if cached is None:
            cached = self._hash_schedule(trace)
            memo[key] = cached
        (
            ehc, zhc, end_backup, posmaps,
            hash_collisions, hash_overflows, hash_base_cycles,
        ) = cached

        # --- per-event payload lists (config-independent) --------------
        cached = memo.get("payload")
        if cached is None:
            cached = (
                trace.emit_offsets.tolist(),
                trace.eps_offsets.tolist(),
                trace.read_offsets.tolist(),
                trace.emit_n.tolist(),
                trace.emit_read_idx.tolist(),
                trace.emit_improved.tolist(),
                trace.eps_n.tolist(),
                trace.eps_src.tolist(),
                trace.eps_improved.tolist(),
            )
            memo["payload"] = cached
        (
            emit_offsets, eps_offsets, read_offsets,
            en, eridx, eimp, zn, zsrc, zimp,
        ) = cached

        # --- sequential core -------------------------------------------
        aperfect, sperfect, tperfect = acc.perfect, scc.perfect, tcc.perfect
        a_assoc, s_assoc, t_assoc = acc.assoc, scc.assoc, tcc.assoc
        a_line, s_line, t_line = acc.line_bytes, scc.line_bytes, tcc.line_bytes
        arc_sets: List[dict] = (
            [] if aperfect else [dict() for _ in range(acc.num_sets)]
        )
        state_sets: List[dict] = (
            [] if sperfect else [dict() for _ in range(scc.num_sets)]
        )
        token_sets: List[dict] = (
            [] if tperfect else [dict() for _ in range(tcc.num_sets)]
        )
        hperfect = cfg.hash_table.perfect
        backup_entries = cfg.hash_table.backup_entries

        sw_depth = cfg.state_issuer_inflight
        aw_depth = cfg.arc_issue_window
        tw_depth = cfg.token_issuer_inflight

        lat = cfg.mem_latency_cycles
        mi = cfg.mem_max_inflight
        # MemoryController.request's bounded in-flight window as a ring
        # buffer.  Seeding with -inf sentinels makes the not-yet-full case
        # indistinguishable from the full case (the queueing condition
        # ``oldest + latency > t`` is always false for a sentinel), which
        # keeps the hot loop free of length checks.
        neg_inf = -(1 << 60)
        recent: List[int] = [neg_inf] * mi
        rpos = 0
        ms_state = ms_arc = ms_token = wb_token = 0
        r_states = r_arcs = r_tokens = r_overflow = w_tokens = 0
        hash_extra_cycles = 0
        jimp = 0  # global improvement (backpointer write) counter
        ek = 0    # global emit-arc cursor
        pk = 0    # global epsilon-arc cursor

        def mem_req(t: int) -> int:
            # MemoryController.request: bounded in-flight queueing window.
            nonlocal rpos
            oldest = recent[rpos]
            if oldest + lat > t:
                t = oldest + lat
            recent[rpos] = t
            rpos += 1
            if rpos == mi:
                rpos = 0
            return t + lat

        def run_emit(frame: int, cycle: int, fb: int, read_done) -> int:
            # Issuer windows as zero-seeded rings: RollingWindow.gate()
            # returns 0 until the window fills and completion times are
            # never negative, so a pre-filled ring is indistinguishable
            # from the growing deque while avoiding length checks.
            nonlocal ek, jimp, rpos
            nonlocal ms_state, ms_arc, ms_token, wb_token
            nonlocal r_states, r_arcs, r_tokens, r_overflow, w_tokens
            nonlocal hash_extra_cycles
            s0 = emit_offsets[frame]
            s1 = emit_offsets[frame + 1]
            proc_time = cycle
            hash_ready = cycle
            sw = [0] * sw_depth
            aw = [0] * aw_depth
            tw = [0] * tw_depth
            sw_pos = aw_pos = tw_pos = 0
            arc_gate_last = -1
            k = ek
            for i in range(s0, s1):
                ridx = eridx[i]
                if read_done is None:
                    t = fb + ridx + 1
                else:
                    t = read_done.get(ridx, fb + ridx + 1)
                if t < cycle:
                    t = cycle
                if edirect[i]:
                    state_done = t + 1
                else:
                    g = sw[sw_pos]
                    start = t if t > g else g
                    if sperfect:
                        state_done = start + 1
                    else:
                        line = esline[i]
                        ways = state_sets[esset[i]]
                        ft = ways.pop(line, None)
                        if ft is not None:
                            ways[line] = ft
                            state_done = start + 1 if start + 1 > ft else ft
                        else:
                            ms_state += 1
                            if len(ways) >= s_assoc:
                                del ways[next(iter(ways))]
                            r_states += s_line
                            ft = mem_req(start)
                            ways[line] = ft
                            state_done = ft
                    sw[sw_pos] = state_done
                    sw_pos += 1
                    if sw_pos == sw_depth:
                        sw_pos = 0
                for _ in range(en[i]):
                    g = aw[aw_pos]
                    req = state_done if state_done > g else g
                    if arc_gate_last >= req:
                        req = arc_gate_last + 1
                    arc_gate_last = req
                    if aperfect:
                        arc_data = req + 1
                    else:
                        line = ealine[k]
                        ways = arc_sets[easet[k]]
                        ft = ways.pop(line, None)
                        if ft is not None:
                            ways[line] = ft
                            arc_data = req + 1 if req + 1 > ft else ft
                        else:
                            ms_arc += 1
                            if len(ways) >= a_assoc:
                                del ways[next(iter(ways))]
                            r_arcs += a_line
                            # Inlined mem_req (hottest miss path).
                            oldest = recent[rpos]
                            issue = req if oldest + lat <= req else oldest + lat
                            recent[rpos] = issue
                            rpos += 1
                            if rpos == mi:
                                rpos = 0
                            ft = issue + lat
                            ways[line] = ft
                            arc_data = ft
                    aw[aw_pos] = arc_data
                    aw_pos += 1
                    if aw_pos == aw_depth:
                        aw_pos = 0
                    pt = proc_time + 1
                    ad = arc_data + 1
                    proc_time = pt if pt > ad else ad
                    hs = proc_time if proc_time > hash_ready else hash_ready
                    hc = ehc[k]
                    if hc > 0:
                        hash_ready = hs + hc
                    else:
                        r_overflow += OVERFLOW_ENTRY_BYTES
                        done = mem_req(hs)
                        hash_extra_cycles += done - hs
                        hash_ready = done
                    if eimp[k]:
                        g = tw[tw_pos]
                        wslot = hash_ready if hash_ready > g else g
                        if tperfect:
                            tdone = wslot + 1
                        else:
                            line = tline[jimp]
                            ways = token_sets[tset[jimp]]
                            ft = ways.pop(line, None)
                            if ft is not None:
                                ways[line] = ft
                                tdone = wslot + 1 if wslot + 1 > ft else ft
                            else:
                                ms_token += 1
                                if len(ways) >= t_assoc:
                                    del ways[next(iter(ways))]
                                    wb_token += 1
                                    w_tokens += t_line
                                r_tokens += t_line
                                ft = mem_req(wslot)
                                ways[line] = ft
                                tdone = ft
                        jimp += 1
                        tw[tw_pos] = tdone
                        tw_pos += 1
                        if tw_pos == tw_depth:
                            tw_pos = 0
                    k += 1
            ek = k
            end = proc_time
            if hash_ready > end:
                end = hash_ready
            drain = max(tw)
            if drain > end:
                end = drain
            if cycle > end:
                end = cycle
            return end

        def run_eps(p: int, cycle: int) -> int:
            nonlocal pk, jimp
            nonlocal ms_state, ms_arc, ms_token, wb_token
            nonlocal r_states, r_arcs, r_tokens, r_overflow, w_tokens
            nonlocal hash_extra_cycles
            e0 = eps_offsets[p]
            e1 = eps_offsets[p + 1]
            proc_time = cycle
            hash_ready = cycle
            sw = [0] * sw_depth
            aw = [0] * aw_depth
            tw = [0] * tw_depth
            sw_pos = aw_pos = tw_pos = 0
            arc_gate_last = -1
            issue_last = -1
            arc_avail: List[int] = []
            k = pk
            for i in range(e0, e1):
                src = zsrc[i]
                avail = cycle if src < 0 else arc_avail[src]
                slot = avail if avail > issue_last else issue_last + 1
                issue_last = slot
                if zdirect[i]:
                    state_done = slot + 1
                else:
                    g = sw[sw_pos]
                    start = slot if slot > g else g
                    if sperfect:
                        state_done = start + 1
                    else:
                        line = zsline[i]
                        ways = state_sets[zsset[i]]
                        ft = ways.pop(line, None)
                        if ft is not None:
                            ways[line] = ft
                            state_done = start + 1 if start + 1 > ft else ft
                        else:
                            ms_state += 1
                            if len(ways) >= s_assoc:
                                del ways[next(iter(ways))]
                            r_states += s_line
                            ft = mem_req(start)
                            ways[line] = ft
                            state_done = ft
                    sw[sw_pos] = state_done
                    sw_pos += 1
                    if sw_pos == sw_depth:
                        sw_pos = 0
                for _ in range(zn[i]):
                    g = aw[aw_pos]
                    req = state_done if state_done > g else g
                    if arc_gate_last >= req:
                        req = arc_gate_last + 1
                    arc_gate_last = req
                    if aperfect:
                        arc_data = req + 1
                    else:
                        line = zaline[k]
                        ways = arc_sets[zaset[k]]
                        ft = ways.pop(line, None)
                        if ft is not None:
                            ways[line] = ft
                            arc_data = req + 1 if req + 1 > ft else ft
                        else:
                            ms_arc += 1
                            if len(ways) >= a_assoc:
                                del ways[next(iter(ways))]
                            r_arcs += a_line
                            ft = mem_req(req)
                            ways[line] = ft
                            arc_data = ft
                    aw[aw_pos] = arc_data
                    aw_pos += 1
                    if aw_pos == aw_depth:
                        aw_pos = 0
                    pt = proc_time + 1
                    ad = arc_data + 1
                    proc_time = pt if pt > ad else ad
                    arc_avail.append(proc_time)
                    hs = proc_time if proc_time > hash_ready else hash_ready
                    hc = zhc[k]
                    if hc > 0:
                        hash_ready = hs + hc
                    else:
                        r_overflow += OVERFLOW_ENTRY_BYTES
                        done = mem_req(hs)
                        hash_extra_cycles += done - hs
                        hash_ready = done
                    if zimp[k]:
                        g = tw[tw_pos]
                        wslot = hash_ready if hash_ready > g else g
                        if tperfect:
                            tdone = wslot + 1
                        else:
                            line = tline[jimp]
                            ways = token_sets[tset[jimp]]
                            ft = ways.pop(line, None)
                            if ft is not None:
                                ways[line] = ft
                                tdone = wslot + 1 if wslot + 1 > ft else ft
                            else:
                                ms_token += 1
                                if len(ways) >= t_assoc:
                                    del ways[next(iter(ways))]
                                    wb_token += 1
                                    w_tokens += t_line
                                r_tokens += t_line
                                ft = mem_req(wslot)
                                ways[line] = ft
                                tdone = ft
                        jimp += 1
                        tw[tw_pos] = tdone
                        tw_pos += 1
                        if tw_pos == tw_depth:
                            tw_pos = 0
                    k += 1
            pk = k
            end = proc_time
            if hash_ready > end:
                end = hash_ready
            drain = max(tw)
            if drain > end:
                end = drain
            if cycle > end:
                end = cycle
            return end

        # --- decode timeline -------------------------------------------
        frame_overhead = cfg.frame_overhead_cycles
        frame_cycles: List[int] = []
        r_traceback = w_traceback = 0
        tb_pending = tb_group_writes[0] if tb_win else 0
        tb_retained = 0
        cycle = run_eps(0, 0)
        for f in range(F):
            cycle += frame_overhead
            fb = cycle
            read_done = None
            if not hperfect and end_backup[f] > backup_entries:
                # The frame's table spilled to the Overflow Buffer: walk
                # the token reads to issue the DRAM round trips.
                posmap = posmaps[f]
                read_done = {}
                m0 = read_offsets[f]
                states = trace.read_states[m0:read_offsets[f + 1]].tolist()
                for i, s in enumerate(states):
                    if posmap.get(s, 0) > 0:
                        r_overflow += OVERFLOW_ENTRY_BYTES
                        read_done[i] = mem_req(fb + i)
            cycle = run_emit(f, cycle, fb, read_done)
            cycle = run_eps(f + 1, cycle)
            if tb_win:
                tb_pending += tb_group_writes[f + 1]
                if (f + 1) % tb_win == 0:
                    # Commit stall lands inside this frame's latency: read
                    # everything written this window plus last commit's
                    # survivors, rewrite the live frontier's records.
                    reads = tb_retained + tb_pending
                    if f + 1 < F:
                        retained = tb_walk_counts[f + 1]
                    else:
                        retained = tb_walk_counts[F - 1] if F else 0
                    cycle += (reads + retained) * tb_cpr
                    r_traceback += reads * TOKEN_RECORD_BYTES
                    w_traceback += retained * TOKEN_RECORD_BYTES
                    tb_pending = 0
                    tb_retained = retained
            frame_cycles.append(cycle - fb)

        # Flush of dirty token-record lines (CPU reads them to backtrack).
        if not tperfect:
            for ways in token_sets:
                n = len(ways)
                if n:
                    wb_token += n
                    w_tokens += n * t_line

        # --- assemble statistics ---------------------------------------
        stats = SimStats(frames=F)
        stats.cycles = cycle
        stats.frame_cycles = frame_cycles
        n_reads = len(trace.read_states)
        stats.tokens_read = n_reads
        stats.tokens_written = n_improve
        stats.arcs_processed = ne
        stats.epsilon_arcs_processed = nz
        stats.states_fetched = fetched_total
        stats.states_direct = direct_total
        stats.fp_adds = 2 * ne + nz
        stats.fp_compares = n_reads + ne + nz
        stats.acoustic_lookups = ne
        stats.state_cache.accesses = fetched_total
        stats.state_cache.misses = ms_state
        stats.arc_cache.accesses = ne + nz
        stats.arc_cache.misses = ms_arc
        stats.token_cache.accesses = n_improve
        stats.token_cache.misses = ms_token
        stats.token_cache.writebacks = wb_token
        stats.hash.requests = ne + nz
        stats.hash.total_cycles = hash_base_cycles + hash_extra_cycles
        stats.hash.collisions = hash_collisions
        stats.hash.overflows = hash_overflows
        for region, nbytes in (
            ("states", r_states), ("arcs", r_arcs),
            ("tokens", r_tokens), ("overflow", r_overflow),
            ("traceback", r_traceback),
        ):
            if nbytes:
                stats.traffic.add(region, nbytes, write=False)
        if w_tokens:
            stats.traffic.add("tokens", w_tokens, write=True)
        if w_traceback:
            stats.traffic.add("traceback", w_traceback, write=True)

        return AcceleratorResult(
            words=trace.words,
            log_likelihood=trace.log_likelihood,
            reached_final=trace.reached_final,
            stats=stats,
            search=_copy_search(trace.search),
        )

    # ------------------------------------------------------------------
    def _hash_schedule(
        self, trace: DecodeTrace
    ) -> Tuple[List[int], List[int], List[int], List[Optional[Dict[int, int]]], int, int, int]:
        """Precompute the hash tables' chain behaviour for this config.

        The two per-frame tables alternate; "group" ``g`` is the insertion
        sequence one table receives before being read: group 0 is the
        initial epsilon closure, group ``g >= 1`` is frame ``g - 1``'s
        non-epsilon arcs followed by its in-frame epsilon closure.  The
        token walk of frame ``f`` reads group ``f``'s table.

        Returns per-arc hash-access costs in cycles for the emit and
        epsilon streams (-1 marks an access that spilled to the Overflow
        Buffer and must be priced with a DRAM round trip), each group's
        final backup-buffer occupancy, per-group ``state -> chain
        position`` maps (built only for groups that overflowed), and the
        aggregate collision / overflow / cycle counters.
        """
        hcfg = self.config.hash_table
        ne = len(trace.emit_arc_idx)
        nz = len(trace.eps_arc_idx)
        F = trace.num_frames
        if hcfg.perfect:
            return [1] * ne, [1] * nz, [0] * (F + 1), [None] * (F + 1), 0, 0, ne + nz

        entries = np.uint64(hcfg.num_entries)
        mult = np.uint64(HASH_MULTIPLIER)
        backup = hcfg.backup_entries
        ehc = np.ones(ne, dtype=np.int64)
        zhc = np.ones(nz, dtype=np.int64)
        eao = trace.emit_arc_offsets
        zao = trace.eps_arc_offsets
        ed = trace.emit_arc_dest
        zd = trace.eps_arc_dest
        end_backup = [0] * (F + 1)
        posmaps: List[Optional[Dict[int, int]]] = [None] * (F + 1)
        collisions = overflows = base_cycles = 0

        for g in range(F + 1):
            if g >= 1:
                emit_part = ed[eao[g - 1]:eao[g]]
                eps_part = zd[zao[g]:zao[g + 1]]
                accesses = np.concatenate((emit_part, eps_part))
                n_emit_part = len(emit_part)
            else:
                accesses = zd[zao[0]:zao[1]]
                n_emit_part = 0
            m = len(accesses)
            if m == 0:
                continue
            uniq, first_idx, inv = np.unique(
                accesses, return_index=True, return_inverse=True
            )
            nu = len(uniq)
            # Multiplicative hashing, exact in uint64 (state < 2**32).
            buckets = (uniq.astype(np.uint64) * mult) % entries
            order = np.lexsort((first_idx, buckets))
            b_sorted = buckets[order]
            run_start = np.empty(nu, dtype=bool)
            run_start[0] = True
            if nu > 1:
                run_start[1:] = b_sorted[1:] != b_sorted[:-1]
            idxs = np.arange(nu, dtype=np.int64)
            run_anchor = np.maximum.accumulate(np.where(run_start, idxs, 0))
            pos_u = np.empty(nu, dtype=np.int64)
            pos_u[order] = idxs - run_anchor
            collisions += int(np.count_nonzero(pos_u > 0))
            claim_inc = np.zeros(m, dtype=np.int64)
            claim_inc[first_idx[pos_u > 0]] = 1
            backup_after = np.cumsum(claim_inc)
            pos_acc = pos_u[inv]
            over = (pos_acc > 0) & (backup_after > backup)
            n_over = int(np.count_nonzero(over))
            overflows += n_over
            cost = 1 + pos_acc
            base_cycles += int(cost.sum())
            if n_over:
                base_cycles -= int(cost[over].sum())
                cost[over] = -1
            if n_emit_part:
                ehc[eao[g - 1]:eao[g]] = cost[:n_emit_part]
            zhc[zao[g]:zao[g + 1]] = cost[n_emit_part:]
            eb = int(backup_after[-1])
            end_backup[g] = eb
            if eb > backup and g < F:
                posmaps[g] = dict(zip(uniq.tolist(), pos_u.tolist()))

        return (
            ehc.tolist(), zhc.tolist(), end_backup, posmaps,
            collisions, overflows, base_cycles,
        )


def _copy_search(search: SearchStats) -> SearchStats:
    """Fresh SearchStats so replay results never alias the trace's lists."""
    return SearchStats(
        frames=search.frames,
        tokens_pruned=search.tokens_pruned,
        states_expanded=search.states_expanded,
        arcs_processed=search.arcs_processed,
        epsilon_arcs_processed=search.epsilon_arcs_processed,
        tokens_created=search.tokens_created,
        tokens_updated=search.tokens_updated,
        visited_state_degrees=list(search.visited_state_degrees),
        active_tokens_per_frame=list(search.active_tokens_per_frame),
    )


def replay_decode(
    graph: CompiledWfst,
    trace: DecodeTrace,
    config: AcceleratorConfig = AcceleratorConfig(),
    sorted_graph: Optional[SortedWfst] = None,
) -> AcceleratorResult:
    """Convenience wrapper: replay one trace under one configuration."""
    return TraceReplayer(graph, config, sorted_graph=sorted_graph).replay(trace)
