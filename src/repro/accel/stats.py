"""Simulation statistics: cycle counts, cache behaviour, memory traffic.

These counters are the simulator's observable output for the paper's
evaluation: cycles drive the Figure 9/10 performance results, cache and
hash counters the Figures 4-5 sweeps, and the traffic breakdown Figure
13.  The energy model (:mod:`repro.energy.components`) prices a decode
entirely from a :class:`SimStats` instance.  The trace replayer
(:mod:`repro.accel.replay`) reproduces every field bit-for-bit, which the
equivalence suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CacheStats:
    """Access counters for one cache.

    All fields are event counts (one access = one cache lookup of one
    line; one writeback = one dirty-line eviction or flush).
    """

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


@dataclass
class HashStats:
    """Access counters for the token hash tables (both per-frame tables)."""

    #: Insert/update lookups, in requests.
    requests: int = 0
    #: Cycles spent across all requests (chained hops add cycles; spills
    #: to the Overflow Buffer add DRAM round trips).
    total_cycles: int = 0
    #: First-time bucket conflicts (entries placed on a backup chain).
    collisions: int = 0
    #: Accesses served from the in-memory Overflow Buffer.
    overflows: int = 0

    @property
    def avg_cycles_per_request(self) -> float:
        if self.requests == 0:
            return 1.0
        return self.total_cycles / self.requests


@dataclass
class MemoryTraffic:
    """Off-chip DRAM traffic, in bytes, split by data region (Figure 13)."""

    read_bytes: Dict[str, int] = field(default_factory=dict)
    write_bytes: Dict[str, int] = field(default_factory=dict)

    def add(self, region: str, nbytes: int, write: bool) -> None:
        book = self.write_bytes if write else self.read_bytes
        book[region] = book.get(region, 0) + nbytes

    def total_bytes(self) -> int:
        return sum(self.read_bytes.values()) + sum(self.write_bytes.values())

    def region_bytes(self, region: str) -> int:
        return self.read_bytes.get(region, 0) + self.write_bytes.get(region, 0)

    def breakdown(self) -> Dict[str, int]:
        regions = set(self.read_bytes) | set(self.write_bytes)
        return {r: self.region_bytes(r) for r in sorted(regions)}


@dataclass
class SimStats:
    """All counters produced by one accelerator decode."""

    #: Total decode latency, in cycles at :attr:`AcceleratorConfig.frequency_hz`.
    cycles: int = 0
    #: 10 ms acoustic frames decoded.
    frames: int = 0
    #: Non-epsilon / epsilon arc records streamed, in arcs.
    arcs_processed: int = 0
    epsilon_arcs_processed: int = 0
    #: Tokens walked from / inserted into the frame hash tables.
    tokens_read: int = 0
    tokens_written: int = 0
    #: State records resolved through the State cache vs computed by the
    #: Section IV-B comparator bank, in fetches.
    states_fetched: int = 0
    states_direct: int = 0
    #: Likelihood Evaluation Unit operations (for the energy model, at
    #: :attr:`~repro.energy.components.AcceleratorEnergyModel.fp_op_pj`
    #: pJ per op).
    fp_adds: int = 0
    fp_compares: int = 0
    #: Reads of the on-chip Acoustic Likelihood Buffer.
    acoustic_lookups: int = 0

    state_cache: CacheStats = field(default_factory=CacheStats)
    arc_cache: CacheStats = field(default_factory=CacheStats)
    token_cache: CacheStats = field(default_factory=CacheStats)
    hash: HashStats = field(default_factory=HashStats)
    #: Off-chip traffic, in bytes (Figure 13's breakdown).
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)

    #: Per-frame latency, in cycles (one entry per decoded frame).
    frame_cycles: List[int] = field(default_factory=list)

    def seconds(self, frequency_hz: float) -> float:
        """Wall-clock decode time at the given clock."""
        return self.cycles / frequency_hz

    def decode_time_per_speech_second(self, frequency_hz: float) -> float:
        """The paper's headline metric: decode seconds per second of speech
        (frames are 10 ms each)."""
        speech_seconds = self.frames * 0.01
        if speech_seconds == 0:
            return 0.0
        return self.seconds(frequency_hz) / speech_seconds

    @classmethod
    def merge(cls, stats_list) -> "SimStats":
        """Aggregate the counters of several decodes (e.g. a test set)."""
        merged = cls()
        for s in stats_list:
            merged.cycles += s.cycles
            merged.frames += s.frames
            merged.arcs_processed += s.arcs_processed
            merged.epsilon_arcs_processed += s.epsilon_arcs_processed
            merged.tokens_read += s.tokens_read
            merged.tokens_written += s.tokens_written
            merged.states_fetched += s.states_fetched
            merged.states_direct += s.states_direct
            merged.fp_adds += s.fp_adds
            merged.fp_compares += s.fp_compares
            merged.acoustic_lookups += s.acoustic_lookups
            for cache_name in ("state_cache", "arc_cache", "token_cache"):
                dst = getattr(merged, cache_name)
                src = getattr(s, cache_name)
                dst.accesses += src.accesses
                dst.misses += src.misses
                dst.writebacks += src.writebacks
            merged.hash.requests += s.hash.requests
            merged.hash.total_cycles += s.hash.total_cycles
            merged.hash.collisions += s.hash.collisions
            merged.hash.overflows += s.hash.overflows
            for region, nbytes in s.traffic.read_bytes.items():
                merged.traffic.add(region, nbytes, write=False)
            for region, nbytes in s.traffic.write_bytes.items():
                merged.traffic.add(region, nbytes, write=True)
            merged.frame_cycles.extend(s.frame_cycles)
        return merged
