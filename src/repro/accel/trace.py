"""Per-frame pipeline traces for analysis and debugging.

A :class:`FrameTrace` summarises what the accelerator did in each 10 ms
frame -- cycles, active tokens, arcs, per-cache miss behaviour, DRAM
traffic -- derived from a decode's statistics.  Useful for spotting
pathological frames (hash overflow storms, beam explosions) and for the
per-frame plots architecture papers live on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.accel.simulator import AcceleratorResult


@dataclass(frozen=True)
class FrameTrace:
    """One frame's summary."""

    frame: int
    cycles: int
    active_tokens: int

    @property
    def microseconds_at(self) -> float:
        """Frame decode time at the Table I clock (600 MHz)."""
        return self.cycles / 600.0


def frame_traces(result: AcceleratorResult) -> List[FrameTrace]:
    """Expand a decode result into per-frame trace entries."""
    actives = result.search.active_tokens_per_frame
    traces = []
    for i, cycles in enumerate(result.stats.frame_cycles):
        traces.append(
            FrameTrace(
                frame=i,
                cycles=cycles,
                active_tokens=actives[i] if i < len(actives) else 0,
            )
        )
    return traces


def summarize(result: AcceleratorResult) -> str:
    """A compact text summary of a decode (for logs and CLI output)."""
    s = result.stats
    traces = frame_traces(result)
    worst = max(traces, key=lambda t: t.cycles) if traces else None
    lines = [
        f"frames={s.frames} cycles={s.cycles} "
        f"({s.cycles / max(s.frames, 1):.0f}/frame)",
        f"arcs={s.arcs_processed} eps_arcs={s.epsilon_arcs_processed} "
        f"tokens_written={s.tokens_written}",
        f"miss: state={s.state_cache.miss_ratio:.3f} "
        f"arc={s.arc_cache.miss_ratio:.3f} "
        f"token={s.token_cache.miss_ratio:.3f}",
        f"hash: {s.hash.avg_cycles_per_request:.2f} cycles/request, "
        f"{s.hash.collisions} collisions, {s.hash.overflows} overflows",
        f"DRAM: {s.traffic.total_bytes() / 1024:.1f} KB "
        f"{s.traffic.breakdown()}",
    ]
    if worst is not None:
        lines.append(
            f"worst frame: #{worst.frame} at {worst.cycles} cycles "
            f"({worst.active_tokens} active tokens)"
        )
    return "\n".join(lines)
