"""Decode event traces: record the functional search once, re-time it many
times (paper, Sections III-V).

Two layers live here:

* :class:`FrameTrace` / :func:`frame_traces` / :func:`summarize` -- per-frame
  summaries of a *timed* decode (cycles, active tokens, DRAM behaviour),
  for spotting pathological frames and the per-frame plots architecture
  papers live on.

* :class:`DecodeTrace` / :class:`TraceRecorder` -- the trace-once /
  replay-many machinery behind the design-space sweeps.  The paper's
  evaluation (Figures 4-14) varies only *timing* parameters -- cache
  geometry, prefetch depth, hash sizing, DRAM latency -- under which the
  beam search itself is invariant.  :class:`TraceRecorder` runs the
  functional search exactly once and records every event the timing model
  consumes as compact numpy arrays:

  - the State Issuer's per-frame token walk (hash reads),
  - the surviving tokens issued per frame (state fetches),
  - every non-epsilon arc fetch with its destination and whether the
    relaxation improved the destination token (backpointer write),
  - every epsilon-closure visit with the worklist provenance needed to
    reconstruct when the State Issuer saw each discovered token.

  Since the kernel refactor the search itself is the shared
  :class:`repro.decoder.kernel.ReferenceKernel` -- the scalar discipline
  whose event order is bit-for-bit the hardware model's -- and the
  recording is a :class:`~repro.decoder.kernel.KernelObserver`
  (:class:`_TraceObserver`) subscribed to it.  Any search-semantics
  change (a new pruning strategy, say) lands in the kernel once and the
  recorder, the software decoders and the simulator all follow.

  :class:`repro.accel.replay.TraceReplayer` re-prices such a trace under
  any :class:`~repro.accel.config.AcceleratorConfig`, cycle-identical to
  the monolithic :class:`~repro.accel.simulator.AcceleratorSimulator`
  (asserted in ``tests/test_trace_replay.py``).  Traces are tied to a
  graph *layout*: configurations using the Section IV-B sorted layout
  replay a trace recorded on the sorted graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.common.errors import DecodeError, SimulationError
from repro.acoustic.scorer import AcousticScores
from repro.accel.simulator import AcceleratorResult
from repro.decoder.kernel import (
    ClosureEvent,
    DecoderConfig,
    ExpandEvent,
    KernelObserver,
    PRUNING_STRATEGIES,
    PruneEvent,
    ReferenceKernel,
)
from repro.decoder.result import SearchStats
from repro.wfst.layout import CompiledWfst

#: Bump when the array schema changes; saved traces carry it so stale disk
#: caches are rejected instead of misread.  v2: pruning-strategy metadata
#: (``pruning`` / ``target_active``) joined the header.  v3: layout keys
#: derive from the graph compiler's content fingerprint
#: (:meth:`repro.wfst.layout.CompiledWfst.fingerprint`) instead of an
#: ad-hoc checksum.
TRACE_FORMAT_VERSION = 3


def layout_fingerprint(graph: CompiledWfst) -> int:
    """The 64-bit layout key of a graph, for trace headers.

    Distinguishes layouts with equal state/arc counts -- in particular a
    graph from its Section IV-B sorted permutation -- so a trace is never
    replayed against the wrong address map.  Derived from the shared
    content fingerprint (computed once per graph and persisted by the
    graph compiler's artifact cache), so the trace layer, the sweep caches
    and the artifact store all agree on one graph identity.
    """
    return int(graph.fingerprint()[:16], 16)


# ----------------------------------------------------------------------
# Per-frame summaries of a timed decode
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FrameTrace:
    """One frame's summary of a timed decode."""

    frame: int
    cycles: int
    active_tokens: int

    @property
    def microseconds_at(self) -> float:
        """Frame decode time in microseconds at the Table I clock (600 MHz)."""
        return self.cycles / 600.0


def frame_traces(result: AcceleratorResult) -> List[FrameTrace]:
    """Expand a decode result into per-frame trace entries."""
    actives = result.search.active_tokens_per_frame
    traces = []
    for i, cycles in enumerate(result.stats.frame_cycles):
        traces.append(
            FrameTrace(
                frame=i,
                cycles=cycles,
                active_tokens=actives[i] if i < len(actives) else 0,
            )
        )
    return traces


def summarize(result: AcceleratorResult) -> str:
    """A compact text summary of a decode (for logs and CLI output)."""
    s = result.stats
    traces = frame_traces(result)
    worst = max(traces, key=lambda t: t.cycles) if traces else None
    lines = [
        f"frames={s.frames} cycles={s.cycles} "
        f"({s.cycles / max(s.frames, 1):.0f}/frame)",
        f"arcs={s.arcs_processed} eps_arcs={s.epsilon_arcs_processed} "
        f"tokens_written={s.tokens_written}",
        f"miss: state={s.state_cache.miss_ratio:.3f} "
        f"arc={s.arc_cache.miss_ratio:.3f} "
        f"token={s.token_cache.miss_ratio:.3f}",
        f"hash: {s.hash.avg_cycles_per_request:.2f} cycles/request, "
        f"{s.hash.collisions} collisions, {s.hash.overflows} overflows",
        f"DRAM: {s.traffic.total_bytes() / 1024:.1f} KB "
        f"{s.traffic.breakdown()}",
    ]
    if worst is not None:
        lines.append(
            f"worst frame: #{worst.frame} at {worst.cycles} cycles "
            f"({worst.active_tokens} active tokens)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The recorded functional event trace
# ----------------------------------------------------------------------
@dataclass
class DecodeTrace:
    """Every timing-relevant event of one functional beam-search decode.

    Array groups use CSR-style offsets.  With ``F`` frames there are
    ``F + 1`` epsilon passes: pass 0 is the initial closure from the start
    state, pass ``f + 1`` is the closure inside frame ``f``.

    Attributes:
        num_frames: frames decoded.
        frame_bytes: on-chip footprint of one frame of scores, in bytes
            (for the Acoustic Likelihood Buffer capacity check).
        beam: beam width the search ran with (log-likelihood units; the
            initial width under adaptive pruning).
        max_active: histogram-pruning cap (0 = unlimited).
        num_states / num_arcs / layout_key: identity of the graph layout
            the trace was recorded on (guards against replaying on the
            wrong layout; see :func:`layout_fingerprint`).
        words / log_likelihood / reached_final: the decode's result.
        search: functional search statistics (timing-independent).
        read_states: state id of every token the State Issuer walks, frame
            by frame (``read_offsets`` delimits frames).
        emit_states: surviving state issued per frame, post pruning, in
            issue order; ``emit_first`` / ``emit_n`` give its contiguous
            non-epsilon arc block and ``emit_read_idx`` its position in the
            frame's token walk (``emit_offsets`` delimits frames).
        emit_arc_idx / emit_arc_dest / emit_improved: one entry per
            non-epsilon arc processed, in issue order: arc index (for the
            DRAM address), destination state (for the hash access) and
            whether the relaxation won (a backpointer write).
            ``emit_arc_offsets`` delimits frames.
        eps_states: state visited by the epsilon worklist, pass by pass;
            ``eps_first`` / ``eps_n`` give its epsilon arc block.
        eps_src: provenance of each visit: index (within the pass's arc
            stream) of the epsilon arc whose relaxation enqueued it, or -1
            for a pass seed.  ``eps_offsets`` delimits passes.
        eps_arc_idx / eps_arc_dest / eps_improved: one entry per epsilon
            arc processed (``eps_arc_offsets`` delimits passes).
        pruning / target_active: the pruning strategy the search ran with
            (see :class:`repro.decoder.kernel.DecoderConfig`); recorded
            for provenance and cache keying -- the replayer itself is
            pruning-agnostic, it re-prices whatever events were recorded.
    """

    num_frames: int
    frame_bytes: int
    beam: float
    max_active: int
    num_states: int
    num_arcs: int
    layout_key: int

    words: Tuple[int, ...]
    log_likelihood: float
    reached_final: bool
    search: SearchStats

    read_states: np.ndarray
    read_offsets: np.ndarray
    emit_states: np.ndarray
    emit_first: np.ndarray
    emit_n: np.ndarray
    emit_read_idx: np.ndarray
    emit_offsets: np.ndarray
    emit_arc_idx: np.ndarray
    emit_arc_dest: np.ndarray
    emit_improved: np.ndarray
    emit_arc_offsets: np.ndarray
    eps_states: np.ndarray
    eps_first: np.ndarray
    eps_n: np.ndarray
    eps_src: np.ndarray
    eps_offsets: np.ndarray
    eps_arc_idx: np.ndarray
    eps_arc_dest: np.ndarray
    eps_improved: np.ndarray
    eps_arc_offsets: np.ndarray

    pruning: str = "beam"
    target_active: int = 0

    _ARRAYS = (
        "read_states", "read_offsets",
        "emit_states", "emit_first", "emit_n", "emit_read_idx",
        "emit_offsets",
        "emit_arc_idx", "emit_arc_dest", "emit_improved", "emit_arc_offsets",
        "eps_states", "eps_first", "eps_n", "eps_src", "eps_offsets",
        "eps_arc_idx", "eps_arc_dest", "eps_improved", "eps_arc_offsets",
    )

    @property
    def nbytes(self) -> int:
        """Total storage of the event arrays, in bytes."""
        return sum(getattr(self, name).nbytes for name in self._ARRAYS)

    @property
    def num_events(self) -> int:
        """Total recorded events (reads + state issues + arc fetches)."""
        return int(
            len(self.read_states)
            + len(self.emit_states) + len(self.emit_arc_idx)
            + len(self.eps_states) + len(self.eps_arc_idx)
        )

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the trace as a compressed ``.npz`` archive."""
        payload = {name: getattr(self, name) for name in self._ARRAYS}
        payload["meta"] = np.array(
            [
                TRACE_FORMAT_VERSION, self.num_frames, self.frame_bytes,
                self.max_active, self.num_states, self.num_arcs,
                int(self.reached_final),
                PRUNING_STRATEGIES.index(self.pruning), self.target_active,
            ],
            dtype=np.int64,
        )
        payload["meta_f"] = np.array(
            [self.beam, self.log_likelihood], dtype=np.float64
        )
        payload["layout_key"] = np.array([self.layout_key], dtype=np.uint64)
        payload["words"] = np.asarray(self.words, dtype=np.int64)
        s = self.search
        payload["search_counters"] = np.array(
            [
                s.frames, s.tokens_pruned, s.states_expanded,
                s.arcs_processed, s.epsilon_arcs_processed,
                s.tokens_created, s.tokens_updated,
            ],
            dtype=np.int64,
        )
        payload["search_degrees"] = np.asarray(
            s.visited_state_degrees, dtype=np.int32
        )
        payload["search_active"] = np.asarray(
            s.active_tokens_per_frame, dtype=np.int64
        )
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path: str) -> "DecodeTrace":
        """Load a trace written by :meth:`save`.

        Raises :class:`~repro.common.errors.SimulationError` when the file
        was written by an incompatible trace format version.
        """
        with np.load(path) as data:
            meta = data["meta"]
            if int(meta[0]) != TRACE_FORMAT_VERSION:
                raise SimulationError(
                    f"trace format v{int(meta[0])} in {path!r} does not "
                    f"match the supported v{TRACE_FORMAT_VERSION}"
                )
            meta_f = data["meta_f"]
            counters = data["search_counters"]
            search = SearchStats(
                frames=int(counters[0]),
                tokens_pruned=int(counters[1]),
                states_expanded=int(counters[2]),
                arcs_processed=int(counters[3]),
                epsilon_arcs_processed=int(counters[4]),
                tokens_created=int(counters[5]),
                tokens_updated=int(counters[6]),
                visited_state_degrees=data["search_degrees"].tolist(),
                active_tokens_per_frame=data["search_active"].tolist(),
            )
            arrays = {name: data[name] for name in cls._ARRAYS}
            return cls(
                num_frames=int(meta[1]),
                frame_bytes=int(meta[2]),
                beam=float(meta_f[0]),
                max_active=int(meta[3]),
                num_states=int(meta[4]),
                num_arcs=int(meta[5]),
                layout_key=int(data["layout_key"][0]),
                words=tuple(int(w) for w in data["words"]),
                log_likelihood=float(meta_f[1]),
                reached_final=bool(meta[6]),
                search=search,
                pruning=PRUNING_STRATEGIES[int(meta[7])],
                target_active=int(meta[8]),
                **arrays,
            )


@dataclass
class _TraceBuilder:
    """Accumulates event lists during recording; frozen into numpy at the end."""

    read_states: List[int] = field(default_factory=list)
    read_offsets: List[int] = field(default_factory=lambda: [0])
    emit_states: List[int] = field(default_factory=list)
    emit_first: List[int] = field(default_factory=list)
    emit_n: List[int] = field(default_factory=list)
    emit_read_idx: List[int] = field(default_factory=list)
    emit_offsets: List[int] = field(default_factory=lambda: [0])
    emit_arc_idx: List[int] = field(default_factory=list)
    emit_arc_dest: List[int] = field(default_factory=list)
    emit_improved: List[bool] = field(default_factory=list)
    emit_arc_offsets: List[int] = field(default_factory=lambda: [0])
    eps_states: List[int] = field(default_factory=list)
    eps_first: List[int] = field(default_factory=list)
    eps_n: List[int] = field(default_factory=list)
    eps_src: List[int] = field(default_factory=list)
    eps_offsets: List[int] = field(default_factory=lambda: [0])
    eps_arc_idx: List[int] = field(default_factory=list)
    eps_arc_dest: List[int] = field(default_factory=list)
    eps_improved: List[bool] = field(default_factory=list)
    eps_arc_offsets: List[int] = field(default_factory=lambda: [0])


class _TraceObserver(KernelObserver):
    """Kernel observer that captures the hardware event stream.

    Subscribed to the reference discipline, whose events arrive in the
    exact order the accelerator consumes them: one prune event per frame
    (the token walk), one expand event per frame (state issues + arc
    fetches with backpointer-write flags) and one closure event per
    epsilon pass (FIFO worklist visits with provenance).
    """

    def __init__(self) -> None:
        self.builder = _TraceBuilder()

    def on_prune(self, event: PruneEvent) -> None:
        b = self.builder
        b.read_states.extend(event.walk_states)
        b.read_offsets.append(len(b.read_states))

    def on_expand(self, event: ExpandEvent) -> None:
        b = self.builder
        b.emit_states.extend(event.states)
        b.emit_first.extend(event.first)
        b.emit_n.extend(event.n_arcs)
        b.emit_read_idx.extend(event.read_idx)
        b.emit_offsets.append(len(b.emit_states))
        b.emit_arc_idx.extend(event.arc_idx)
        b.emit_arc_dest.extend(event.arc_dest)
        b.emit_improved.extend(event.improved)
        b.emit_arc_offsets.append(len(b.emit_arc_idx))

    def on_closure(self, event: ClosureEvent) -> None:
        b = self.builder
        b.eps_states.extend(event.states)
        b.eps_first.extend(event.first)
        b.eps_n.extend(event.n_arcs)
        b.eps_src.extend(event.src)
        b.eps_offsets.append(len(b.eps_states))
        b.eps_arc_idx.extend(event.arc_idx)
        b.eps_arc_dest.extend(event.arc_dest)
        b.eps_improved.extend(event.improved)
        b.eps_arc_offsets.append(len(b.eps_arc_idx))


class TraceRecorder:
    """One-shot functional pass of the accelerator's beam search.

    Runs the shared :class:`~repro.decoder.kernel.ReferenceKernel` --
    the same search as :class:`~repro.accel.simulator.AcceleratorSimulator`
    (token iteration order, pruning, relaxation arithmetic, FIFO epsilon
    worklist) with all timing machinery stripped out -- and records the
    event stream a :class:`~repro.accel.replay.TraceReplayer` needs, via
    the kernel observer protocol.

    The recorder walks whatever graph it is given: pass the baseline
    :class:`~repro.wfst.layout.CompiledWfst` for baseline-layout
    configurations, or ``sorted_wfst.graph`` for Section IV-B sorted-layout
    configurations (the two layouts visit different state ids and arc
    addresses, so they need separate traces).

    Args:
        graph: compiled graph layout to search.
        beam: beam width in log-likelihood units (must be positive).
        max_active: histogram-pruning cap on tokens per frame (0 = off).
        config: full search configuration; overrides ``beam`` /
            ``max_active`` and selects the pruning strategy.
    """

    def __init__(
        self,
        graph: CompiledWfst,
        beam: float = 12.0,
        max_active: int = 0,
        config: Optional[DecoderConfig] = None,
    ) -> None:
        self.config = config or DecoderConfig(beam=beam, max_active=max_active)
        self.graph = graph
        self.beam = self.config.beam
        self.max_active = self.config.max_active
        self._layout_key = layout_fingerprint(graph)
        self._kernel = ReferenceKernel(graph, self.config)

    # ------------------------------------------------------------------
    def record(self, scores: AcousticScores) -> DecodeTrace:
        """Search one utterance and return its event trace."""
        if scores.num_frames == 0:
            raise DecodeError("no frames to decode")
        observer = _TraceObserver()
        result = self._kernel.decode(scores, observers=(observer,))
        out = observer.builder
        return DecodeTrace(
            num_frames=scores.num_frames,
            frame_bytes=scores.frame_bytes_on_chip,
            beam=self.config.beam,
            max_active=self.config.max_active,
            num_states=self.graph.num_states,
            num_arcs=self.graph.num_arcs,
            layout_key=self._layout_key,
            words=result.words,
            log_likelihood=result.log_likelihood,
            reached_final=result.reached_final,
            search=result.stats,
            read_states=np.asarray(out.read_states, dtype=np.int64),
            read_offsets=np.asarray(out.read_offsets, dtype=np.int64),
            emit_states=np.asarray(out.emit_states, dtype=np.int64),
            emit_first=np.asarray(out.emit_first, dtype=np.int64),
            emit_n=np.asarray(out.emit_n, dtype=np.int64),
            emit_read_idx=np.asarray(out.emit_read_idx, dtype=np.int64),
            emit_offsets=np.asarray(out.emit_offsets, dtype=np.int64),
            emit_arc_idx=np.asarray(out.emit_arc_idx, dtype=np.int64),
            emit_arc_dest=np.asarray(out.emit_arc_dest, dtype=np.int64),
            emit_improved=np.asarray(out.emit_improved, dtype=np.bool_),
            emit_arc_offsets=np.asarray(out.emit_arc_offsets, dtype=np.int64),
            eps_states=np.asarray(out.eps_states, dtype=np.int64),
            eps_first=np.asarray(out.eps_first, dtype=np.int64),
            eps_n=np.asarray(out.eps_n, dtype=np.int64),
            eps_src=np.asarray(out.eps_src, dtype=np.int64),
            eps_offsets=np.asarray(out.eps_offsets, dtype=np.int64),
            eps_arc_idx=np.asarray(out.eps_arc_idx, dtype=np.int64),
            eps_arc_dest=np.asarray(out.eps_arc_dest, dtype=np.int64),
            eps_improved=np.asarray(out.eps_improved, dtype=np.bool_),
            eps_arc_offsets=np.asarray(out.eps_arc_offsets, dtype=np.int64),
            pruning=self.config.pruning,
            target_active=self.config.target_active,
        )


def record_decode_trace(
    graph: CompiledWfst,
    scores: AcousticScores,
    beam: float = 12.0,
    max_active: int = 0,
    config: Optional[DecoderConfig] = None,
) -> DecodeTrace:
    """Convenience wrapper: record one utterance's trace on ``graph``."""
    return TraceRecorder(
        graph, beam=beam, max_active=max_active, config=config
    ).record(scores)
