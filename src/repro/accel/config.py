"""Accelerator configuration (paper, Table I).

Default values reproduce Table I exactly:

====================================  =====================================
Technology                            28 nm
Frequency                             600 MHz
State Cache                           512 KB, 4-way, 64 bytes/line
Arc Cache                             1 MB, 4-way, 64 bytes/line
Token Cache                           512 KB, 2-way, 64 bytes/line
Acoustic Likelihood Buffer            64 KB
Hash Table                            768 KB, 32K entries
Memory Controller                     32 in-flight requests
State Issuer                          8 in-flight states
Arc Issuer                            8 in-flight arcs
Token Issuer                          32 in-flight tokens
Acoustic Likelihood Issuer            1 in-flight arc
Likelihood Evaluation Unit            4 fp adders, 2 fp comparators
====================================  =====================================

DRAM latency follows the paper's CACTI model: 50 cycles (83 ns at 600 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """One set-associative cache (LRU replacement)."""

    #: Total data capacity, in bytes.
    size_bytes: int
    #: Ways per set (1 = direct-mapped).
    assoc: int
    #: Line (fill granularity) size, in bytes.
    line_bytes: int = 64
    #: Idealisation switch: every access hits in one cycle (Section IV's
    #: "perfect cache" experiments).
    perfect: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ConfigError("cache parameters must be positive")
        num_lines, rem = divmod(self.size_bytes, self.line_bytes)
        if rem:
            raise ConfigError("cache size must be a multiple of the line size")
        if num_lines % self.assoc:
            raise ConfigError("cache lines must divide evenly into ways")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclass(frozen=True)
class HashConfig:
    """One per-frame token hash table.

    Table I: 32K entries, 768 KB total storage (24 bytes/entry: state id,
    likelihood, backpointer address, next pointer).
    """

    #: Direct-mapped entries per table (Table I: 32K).
    num_entries: int = 32 * 1024
    #: Storage per entry, in bytes (state id, likelihood, backpointer
    #: address, next pointer).
    entry_bytes: int = 24
    #: On-chip backup-buffer entries for collision chains; chains beyond
    #: this spill to the Overflow Buffer in main memory.
    backup_entries: int = 8 * 1024
    #: Idealisation switch: every access takes one cycle, no collisions.
    perfect: bool = False

    def __post_init__(self) -> None:
        if self.num_entries <= 0:
            raise ConfigError("hash table needs at least one entry")
        if self.entry_bytes <= 0:
            raise ConfigError("hash entry_bytes must be positive")
        if self.backup_entries < 0:
            raise ConfigError("backup_entries must be >= 0")

    @property
    def size_bytes(self) -> int:
        return self.num_entries * self.entry_bytes


@dataclass(frozen=True)
class AcceleratorConfig:
    """Full accelerator configuration with Table I defaults.

    Every field is range-validated at construction; invalid values raise
    :class:`~repro.common.errors.ConfigError` rather than producing a
    simulator that silently misbehaves.
    """

    #: Pipeline clock, in Hz (Table I: 600 MHz).
    frequency_hz: float = 600e6
    #: Process node, in nanometres (feeds the area/power model).
    technology_nm: int = 28

    state_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 4)
    )
    arc_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(1024 * 1024, 4)
    )
    token_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 2)
    )
    #: Double-buffered Acoustic Likelihood Buffer capacity, in bytes; two
    #: frames of float32 scores must fit.
    acoustic_buffer_bytes: int = 64 * 1024
    hash_table: HashConfig = field(default_factory=HashConfig)

    #: Fixed DRAM access latency, in cycles (CACTI model: 83 ns at 600 MHz).
    mem_latency_cycles: int = 50
    #: Memory-controller in-flight request window, in requests.
    mem_max_inflight: int = 32
    #: Controller issue spacing, in cycles.  Recorded but not modelled:
    #: the latency-centric controller deliberately does not serialise
    #: issues from different units (see :mod:`repro.accel.memory`), so
    #: this knob has no timing effect.
    mem_issue_interval: int = 1

    #: In-flight operations per issuer, in transactions (Table I).
    state_issuer_inflight: int = 8
    arc_issuer_inflight: int = 8
    token_issuer_inflight: int = 32
    acoustic_issuer_inflight: int = 1

    #: Likelihood Evaluation Unit resources, in functional units.
    fp_adders: int = 4
    fp_comparators: int = 2

    #: Section IV-A -- decoupled access/execute prefetching for the Arc cache.
    prefetch_enabled: bool = False
    #: Request FIFO / Arc FIFO / Reorder Buffer depth, in entries.
    prefetch_fifo_entries: int = 64

    #: Section IV-B -- direct arc-index computation from sorted state layout.
    state_direct_enabled: bool = False
    #: Comparator count N: largest out-degree served without a state fetch.
    state_direct_max_arcs: int = 16

    #: Extra per-frame fixed overhead (hash swap, control), in cycles.
    frame_overhead_cycles: int = 16

    #: Windowed-traceback design axis: frames between traceback-buffer
    #: commits.  Every window the backpointer records written since the
    #: last commit are re-read and the still-live chain records rewritten
    #: compacted (the software protocol of
    #: :mod:`repro.decoder.traceback`), pricing the buffer's DRAM traffic
    #: and stall cycles instead of assuming free unbounded history.
    #: 0 (the default) models the historical append-only buffer: no
    #: commit traffic, no timing change.
    traceback_window_frames: int = 0
    #: Cycles charged per traceback record touched during a commit
    #: (read of a window record or rewrite of a retained one).
    traceback_cycles_per_record: int = 1

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if self.technology_nm <= 0:
            raise ConfigError("technology node must be positive")
        if self.acoustic_buffer_bytes <= 0:
            raise ConfigError(
                "the Acoustic Likelihood Buffer needs a positive capacity"
            )
        if self.mem_latency_cycles < 1:
            raise ConfigError("memory latency must be >= 1 cycle")
        if self.mem_max_inflight < 1:
            raise ConfigError(
                "the memory controller needs >= 1 in-flight request"
            )
        if self.mem_issue_interval < 1:
            raise ConfigError("memory issue interval must be >= 1 cycle")
        if min(
            self.state_issuer_inflight,
            self.arc_issuer_inflight,
            self.token_issuer_inflight,
            self.acoustic_issuer_inflight,
        ) < 1:
            raise ConfigError("issuer in-flight limits must be >= 1")
        if min(self.fp_adders, self.fp_comparators) < 1:
            raise ConfigError(
                "the Likelihood Evaluation Unit needs >= 1 adder and "
                ">= 1 comparator"
            )
        if self.prefetch_fifo_entries < 1:
            raise ConfigError("prefetch FIFO needs at least one entry")
        if self.state_direct_max_arcs < 1:
            raise ConfigError(
                "state_direct_max_arcs (the Section IV-B comparator "
                "count N) must be >= 1"
            )
        if self.frame_overhead_cycles < 0:
            raise ConfigError("frame overhead must be >= 0 cycles")
        if self.traceback_window_frames < 0:
            raise ConfigError("traceback_window_frames must be >= 0")
        if self.traceback_cycles_per_record < 0:
            raise ConfigError("traceback_cycles_per_record must be >= 0")

    # Convenience constructors for the paper's four configurations --------
    def with_prefetch(self) -> "AcceleratorConfig":
        """ASIC+Arc: add the Section IV-A prefetching architecture."""
        return replace(self, prefetch_enabled=True)

    def with_state_direct(self) -> "AcceleratorConfig":
        """ASIC+State: add the Section IV-B bandwidth-saving technique."""
        return replace(self, state_direct_enabled=True)

    def with_both(self) -> "AcceleratorConfig":
        """ASIC+State&Arc: both memory-system techniques."""
        return replace(self, prefetch_enabled=True, state_direct_enabled=True)

    @property
    def arc_issue_window(self) -> int:
        """How far arc fetches may run ahead of arc consumption.

        Without prefetching the Arc Issuer tracks at most 8 in-flight arcs;
        the prefetching architecture decouples fetch from consume through
        the 64-entry Arc FIFO / Reorder Buffer.
        """
        if self.prefetch_enabled:
            return self.prefetch_fifo_entries
        return self.arc_issuer_inflight

    def scaled(self, factor: float) -> "AcceleratorConfig":
        """Scale all on-chip capacities by ``factor`` (for scaled datasets)."""
        if factor <= 0:
            raise ConfigError("scale factor must be positive")

        def scale_cache(c: CacheConfig) -> CacheConfig:
            lines = max(int(c.size_bytes * factor) // c.line_bytes, c.assoc)
            lines -= lines % c.assoc
            return replace(c, size_bytes=max(lines, c.assoc) * c.line_bytes)

        return replace(
            self,
            state_cache=scale_cache(self.state_cache),
            arc_cache=scale_cache(self.arc_cache),
            token_cache=scale_cache(self.token_cache),
            hash_table=replace(
                self.hash_table,
                num_entries=max(int(self.hash_table.num_entries * factor), 64),
                backup_entries=max(
                    int(self.hash_table.backup_entries * factor), 16
                ),
            ),
        )
