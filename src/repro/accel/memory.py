"""Main memory and memory controller model.

A fixed-latency DRAM (Table I / Section V: 50 cycles at 600 MHz) behind a
memory controller with a bounded number of in-flight requests (32) and a
fixed issue rate.  Every request is tagged with the data region it touches
(states / arcs / tokens / overflow) so the simulator can report the traffic
breakdown of Figure 13.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.accel.stats import MemoryTraffic


class Region:
    """Off-chip data regions (Figure 13's traffic categories)."""

    STATES = "states"
    ARCS = "arcs"
    TOKENS = "tokens"
    OVERFLOW = "overflow"


class MemoryController:
    """Timestamp-algebra model of the DRAM interface.

    ``request`` returns the completion cycle of a memory transaction:
    the fixed access latency (Table I / Section V: 50 cycles) plus a
    queueing term when the requesting unit clusters more transactions into
    a latency window than the controller can keep in flight.

    The model is deliberately latency-centric: the paper establishes that
    the accelerator "processes arcs sequentially, [so] performance is
    mainly affected by memory latency and not memory bandwidth"
    (Section VI).  Requests from the different issuers carry their own
    issue timestamps and are *not* serialised against each other -- each
    issuer's concurrency is already bounded by its in-flight window
    (8 states / 8-64 arcs / 32 tokens), which keeps total outstanding
    requests within the controller's 32.  Bandwidth is fully accounted in
    ``traffic`` for the Figure 13 analysis.
    """

    def __init__(
        self,
        latency_cycles: int = 50,
        max_inflight: int = 32,
        issue_interval: int = 1,
        traffic: MemoryTraffic = None,
    ) -> None:
        self.latency = latency_cycles
        self.max_inflight = max_inflight
        self.issue_interval = issue_interval
        self.traffic = traffic if traffic is not None else MemoryTraffic()
        self.requests = 0
        # Recent issue timestamps, for the queueing estimate.  Kept small;
        # order-insensitive within the latency window.
        self._recent: Deque[int] = deque(maxlen=max_inflight)

    def request(
        self, time: int, region: str, nbytes: int, write: bool = False
    ) -> int:
        """Schedule a transaction; returns its completion cycle."""
        time = int(time)
        # Queueing: if max_inflight requests were issued within one latency
        # window of this one, this request waits for the oldest to retire.
        issue = time
        if len(self._recent) == self._recent.maxlen:
            oldest = self._recent[0]
            if oldest + self.latency > time:
                issue = oldest + self.latency
        self._recent.append(issue)

        self.requests += 1
        self.traffic.add(region, nbytes, write)
        return issue + self.latency

    def write_nonblocking(self, time: int, region: str, nbytes: int) -> None:
        """Posted write: consumes bandwidth but nobody waits on it."""
        self.traffic.add(region, nbytes, write=True)
        self.requests += 1
