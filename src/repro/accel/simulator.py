"""Top-level cycle-accurate simulator of the Viterbi-search accelerator.

The simulator is both *functional* and *timed*: it performs the exact beam
search of :class:`repro.decoder.ViterbiDecoder` (its word output is asserted
equal in the test suite) while accounting cycles per the hardware model:

* The State Issuer walks the current frame's hash table (one cycle per
  token, more if the entry overflowed), prunes against the frame's beam
  threshold, and fetches state records through the State Cache -- or, with
  the Section IV-B technique, computes arc indices directly for states with
  at most N arcs.
* The Arc Issuer streams arc records through the Arc Cache.  Fetches may
  run ahead of consumption by the issuer's in-flight window: 8 arcs in the
  base design, or the 64-entry Arc FIFO of the Section IV-A prefetching
  architecture (addresses are computed, so prefetches are never useless).
* The Acoustic Likelihood Issuer reads the on-chip double-buffered score
  scratchpad (never stalls).
* The Likelihood Evaluation unit adds source likelihood + arc weight +
  acoustic score (log-space, so additions only) and compares against the
  destination token.
* The Token Issuer inserts/updates tokens in the next frame's hash table
  (collisions serialise subsequent accesses) and writes backpointer records
  to main memory through the Token Cache.

Stalls arise *only* from cache misses and hash collisions, matching the
paper's characterisation (Section IV).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, DecodeError
from repro.common.logmath import LOG_ZERO
from repro.acoustic.scorer import AcousticScores
from repro.accel.cache import Cache
from repro.accel.config import AcceleratorConfig
from repro.accel.hashtable import TokenHashTable
from repro.accel.memory import MemoryController, Region
from repro.accel.pipeline import RollingWindow, ThroughputGate
from repro.accel.stats import SimStats
from repro.decoder.result import SearchStats
from repro.wfst.layout import ARC_BYTES, STATE_BYTES, CompiledWfst
from repro.wfst.sorted_layout import SortedWfst

#: Bytes per backpointer record in the main-memory token trace region
#: (source token index + word index, 32 bits each).
TOKEN_RECORD_BYTES = 8


def address_map(graph: CompiledWfst) -> Tuple[int, int, int]:
    """Base byte addresses of the states, arcs and token-trace regions.

    The accelerator's view of main memory: the states array at 0, the arcs
    array after it, then the token backpointer region, each 64-byte
    aligned.  Shared by the monolithic simulator and the trace replayer so
    both compute identical DRAM addresses.
    """
    states_base = 0
    arcs_base = _align(graph.states_size_bytes, 64)
    tokens_base = _align(arcs_base + graph.arcs_size_bytes, 64)
    return states_base, arcs_base, tokens_base


@dataclass(frozen=True)
class AcceleratorResult:
    """Output of one accelerator decode."""

    words: Tuple[int, ...]
    log_likelihood: float
    reached_final: bool
    stats: SimStats
    search: SearchStats

    def decode_seconds(self, frequency_hz: float) -> float:
        return self.stats.seconds(frequency_hz)


class AcceleratorSimulator:
    """Cycle-accurate accelerator simulator over a compiled graph."""

    def __init__(
        self,
        graph: CompiledWfst,
        config: AcceleratorConfig = AcceleratorConfig(),
        beam: float = 12.0,
        sorted_graph: Optional[SortedWfst] = None,
        max_active: int = 0,
    ) -> None:
        if config.state_direct_enabled and sorted_graph is None:
            raise ConfigError(
                "state_direct_enabled requires a sorted_graph "
                "(see repro.wfst.sort_states_by_arc_count)"
            )
        if beam <= 0:
            raise ConfigError("beam must be positive")
        if max_active < 0:
            raise ConfigError("max_active must be >= 0")
        # With the Section IV-B technique the accelerator walks the sorted
        # layout; otherwise the baseline layout.
        self.graph = sorted_graph.graph if config.state_direct_enabled else graph
        self.sorted_graph = sorted_graph if config.state_direct_enabled else None
        self.config = config
        self.beam = beam
        # Histogram pruning cap, as in Kaldi's decoder.  The hardware
        # realisation is an adaptive beam: the State Issuer tightens the
        # pruning threshold when the hash occupancy exceeds the cap, which
        # costs no extra cycles in the read/prune walk.
        self.max_active = max_active

        # Address map: states, then arcs, then the token trace region.
        self._states_base, self._arcs_base, self._tokens_base = address_map(
            self.graph
        )

    # ------------------------------------------------------------------
    def decode(self, scores: AcousticScores) -> AcceleratorResult:
        """Decode one utterance, returning words plus cycle-level stats."""
        if scores.num_frames == 0:
            raise DecodeError("no frames to decode")
        # The Acoustic Likelihood Buffer is double-buffered (current +
        # next frame); both frames of float32 scores must fit on chip.
        frame_bytes = scores.frame_bytes_on_chip
        if 2 * frame_bytes > self.config.acoustic_buffer_bytes:
            raise ConfigError(
                f"acoustic scores need 2 x {frame_bytes} bytes but the "
                f"Acoustic Likelihood Buffer holds only "
                f"{self.config.acoustic_buffer_bytes}"
            )

        stats = SimStats(frames=scores.num_frames)
        search = SearchStats(frames=scores.num_frames)
        memory = MemoryController(
            latency_cycles=self.config.mem_latency_cycles,
            max_inflight=self.config.mem_max_inflight,
            issue_interval=self.config.mem_issue_interval,
            traffic=stats.traffic,
        )
        state_cache = Cache(
            self.config.state_cache, memory, Region.STATES, stats.state_cache
        )
        arc_cache = Cache(
            self.config.arc_cache, memory, Region.ARCS, stats.arc_cache
        )
        token_cache = Cache(
            self.config.token_cache, memory, Region.TOKENS, stats.token_cache
        )
        hash_current = TokenHashTable(self.config.hash_table, memory, stats.hash)
        hash_next = TokenHashTable(self.config.hash_table, memory, stats.hash)

        graph = self.graph
        trace_prev: List[int] = []
        trace_word: List[int] = []

        def trace_append(prev: int, word: int) -> int:
            trace_prev.append(prev)
            trace_word.append(word)
            return len(trace_prev) - 1

        # Live tokens: state -> (score, trace index).
        tokens: Dict[int, Tuple[float, int]] = {}
        tokens[graph.start] = (0.0, trace_append(-1, 0))

        cycle = 0
        # Initial epsilon closure (start state may have epsilon arcs).
        cycle = self._epsilon_pass(
            tokens, list(tokens.keys()), cycle, stats, search,
            state_cache, arc_cache, token_cache, hash_next,
            trace_append, memory,
        )

        for frame in range(scores.num_frames):
            frame_scores = scores.frame(frame)
            hash_current, hash_next = hash_next, hash_current
            # Rebuild the physical placement of the current tokens: they
            # were inserted into hash_next during the previous frame, which
            # is now hash_current; hash_next is recycled for this frame.
            hash_next.clear()

            cycle += self.config.frame_overhead_cycles
            frame_begin = cycle

            # --- State Issuer: walk + prune the current tokens ----------
            if not tokens:
                raise DecodeError(f"beam emptied the search at frame {frame}")
            best = max(score for score, _ in tokens.values())
            threshold = best - self.beam
            reader = ThroughputGate(1)
            reader_time = frame_begin
            survivors: List[Tuple[int, float, int, int]] = []
            for state, (score, bp) in tokens.items():
                slot = reader.next_slot(reader_time)
                done, _cycles = hash_current.read_cost(slot, state)
                stats.tokens_read += 1
                stats.fp_compares += 1
                if score >= threshold:
                    survivors.append((state, score, bp, done))
                else:
                    search.tokens_pruned += 1
                reader_time = slot
            if self.max_active and len(survivors) > self.max_active:
                survivors.sort(key=lambda item: item[1], reverse=True)
                search.tokens_pruned += len(survivors) - self.max_active
                survivors = survivors[: self.max_active]

            next_tokens: Dict[int, Tuple[float, int]] = {}
            search.active_tokens_per_frame.append(len(survivors))

            # --- Issue states, stream arcs, evaluate, insert tokens -----
            cycle = self._emit_pass(
                survivors, next_tokens, frame_scores, cycle, stats, search,
                state_cache, arc_cache, token_cache, hash_next,
                trace_append, memory,
            )

            # --- Epsilon closure within the new frame --------------------
            eps_seeds = list(next_tokens.keys())
            cycle = self._epsilon_pass(
                next_tokens, eps_seeds, cycle, stats, search,
                state_cache, arc_cache, token_cache, hash_next,
                trace_append, memory,
            )

            tokens = next_tokens
            stats.frame_cycles.append(cycle - frame_begin)

        # Flush dirty token records (the CPU reads them for backtracking).
        token_cache.flush_dirty(cycle)
        stats.cycles = cycle

        words, likelihood, reached_final = self._finalize(
            tokens, trace_prev, trace_word
        )
        return AcceleratorResult(
            words=words,
            log_likelihood=likelihood,
            reached_final=reached_final,
            stats=stats,
            search=search,
        )

    # ------------------------------------------------------------------
    def _fetch_state(
        self,
        state: int,
        time: int,
        stats: SimStats,
        state_cache: Cache,
        state_window: RollingWindow,
    ) -> Tuple[int, int, int, int]:
        """Resolve a state's arc range; returns (first, n_non_eps, n_eps, done)."""
        if self.sorted_graph is not None:
            record = self.sorted_graph.direct_lookup(state)
            if record is not None:
                # Comparator bank + offset table: single cycle, no memory.
                stats.states_direct += 1
                first, n_non_eps, n_eps = self.graph.arc_range(state)
                return first, n_non_eps, n_eps, time + 1

        start = max(time, state_window.gate())
        addr = self._states_base + state * STATE_BYTES
        done, _hit = state_cache.access(start, addr)
        state_window.push(done)
        stats.states_fetched += 1
        first, n_non_eps, n_eps = self.graph.arc_range(state)
        return first, n_non_eps, n_eps, done

    def _emit_pass(
        self,
        survivors: List[Tuple[int, float, int, int]],
        next_tokens: Dict[int, Tuple[float, int]],
        frame_scores,
        cycle: int,
        stats: SimStats,
        search: SearchStats,
        state_cache: Cache,
        arc_cache: Cache,
        token_cache: Cache,
        hash_next: TokenHashTable,
        trace_append,
        memory: MemoryController,
    ) -> int:
        """Expand non-epsilon arcs of the surviving tokens."""
        graph = self.graph
        state_window = RollingWindow(self.config.state_issuer_inflight)
        arc_window = RollingWindow(self.config.arc_issue_window)
        token_window = RollingWindow(self.config.token_issuer_inflight)
        arc_gate = ThroughputGate(1)

        proc_time = cycle
        hash_ready = cycle

        for state, score, bp, token_ready in survivors:
            first, n_non_eps, _n_eps, state_done = self._fetch_state(
                state, max(token_ready, cycle), stats, state_cache, state_window
            )
            search.states_expanded += 1
            search.visited_state_degrees.append(graph.out_degree(state))

            for a in range(first, first + n_non_eps):
                # Arc Issuer: address generation + cache lookup, gated by
                # the decoupling window (8 base / 64 with prefetching).
                req = arc_gate.next_slot(max(state_done, arc_window.gate()))
                addr = self._arcs_base + a * ARC_BYTES
                arc_data, _hit = arc_cache.access(req, addr)
                arc_window.push(arc_data)

                # Acoustic Likelihood Issuer: on-chip buffer, 1 cycle.
                stats.acoustic_lookups += 1

                # Likelihood Evaluation: two adds + beam compare.
                proc_time = max(proc_time + 1, arc_data + 1)
                stats.arcs_processed += 1
                search.arcs_processed += 1
                stats.fp_adds += 2

                new_score = (
                    score
                    + float(graph.arc_weight[a])
                    + float(frame_scores[graph.arc_ilabel[a]])
                )
                dest = int(graph.arc_dest[a])

                # Token Issuer: hash access serialises on collisions.
                hash_start = max(proc_time, hash_ready)
                hash_done, _cyc = hash_next.access(hash_start, dest)
                hash_ready = hash_done
                stats.fp_compares += 1

                improved = self._relax(
                    next_tokens, dest, new_score,
                    bp, int(graph.arc_olabel[a]), search, trace_append,
                )
                if improved:
                    write_slot = max(hash_done, token_window.gate())
                    # Token record address: sequential in trace order, which
                    # is what gives the Token cache its good spatial locality.
                    rec_addr = (
                        self._tokens_base
                        + (search.tokens_created + search.tokens_updated - 1)
                        * TOKEN_RECORD_BYTES
                    )
                    done, _hit = token_cache.access(
                        write_slot, rec_addr, write=True
                    )
                    token_window.push(done)
                    stats.tokens_written += 1

        return max(proc_time, hash_ready, token_window.drain(), cycle)

    def _epsilon_pass(
        self,
        tokens: Dict[int, Tuple[float, int]],
        seeds: List[int],
        cycle: int,
        stats: SimStats,
        search: SearchStats,
        state_cache: Cache,
        arc_cache: Cache,
        token_cache: Cache,
        hash_table: TokenHashTable,
        trace_append,
        memory: MemoryController,
    ) -> int:
        """Traverse epsilon arcs transitively within the frame's tokens."""
        graph = self.graph
        state_window = RollingWindow(self.config.state_issuer_inflight)
        arc_window = RollingWindow(self.config.arc_issue_window)
        token_window = RollingWindow(self.config.token_issuer_inflight)
        arc_gate = ThroughputGate(1)

        proc_time = cycle
        hash_ready = cycle
        # Worklist entries carry the cycle at which the token became known
        # to the State Issuer: seed tokens stream out of the Token Issuer's
        # queue back-to-back, so their state fetches overlap; tokens
        # discovered by later relaxations become available when created.
        issue_gate = ThroughputGate(1)
        worklist: Deque[Tuple[int, int]] = deque(
            (s, cycle) for s in seeds
        )

        while worklist:
            state, available = worklist.popleft()
            score, bp = tokens[state]
            # The arc record that created this token carries a
            # "destination-has-epsilon-arcs" flag (a spare bit in the
            # 128-bit record), so tokens at epsilon-free states never
            # re-fetch their state record here.
            if graph.state_record(state).num_eps == 0:
                continue
            first, n_non_eps, n_eps, state_done = self._fetch_state(
                state, issue_gate.next_slot(available), stats,
                state_cache, state_window,
            )
            for a in range(first + n_non_eps, first + n_non_eps + n_eps):
                req = arc_gate.next_slot(max(state_done, arc_window.gate()))
                addr = self._arcs_base + a * ARC_BYTES
                arc_data, _hit = arc_cache.access(req, addr)
                arc_window.push(arc_data)

                proc_time = max(proc_time + 1, arc_data + 1)
                stats.epsilon_arcs_processed += 1
                search.epsilon_arcs_processed += 1
                stats.fp_adds += 1

                new_score = score + float(graph.arc_weight[a])
                dest = int(graph.arc_dest[a])

                hash_start = max(proc_time, hash_ready)
                hash_done, _cyc = hash_table.access(hash_start, dest)
                hash_ready = hash_done
                stats.fp_compares += 1

                improved = self._relax(
                    tokens, dest, new_score,
                    bp, int(graph.arc_olabel[a]), search, trace_append,
                )
                if improved:
                    worklist.append((dest, proc_time))
                    write_slot = max(hash_done, token_window.gate())
                    rec_addr = (
                        self._tokens_base
                        + (search.tokens_created + search.tokens_updated - 1)
                        * TOKEN_RECORD_BYTES
                    )
                    done, _hit = token_cache.access(
                        write_slot, rec_addr, write=True
                    )
                    token_window.push(done)
                    stats.tokens_written += 1

        return max(proc_time, hash_ready, token_window.drain(), cycle)

    @staticmethod
    def _relax(
        tokens: Dict[int, Tuple[float, int]],
        dest: int,
        new_score: float,
        src_bp: int,
        word: int,
        search: SearchStats,
        trace_append,
    ) -> bool:
        existing = tokens.get(dest)
        if existing is not None and existing[0] >= new_score:
            return False
        bp = trace_append(src_bp, word)
        if existing is None:
            search.tokens_created += 1
        else:
            search.tokens_updated += 1
        tokens[dest] = (new_score, bp)
        return True

    def _finalize(
        self,
        tokens: Dict[int, Tuple[float, int]],
        trace_prev: List[int],
        trace_word: List[int],
    ) -> Tuple[Tuple[int, ...], float, bool]:
        """Pick the best final token; backtracking runs on the host CPU."""
        if not tokens:
            raise DecodeError("no active tokens at the end of the utterance")

        best: Optional[Tuple[float, int]] = None
        for state, (score, bp) in tokens.items():
            final_weight = self.graph.final_weight(state)
            if final_weight <= LOG_ZERO / 2:
                continue
            total = score + final_weight
            if best is None or total > best[0]:
                best = (total, bp)
        reached_final = best is not None
        if best is None:
            state = max(tokens, key=lambda s: tokens[s][0])
            best = tokens[state]

        score, bp = best
        words: List[int] = []
        index = bp
        while index >= 0:
            if trace_word[index] != 0:
                words.append(trace_word[index])
            index = trace_prev[index]
        words.reverse()
        return tuple(words), score, reached_final


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment
