"""Per-frame token hash tables with backup and overflow buffers.

The accelerator keeps two hash tables (current and next frame).  Each entry
stores the token's likelihood and backpointer address plus a link pointer;
all tokens form a single linked list the State Issuer walks next frame
(paper, Section III-B).

Collisions (distinct states mapping to one entry) chain through an on-chip
backup buffer -- each chained hop costs an extra cycle.  When the backup
buffer is exhausted the chain spills to the Overflow Buffer in main memory
and every further access to those entries pays a DRAM round trip
("Overflows significantly increase the latency ... but extremely rare for
common hash table sizes").
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.accel.config import HashConfig
from repro.accel.memory import MemoryController, Region
from repro.accel.stats import HashStats

#: Knuth's multiplicative hashing constant; shared with the trace replayer
#: so both models place states in identical buckets.
HASH_MULTIPLIER = 2654435761

#: Bytes per Overflow Buffer entry in main memory (state id, likelihood,
#: backpointer address, next pointer -- same 24-byte record as on chip).
OVERFLOW_ENTRY_BYTES = 24


class TokenHashTable:
    """Timing model of one per-frame hash table.

    Functional token storage lives in the simulator (a Python dict keyed by
    state); this class models *where* each state's entry physically sits
    (direct entry, backup chain position, or overflow) and what each access
    costs in cycles.
    """

    def __init__(
        self,
        config: HashConfig,
        memory: MemoryController,
        stats: HashStats = None,
    ) -> None:
        self.config = config
        self.memory = memory
        self.stats = stats if stats is not None else HashStats()
        self._chain_pos: Dict[int, int] = {}
        self._bucket_len: Dict[int, int] = {}
        self._backup_used = 0

    def clear(self) -> None:
        """Start a new frame: all entries are released."""
        self._chain_pos.clear()
        self._bucket_len.clear()
        self._backup_used = 0

    @property
    def occupancy(self) -> int:
        return len(self._chain_pos)

    def _bucket(self, state: int) -> int:
        # Multiplicative hashing spreads sequential state ids.
        return (state * HASH_MULTIPLIER) % self.config.num_entries

    def access(self, time: int, state: int) -> Tuple[int, int]:
        """Look up or insert the token of ``state`` at cycle ``time``.

        Returns ``(done_time, cycles)``.  The first state to claim a bucket
        costs one cycle; each chained predecessor adds a cycle; chain
        positions beyond the backup-buffer capacity live in main memory.
        """
        if self.config.perfect:
            self.stats.requests += 1
            self.stats.total_cycles += 1
            return time + 1, 1

        bucket = self._bucket(state)
        pos = self._chain_pos.get(state)
        if pos is None:
            pos = self._bucket_len.get(bucket, 0)
            self._bucket_len[bucket] = pos + 1
            self._chain_pos[state] = pos
            if pos > 0:
                self._backup_used += 1
                self.stats.collisions += 1

        cycles = 1 + pos
        done = time + cycles
        if pos > 0 and self._backup_used > self.config.backup_entries:
            # The chain spilled to the Overflow Buffer in main memory.
            self.stats.overflows += 1
            done = self.memory.request(
                time, Region.OVERFLOW, OVERFLOW_ENTRY_BYTES
            )
            cycles = done - time

        self.stats.requests += 1
        self.stats.total_cycles += cycles
        return done, cycles

    def read_cost(self, time: int, state: int) -> Tuple[int, int]:
        """Cost of the State Issuer reading this token next frame.

        Walking the global linked list is one cycle per token; entries that
        overflowed to memory pay the DRAM latency again.
        """
        if self.config.perfect:
            return time + 1, 1
        pos = self._chain_pos.get(state, 0)
        if pos > 0 and self._backup_used > self.config.backup_entries:
            done = self.memory.request(
                time, Region.OVERFLOW, OVERFLOW_ENTRY_BYTES
            )
            return done, done - time
        return time + 1, 1
