"""Set-associative cache model with LRU replacement.

Functional and timed: each access updates the tag store and returns when
the data is available.  A hit costs one cycle; a miss costs a memory
transaction (the caller decides how much of that latency is exposed --
the prefetching architecture of Section IV-A overlaps it with useful work).

Following the paper's prefetch design, tags are updated immediately at
request time ("the arc's address is looked up in the cache tags, and in
case of a miss the tags are updated immediately"), so a later access to the
same line is a hit even while the fill is in flight; the returned data time
still honours the fill completion.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from repro.accel.config import CacheConfig
from repro.accel.memory import MemoryController
from repro.accel.stats import CacheStats


class Cache:
    """One cache (State, Arc or Token) in front of main memory."""

    HIT_LATENCY = 1

    def __init__(
        self,
        config: CacheConfig,
        memory: MemoryController,
        region: str,
        stats: CacheStats = None,
    ) -> None:
        self.config = config
        self.memory = memory
        self.region = region
        self.stats = stats if stats is not None else CacheStats()
        self._num_sets = config.num_sets
        self._line = config.line_bytes
        # Per set: OrderedDict mapping tag -> (dirty, fill_time); LRU order.
        self._sets: List["OrderedDict[int, Tuple[bool, int]]"] = [
            OrderedDict() for _ in range(self._num_sets)
        ]

    def access(self, time: int, addr: int, write: bool = False) -> Tuple[int, bool]:
        """Look up ``addr`` at cycle ``time``.

        Returns ``(data_time, hit)`` -- the cycle the data is available and
        whether the access hit.  Writes allocate and mark the line dirty;
        dirty evictions post a write-back to memory.
        """
        self.stats.accesses += 1
        if self.config.perfect:
            return time + self.HIT_LATENCY, True

        line_id = addr // self._line
        set_idx = line_id % self._num_sets
        ways = self._sets[set_idx]

        if line_id in ways:
            dirty, fill_time = ways.pop(line_id)
            ways[line_id] = (dirty or write, fill_time)
            return max(time + self.HIT_LATENCY, fill_time), True

        # Miss: evict LRU if the set is full.
        self.stats.misses += 1
        if len(ways) >= self.config.assoc:
            _victim, (victim_dirty, _t) = ways.popitem(last=False)
            if victim_dirty:
                self.stats.writebacks += 1
                self.memory.write_nonblocking(time, self.region, self._line)

        fill_time = self.memory.request(time, self.region, self._line)
        ways[line_id] = (write, fill_time)
        return fill_time, False

    def lines_touched(self, addr: int, nbytes: int) -> List[int]:
        """Line-aligned addresses covering ``[addr, addr + nbytes)``."""
        first = (addr // self._line) * self._line
        last = ((addr + nbytes - 1) // self._line) * self._line
        return list(range(first, last + 1, self._line))

    def flush_dirty(self, time: int) -> int:
        """Write back every dirty line (end of decode); returns count."""
        count = 0
        for ways in self._sets:
            for line_id, (dirty, _fill) in list(ways.items()):
                if dirty:
                    self.memory.write_nonblocking(time, self.region, self._line)
                    ways[line_id] = (False, 0)
                    count += 1
                    self.stats.writebacks += 1
        return count
