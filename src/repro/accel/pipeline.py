"""Pipeline timing primitives for the Figure 3 pipeline (paper, Section III).

The simulator uses *timestamp algebra*: every transaction carries the cycle
at which it completes, and structural hazards are expressed as gates on
when the next transaction may start.  Two primitives cover all the
structures in the accelerator:

* :class:`RollingWindow` -- bounded in-flight parallelism.  An issuer with
  K in-flight slots can start its i-th operation no earlier than the
  completion of its (i-K)-th operation.  This models the State Issuer
  (8 states), the Arc Issuer / Arc FIFO (8 or 64 arcs), the Token Issuer
  (32 tokens) and the memory controller (32 requests).
* :class:`ThroughputGate` -- a unit that accepts at most one operation per
  ``interval`` cycles (address generation, hash port).
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.common.errors import ConfigError


class RollingWindow:
    """Bounded in-flight parallelism gate."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ConfigError("window depth must be >= 1")
        self.depth = depth
        self._completions: Deque[int] = deque()

    def gate(self) -> int:
        """Earliest cycle a new operation may start."""
        if len(self._completions) < self.depth:
            return 0
        return self._completions[0]

    def push(self, completion_time: int) -> None:
        """Record a started operation's completion time."""
        self._completions.append(completion_time)
        if len(self._completions) > self.depth:
            self._completions.popleft()

    def drain(self) -> int:
        """Cycle by which every tracked operation has completed."""
        if not self._completions:
            return 0
        return max(self._completions)

    def reset(self) -> None:
        self._completions.clear()


class ThroughputGate:
    """One operation per ``interval`` cycles."""

    def __init__(self, interval: int = 1) -> None:
        if interval < 1:
            raise ConfigError("interval must be >= 1")
        self.interval = interval
        self._last = -interval

    def next_slot(self, time: int) -> int:
        """Earliest issue cycle at or after ``time``; reserves the slot."""
        slot = max(int(time), self._last + self.interval)
        self._last = slot
        return slot

    def reset(self) -> None:
        self._last = -self.interval
