"""The decoupled access/execute prefetching architecture (Section IV-A).

After pruning, every arc address for the frame is *computed*, not
predicted, so the Arc Issuer can push cache lookups far ahead of the
pipeline stages that consume the arcs.  Three structures realise this
(paper, Figure 6):

* **Request FIFO** -- holds missing line addresses on their way to the
  memory controller (one request issued per cycle);
* **Arc FIFO** -- holds each in-flight arc together with the data needed to
  process it later (source token likelihood, cache way);
* **Reorder Buffer** -- receives returning memory blocks and commits them to
  the data array only when their arc reaches the FIFO head, preventing a
  younger fill from evicting an older, still-unread line.

In the timing model the architecture appears as the *decoupling window*:
arc fetches may run ahead of arc consumption by ``fifo_entries`` arcs
(:attr:`repro.accel.config.AcceleratorConfig.arc_issue_window`), instead of
the baseline's 8 in-flight arcs.  Because addresses are computed, no
useless prefetches are ever generated -- DRAM traffic is identical to the
baseline, matching the paper's Figure 13 discussion.

:class:`PrefetchHardware` sizes the added storage for the area/power model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PrefetchConfig:
    """Sizing of the three prefetch structures (64 entries each, Sec. V)."""

    fifo_entries: int = 64
    request_entry_bytes: int = 4   # one 32-bit line address
    arc_entry_bytes: int = 16      # arc payload + source token likelihood
    reorder_entry_bytes: int = 64  # one cache line


@dataclass(frozen=True)
class PrefetchHardware:
    """Storage added by the prefetching architecture (for CACTI-style area)."""

    config: PrefetchConfig = PrefetchConfig()

    @property
    def request_fifo_bytes(self) -> int:
        return self.config.fifo_entries * self.config.request_entry_bytes

    @property
    def arc_fifo_bytes(self) -> int:
        return self.config.fifo_entries * self.config.arc_entry_bytes

    @property
    def reorder_buffer_bytes(self) -> int:
        return self.config.fifo_entries * self.config.reorder_entry_bytes

    @property
    def total_bytes(self) -> int:
        return (
            self.request_fifo_bytes
            + self.arc_fifo_bytes
            + self.reorder_buffer_bytes
        )
