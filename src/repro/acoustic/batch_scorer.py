"""Cross-session batched acoustic scoring (the executable GPU half of
the paper's Figure 1 split).

In the paper the GPU evaluates the DNN for a *batch* of frames at a time
and DMAs the resulting likelihoods into the accelerator's double-buffered
Acoustic Likelihood Buffer; the Viterbi engine consumes one plane while
the next is being filled.  :class:`BatchScorer` is that batching stage
for the serving stack: it collects the pending MFCC feature chunks of
all live sessions, packs the ragged rows into one contiguous matrix,
runs a single stacked :meth:`repro.acoustic.dnn.Dnn.forward` matmul
chain, and scatters the scored rows back into per-session score planes
(caller-provided buffers -- e.g. shared-memory ring slots -- or a fresh
plane).

Because ``Dnn.forward`` is batch-stable (fixed-height gemm blocks, see
:func:`repro.acoustic.dnn._affine`), the scattered rows are **bitwise
identical** to what each session's own :meth:`DnnScorer.score` call
would have produced: batching is purely a throughput optimisation and
never changes a decode.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigError
from repro.acoustic.scorer import _EPS_COLUMN_SCORE, DnnScorer


class BatchScorer:
    """Score the ragged feature chunks of many sessions in one forward.

    Wraps a :class:`DnnScorer`; the scored rows use the same layout as
    :class:`~repro.acoustic.scorer.AcousticScores` -- ``width ==
    num_classes + 1`` with column 0 pinned to the loud epsilon score.
    """

    def __init__(self, scorer: DnnScorer) -> None:
        self.scorer = scorer

    @property
    def input_dim(self) -> int:
        """Feature width every chunk must have."""
        return int(self.scorer.dnn.config.input_dim)

    @property
    def width(self) -> int:
        """Score-row width (one column per phone id, plus epsilon)."""
        return int(self.scorer.dnn.config.num_classes) + 1

    # ------------------------------------------------------------------
    def score_chunks(
        self,
        chunks: Sequence[np.ndarray],
        out: Optional[Sequence[np.ndarray]] = None,
    ) -> List[np.ndarray]:
        """Pack, score once, scatter.

        Args:
            chunks: per-session feature chunks, each ``(frames_i,
                input_dim)`` (``frames_i`` may be 0 -- ragged is the
                normal case).
            out: optional per-chunk destination score planes, each
                ``(frames_i, width)`` -- e.g. views into a shared-memory
                plane ring.  When omitted the rows are scattered into
                one freshly allocated plane.

        Returns:
            One ``(frames_i, width)`` score matrix per chunk (the ``out``
            buffers when given, otherwise views into the fresh plane),
            bitwise equal to per-chunk ``DnnScorer.score`` calls.
        """
        matrices = [self._chunk(i, c) for i, c in enumerate(chunks)]
        if out is not None and len(out) != len(matrices):
            raise ConfigError(
                f"out has {len(out)} planes for {len(matrices)} chunks"
            )
        counts = [m.shape[0] for m in matrices]
        total = sum(counts)
        packed = np.empty((total, self.input_dim), dtype=np.float64)
        offset = 0
        for matrix, count in zip(matrices, counts):
            packed[offset: offset + count] = matrix
            offset += count

        loglik = self._log_likelihood_rows(packed)

        planes: List[np.ndarray]
        if out is None:
            fresh = np.empty((total, self.width), dtype=np.float64)
            planes = []
            offset = 0
            for count in counts:
                planes.append(fresh[offset: offset + count])
                offset += count
        else:
            planes = list(out)
            for i, count in enumerate(counts):
                if planes[i].shape != (count, self.width):
                    raise ConfigError(
                        f"out[{i}] has shape {planes[i].shape}, chunk "
                        f"needs ({count}, {self.width})"
                    )
        offset = 0
        for plane, count in zip(planes, counts):
            plane[:, 0] = _EPS_COLUMN_SCORE
            plane[:, 1:] = loglik[offset: offset + count]
            offset += count
        return planes

    # ------------------------------------------------------------------
    def _chunk(self, index: int, chunk: np.ndarray) -> np.ndarray:
        matrix = np.asarray(chunk, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.input_dim:
            raise ConfigError(
                f"feature chunk {index} must be (frames, {self.input_dim}), "
                f"got shape {matrix.shape}"
            )
        return matrix

    def _log_likelihood_rows(self, features: np.ndarray) -> np.ndarray:
        """Scaled log-likelihood rows for packed features -- the exact
        arithmetic of :meth:`DnnScorer.score`, minus the plane layout."""
        log_post = self.scorer.dnn.log_posteriors(features)
        result: np.ndarray = (
            (log_post - self.scorer.log_priors) * self.scorer.acoustic_scale
        )
        return result
