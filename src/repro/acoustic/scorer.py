"""Frame scorers: acoustic log-likelihood matrices for the Viterbi search.

The Viterbi stage consumes, per 10 ms frame, one log-likelihood per phone
(``b(O_f; m_k)`` in the paper's Equation 1).  The accelerator stores these in
its double-buffered Acoustic Likelihood Buffer.  Scores here are what the
GPU's DNN would DMA into that buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.acoustic.dnn import Dnn
from repro.frontend.audio import PhoneAlignment


@dataclass(frozen=True)
class AcousticScores:
    """Per-frame phone log-likelihoods.

    Attributes:
        matrix: ``(num_frames, num_phones + 1)`` array; column 0 is unused
            (phone ids start at 1) and fixed at a large negative value so an
            accidental epsilon lookup is loud.
    """

    matrix: np.ndarray

    @property
    def num_frames(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_phones(self) -> int:
        return self.matrix.shape[1] - 1

    def frame(self, f: int) -> np.ndarray:
        """All phone scores of frame ``f`` (index by phone id)."""
        return self.matrix[f]

    def score(self, f: int, phone: int) -> float:
        if phone < 1:
            raise ConfigError("phone id must be >= 1")
        return float(self.matrix[f, phone])

    @property
    def size_bytes(self) -> int:
        """True in-memory footprint of the whole score matrix, in bytes
        (the host-side ``float64`` array, all frames)."""
        return int(self.matrix.nbytes)

    @property
    def frame_bytes_on_chip(self) -> int:
        """Footprint of one frame's scores as stored on chip: the
        accelerator's Acoustic Likelihood Buffer holds ``float32``
        entries, one per column (paper, Section III)."""
        return self.matrix.shape[1] * 4


_EPS_COLUMN_SCORE = -1.0e9


class DnnScorer:
    """Score frames with a trained DNN (hybrid posterior/prior convention)."""

    def __init__(
        self,
        dnn: Dnn,
        log_priors: np.ndarray,
        acoustic_scale: float = 1.0,
    ) -> None:
        if len(log_priors) != dnn.config.num_classes:
            raise ConfigError("log_priors length must match DNN classes")
        self.dnn = dnn
        self.log_priors = np.asarray(log_priors, dtype=np.float64)
        self.acoustic_scale = acoustic_scale

    def score(self, features: np.ndarray) -> AcousticScores:
        """Convert a feature matrix into scaled log-likelihoods."""
        log_post = self.dnn.log_posteriors(features)
        loglik = (log_post - self.log_priors) * self.acoustic_scale
        matrix = np.full(
            (len(loglik), self.dnn.config.num_classes + 1),
            _EPS_COLUMN_SCORE,
        )
        matrix[:, 1:] = loglik
        return AcousticScores(matrix)

    @staticmethod
    def priors_from_labels(labels: np.ndarray, num_classes: int) -> np.ndarray:
        """Smoothed log class priors estimated from training labels."""
        counts = np.bincount(
            np.asarray(labels, dtype=np.int64), minlength=num_classes
        ).astype(np.float64)
        counts += 1.0
        return np.log(counts / counts.sum())


class SyntheticScorer:
    """Generate scores directly from a ground-truth alignment.

    Models a DNN of configurable quality: the true phone receives a score
    near zero, every other phone a score drawn around ``-separation``, with
    Gaussian noise on both.  ``separation`` and ``noise`` tune how confusable
    frames are -- small separation forces the beam search to keep many
    hypotheses alive, reproducing the paper's large active-token counts.
    """

    def __init__(
        self,
        num_phones: int,
        separation: float = 4.0,
        noise: float = 1.5,
        seed: int = 0,
    ) -> None:
        if num_phones < 2:
            raise ConfigError("need at least two phones")
        if separation <= 0 or noise < 0:
            raise ConfigError("separation must be > 0 and noise >= 0")
        self.num_phones = num_phones
        self.separation = separation
        self.noise = noise
        self.seed = seed

    def score(self, alignment: PhoneAlignment, utterance_id: int = 0) -> AcousticScores:
        """Produce the likelihood matrix for one aligned utterance."""
        rng = make_rng(self.seed, f"synthetic-scores-{utterance_id}")
        labels = alignment.frame_labels()
        n_frames = len(labels)
        matrix = rng.normal(
            -self.separation, self.noise, size=(n_frames, self.num_phones + 1)
        )
        matrix[np.arange(n_frames), labels] = rng.normal(
            -0.3, self.noise * 0.4, size=n_frames
        )
        matrix[:, 0] = _EPS_COLUMN_SCORE
        # Log-likelihoods must be <= 0.
        matrix[:, 1:] = np.minimum(matrix[:, 1:], -1e-3)
        return AcousticScores(matrix)
