"""Minibatch SGD trainer for the acoustic DNN (the Section II hybrid
model's GPU-side half, trained here so decode experiments have realistic
posteriors).

Cross-entropy training of the MLP on (MFCC frame, phone id) pairs produced
by the synthetic audio pipeline.  Deliberately simple -- constant learning
rate with momentum -- because the synthetic task is easy; the point is to
produce *realistically confusable* posteriors, not state-of-the-art WER.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.acoustic.dnn import Dnn


@dataclass(frozen=True)
class TrainConfig:
    """SGD hyper-parameters."""

    epochs: int = 10
    batch_size: int = 256
    learning_rate: float = 0.05
    momentum: float = 0.9
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ConfigError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ConfigError("momentum must be in [0, 1)")
        if self.seed < 0:
            raise ConfigError("seed must be non-negative")


def train_dnn(
    dnn: Dnn,
    features: np.ndarray,
    labels: np.ndarray,
    config: TrainConfig = TrainConfig(),
) -> List[float]:
    """Train ``dnn`` in place; returns the per-epoch mean cross-entropy.

    Args:
        features: ``(num_frames, input_dim)``.
        labels: ``(num_frames,)`` 0-based class ids.
    """
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=np.int64)
    if x.ndim != 2 or len(x) != len(y):
        raise ConfigError("features/labels shape mismatch")
    if y.min() < 0 or y.max() >= dnn.config.num_classes:
        raise ConfigError("label out of range")

    dnn.set_normalization(x.mean(axis=0), x.std(axis=0))

    rng = make_rng(config.seed, "dnn-train")
    velocity_w = [np.zeros_like(w) for w in dnn.weights]
    velocity_b = [np.zeros_like(b) for b in dnn.biases]
    losses: List[float] = []

    for _ in range(config.epochs):
        order = rng.permutation(len(x))
        epoch_loss = 0.0
        n_batches = 0
        for lo in range(0, len(x), config.batch_size):
            batch = order[lo : lo + config.batch_size]
            loss, grads_w, grads_b = _backward(dnn, x[batch], y[batch])
            epoch_loss += loss
            n_batches += 1
            for i in range(len(dnn.weights)):
                velocity_w[i] = (
                    config.momentum * velocity_w[i]
                    - config.learning_rate * grads_w[i]
                )
                velocity_b[i] = (
                    config.momentum * velocity_b[i]
                    - config.learning_rate * grads_b[i]
                )
                dnn.weights[i] += velocity_w[i]
                dnn.biases[i] += velocity_b[i]
        losses.append(epoch_loss / max(n_batches, 1))
    return losses


def _backward(
    dnn: Dnn, x: np.ndarray, y: np.ndarray
) -> Tuple[float, List[np.ndarray], List[np.ndarray]]:
    """One forward/backward pass; returns (loss, weight grads, bias grads)."""
    log_post, activations = dnn.forward(x, keep_activations=True)
    batch = len(x)
    loss = float(-log_post[np.arange(batch), y].mean())

    probs = np.exp(log_post)
    delta = probs
    delta[np.arange(batch), y] -= 1.0
    delta /= batch

    grads_w: List[np.ndarray] = [np.zeros_like(w) for w in dnn.weights]
    grads_b: List[np.ndarray] = [np.zeros_like(b) for b in dnn.biases]
    for i in range(len(dnn.weights) - 1, -1, -1):
        grads_w[i] = activations[i].T @ delta
        grads_b[i] = delta.sum(axis=0)
        if i > 0:
            delta = (delta @ dnn.weights[i].T) * (activations[i] > 0)
    return loss, grads_w, grads_b
