"""Acoustic model substrate: a numpy DNN and frame scorers.

The DNN stage of the pipeline (paper, Section II) maps MFCC frames to
phoneme posteriors.  Two scorers are provided:

* :class:`DnnScorer` -- runs the trained MLP and converts posteriors to
  scaled log-likelihoods (posterior / prior, the hybrid-DNN convention).
* :class:`SyntheticScorer` -- generates likelihood matrices directly from a
  ground-truth alignment with controllable confusability; used by large
  benchmark sweeps where DNN inference time would dominate for no fidelity
  gain (the Viterbi search only sees a score matrix either way).

:class:`BatchScorer` stacks the pending feature chunks of many live
sessions into one batch-stable ``Dnn.forward`` call -- the serving
layers' cross-session scoring stage (paper Figure 1's GPU batching).
"""

from repro.acoustic.dnn import Dnn, DnnConfig
from repro.acoustic.trainer import TrainConfig, train_dnn
from repro.acoustic.scorer import AcousticScores, DnnScorer, SyntheticScorer
from repro.acoustic.batch_scorer import BatchScorer

__all__ = [
    "Dnn",
    "DnnConfig",
    "TrainConfig",
    "train_dnn",
    "AcousticScores",
    "BatchScorer",
    "DnnScorer",
    "SyntheticScorer",
]
