"""Feed-forward DNN in numpy.

A plain MLP with ReLU hidden layers and a softmax output over phone ids --
the acoustic model of the hybrid ASR system (paper, Section II; in the
paper's Figure 1 pipeline the DNN runs on the GPU while the accelerator
handles the Viterbi search).  Only forward and backward passes needed by
the trainer are implemented; no autograd framework is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng


@dataclass(frozen=True)
class DnnConfig:
    """MLP shape: input dim, hidden widths, output classes."""

    input_dim: int
    hidden_dims: Tuple[int, ...]
    num_classes: int

    def __post_init__(self) -> None:
        if self.input_dim < 1 or self.num_classes < 2:
            raise ConfigError("invalid DNN dimensions")
        if any(h < 1 for h in self.hidden_dims):
            raise ConfigError("hidden dims must be positive")


class Dnn:
    """A ReLU MLP with softmax output."""

    def __init__(self, config: DnnConfig, seed: int = 0) -> None:
        self.config = config
        rng = make_rng(seed, "dnn-init")
        dims = [config.input_dim, *config.hidden_dims, config.num_classes]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        # Input normalisation fitted by the trainer.
        self.input_mean = np.zeros(config.input_dim)
        self.input_std = np.ones(config.input_dim)

    @property
    def num_params(self) -> int:
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    def set_normalization(self, mean: np.ndarray, std: np.ndarray) -> None:
        """Set per-dimension input standardisation (fitted on train data)."""
        self.input_mean = np.asarray(mean, dtype=np.float64)
        self.input_std = np.maximum(np.asarray(std, dtype=np.float64), 1e-6)

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, keep_activations: bool = False
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass.

        Args:
            x: ``(batch, input_dim)`` features.
            keep_activations: retain post-ReLU activations for backprop.

        Returns:
            ``(log_posteriors, activations)`` -- log-softmax outputs of
            shape ``(batch, num_classes)``.
        """
        h = (np.asarray(x, dtype=np.float64) - self.input_mean) / self.input_std
        activations: List[np.ndarray] = [h]
        for w, b in zip(self.weights[:-1], self.biases[:-1]):
            h = np.maximum(h @ w + b, 0.0)
            if keep_activations:
                activations.append(h)
        logits = h @ self.weights[-1] + self.biases[-1]
        log_post = logits - _logsumexp(logits)
        return log_post, activations

    def log_posteriors(self, x: np.ndarray) -> np.ndarray:
        """Log P(class | frame) for a batch of frames."""
        log_post, _ = self.forward(x)
        return log_post

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most likely class id (0-based) per frame."""
        return np.argmax(self.log_posteriors(x), axis=1)


def _logsumexp(logits: np.ndarray) -> np.ndarray:
    hi = logits.max(axis=1, keepdims=True)
    return hi + np.log(np.exp(logits - hi).sum(axis=1, keepdims=True))
