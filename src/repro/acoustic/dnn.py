"""Feed-forward DNN in numpy.

A plain MLP with ReLU hidden layers and a softmax output over phone ids --
the acoustic model of the hybrid ASR system (paper, Section II; in the
paper's Figure 1 pipeline the DNN runs on the GPU while the accelerator
handles the Viterbi search).  Only forward and backward passes needed by
the trainer are implemented; no autograd framework is used.

The forward pass is **batch-stable**: scoring frames stacked with other
sessions' frames yields bitwise the same rows as scoring them alone
(see :func:`_affine`), which is what lets the serving tier batch
acoustic scoring across sessions without changing a single decode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng


@dataclass(frozen=True)
class DnnConfig:
    """MLP shape: input dim, hidden widths, output classes."""

    input_dim: int
    hidden_dims: Tuple[int, ...]
    num_classes: int

    def __post_init__(self) -> None:
        if self.input_dim < 1 or self.num_classes < 2:
            raise ConfigError("invalid DNN dimensions")
        if any(h < 1 for h in self.hidden_dims):
            raise ConfigError("hidden dims must be positive")


class Dnn:
    """A ReLU MLP with softmax output."""

    def __init__(self, config: DnnConfig, seed: int = 0) -> None:
        self.config = config
        rng = make_rng(seed, "dnn-init")
        dims = [config.input_dim, *config.hidden_dims, config.num_classes]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        # Input normalisation fitted by the trainer.
        self.input_mean = np.zeros(config.input_dim)
        self.input_std = np.ones(config.input_dim)

    @property
    def num_params(self) -> int:
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    def set_normalization(self, mean: np.ndarray, std: np.ndarray) -> None:
        """Set per-dimension input standardisation (fitted on train data)."""
        self.input_mean = np.asarray(mean, dtype=np.float64)
        self.input_std = np.maximum(np.asarray(std, dtype=np.float64), 1e-6)

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, keep_activations: bool = False
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass.

        Batch-stable: row ``i`` of the output depends only on row ``i``
        of ``x``, bit for bit -- stacking the frames of many sessions
        into one call returns exactly the rows that per-session calls
        would (pinned by ``tests/test_acoustic.py``).

        Args:
            x: ``(batch, input_dim)`` features.
            keep_activations: retain post-ReLU activations for backprop.

        Returns:
            ``(log_posteriors, activations)`` -- log-softmax outputs of
            shape ``(batch, num_classes)``.
        """
        h = (np.asarray(x, dtype=np.float64) - self.input_mean) / self.input_std
        activations: List[np.ndarray] = [h]
        for w, b in zip(self.weights[:-1], self.biases[:-1]):
            h = np.maximum(_affine(h, w, b), 0.0)
            if keep_activations:
                activations.append(h)
        logits = _affine(h, self.weights[-1], self.biases[-1])
        log_post = logits - _logsumexp(logits)
        return log_post, activations

    def log_posteriors(self, x: np.ndarray) -> np.ndarray:
        """Log P(class | frame) for a batch of frames."""
        log_post, _ = self.forward(x)
        return log_post

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most likely class id (0-based) per frame."""
        return np.argmax(self.log_posteriors(x), axis=1)


#: Fixed gemm height of :func:`_affine`.  Every matmul the forward pass
#: issues has exactly this many rows (the tail block is zero-padded), so
#: BLAS always picks the same kernel/reduction split regardless of how
#: many frames were stacked into the call.
GEMM_BLOCK_ROWS = 32


def _affine(x: np.ndarray, w: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``x @ w + b`` computed in fixed :data:`GEMM_BLOCK_ROWS`-row blocks.

    A plain ``x @ w`` is *not* bitwise row-stable under batching: BLAS
    chooses its blocking/reduction order from the operand shapes, so the
    same input row can produce results differing in the last ulp when
    stacked with a different number of neighbours.  Slicing the batch
    into fixed-height blocks (zero-padding the tail so even the last
    gemm has the canonical shape) keeps the per-row arithmetic identical
    for every batch size while retaining BLAS throughput -- the
    invariant ``BatchScorer`` and the serving tier's batched scoring
    path rely on.
    """
    n = x.shape[0]
    out = np.empty((n, w.shape[1]), dtype=np.float64)
    pad = np.zeros((GEMM_BLOCK_ROWS, x.shape[1]), dtype=np.float64)
    for start in range(0, n, GEMM_BLOCK_ROWS):
        stop = min(start + GEMM_BLOCK_ROWS, n)
        rows = stop - start
        if rows == GEMM_BLOCK_ROWS:
            np.matmul(x[start:stop], w, out=out[start:stop])
        else:
            pad[:rows] = x[start:stop]
            out[start:stop] = np.matmul(pad, w)[:rows]
    out += b
    return out


def _logsumexp(logits: np.ndarray) -> np.ndarray:
    hi = logits.max(axis=1, keepdims=True)
    return hi + np.log(np.exp(logits - hi).sum(axis=1, keepdims=True))
