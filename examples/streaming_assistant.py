#!/usr/bin/env python
"""Streaming voice assistant: latency of the hybrid pipeline in real time.

The paper's deployment story (Section III-A): frames arrive continuously,
the GPU evaluates the DNN batch by batch while the accelerator searches
the previous batch, with scores DMA'd into the double-buffered Acoustic
Likelihood Buffer.  This example measures the accelerator's per-frame
search time on a live workload, then feeds it to the event-driven stream
simulator to answer the deployment question: how long after you stop
speaking does the transcript arrive, and does the pipeline keep up
indefinitely?

Run:  python examples/streaming_assistant.py
"""

from repro.accel import AcceleratorConfig, AcceleratorSimulator
from repro.datasets import SyntheticGraphConfig
from repro.gpu import GpuDnnModel
from repro.gpu.model import dnn_flops_per_frame
from repro.system import StreamConfig, make_memory_workload, simulate_stream

DNN = dict(input_dim=440, hidden_dims=(2048,) * 6, num_classes=3500)


def measure_search_seconds_per_frame() -> float:
    """Simulate the accelerator on a live workload; return s/frame."""
    workload = make_memory_workload(
        num_utterances=1,
        frames_per_utterance=20,
        beam=8.0,
        max_active=2000,
        seed=77,
        graph_config=SyntheticGraphConfig(
            num_states=60_000, num_phones=50, seed=77
        ),
    )
    config = AcceleratorConfig().with_both()
    sim = AcceleratorSimulator(
        workload.graph,
        config,
        beam=workload.beam,
        sorted_graph=workload.sorted_graph,
        max_active=workload.max_active,
    )
    result = sim.decode(workload.scores[0])
    seconds = result.stats.seconds(config.frequency_hz)
    return seconds / result.stats.frames


def main() -> None:
    print("Measuring the accelerator's per-frame search time ...")
    search_s = measure_search_seconds_per_frame()
    dnn_s = GpuDnnModel().seconds(dnn_flops_per_frame(**DNN))
    print(f"  search {search_s * 1e6:.1f} us/frame, "
          f"DNN {dnn_s * 1e6:.1f} us/frame (GPU)")

    print("\nStreaming 60 s of speech through the pipeline:")
    for batch_frames in (10, 25, 50, 100):
        config = StreamConfig(
            batch_frames=batch_frames,
            dnn_seconds_per_frame=dnn_s,
            search_seconds_per_frame=search_s,
            transfer_seconds_per_batch=4 * DNN["num_classes"]
            * batch_frames / 12e9,
        )
        rep = simulate_stream(6000, config)
        print(f"  batch {batch_frames:3d} frames: mean latency "
              f"{rep.mean_latency_s * 1e3:7.2f} ms, max "
              f"{rep.max_latency_s * 1e3:7.2f} ms, keeps up: {rep.keeps_up}")

    print("\nSmaller batches cut response latency; all sizes sustain "
          "real time because both stages run far faster than speech.")


if __name__ == "__main__":
    main()
