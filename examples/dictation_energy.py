#!/usr/bin/env python
"""Dictation on a battery: CPU vs GPU vs accelerator energy budget.

The paper's motivating scenario is continuous speech recognition on a
mobile power budget.  This example decodes a dictation-style workload
(large vocabulary, long utterances) on all six platforms and translates
the results into battery terms: how many hours of continuous dictation a
10 Wh phone battery would sustain on each platform.

Run:  python examples/dictation_energy.py
"""

from repro.accel import AcceleratorConfig
from repro.datasets import SyntheticGraphConfig
from repro.system import make_memory_workload, run_platform_comparison

BATTERY_WH = 10.0
PLATFORMS = ("CPU", "GPU", "ASIC", "ASIC+State", "ASIC+Arc", "ASIC+State&Arc")


def main() -> None:
    print("Generating a dictation workload (60k-state graph, 40 s of speech) ...")
    workload = make_memory_workload(
        num_utterances=2,
        frames_per_utterance=20,
        beam=8.0,
        max_active=2000,
        seed=21,
        graph_config=SyntheticGraphConfig(
            num_states=60_000, num_phones=50, seed=21
        ),
    )

    comparison = run_platform_comparison(
        workload, base_config=AcceleratorConfig()
    )
    report = comparison.report()

    print(f"\n{'platform':16s} {'s per speech-s':>14s} {'power':>9s} "
          f"{'J per speech-s':>14s} {'dictation on 10 Wh':>20s}")
    battery_j = BATTERY_WH * 3600.0
    for name in PLATFORMS:
        r = report.by_name()[name]
        hours = battery_j / r.energy_per_speech_second / 3600.0
        print(
            f"{name:16s} {r.decode_time_per_speech_second:14.4f} "
            f"{r.avg_power_w:8.3f}W {r.energy_per_speech_second:14.5f} "
            f"{hours:17.1f} h"
        )

    gpu = report.energy_reduction_vs("GPU")
    cpu = report.energy_reduction_vs("CPU")
    print(
        f"\nASIC+State&Arc uses {gpu['ASIC+State&Arc']:.0f}x less energy than "
        f"the GPU and {cpu['ASIC+State&Arc']:.0f}x less than the CPU "
        f"(paper: 287x and 1185x)."
    )


if __name__ == "__main__":
    main()
