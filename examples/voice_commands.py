#!/usr/bin/env python
"""Voice commands: the full pipeline from raw audio to words.

This example exercises every stage the paper's Section II describes, on a
smart-device command task (the mobile use case that motivates the paper):

1. define a small command vocabulary with hand-written pronunciations;
2. synthesise training audio and extract MFCC features;
3. train the DNN acoustic model (numpy MLP);
4. build the decoding graph (lexicon FST ∘ command-grammar FST);
5. synthesise *test* command audio and decode it end-to-end through the
   DNN scorer and the accelerator simulator.

Run:  python examples/voice_commands.py
"""

import numpy as np

from repro.accel import AcceleratorConfig, AcceleratorSimulator
from repro.acoustic import Dnn, DnnConfig, DnnScorer, TrainConfig, train_dnn
from repro.common.rng import make_rng
from repro.decoder import word_error_rate
from repro.frontend import AudioSynthesizer, MfccConfig, MfccExtractor
from repro.lexicon import Lexicon, PhoneSet, build_lexicon_fst
from repro.lm import build_grammar_fst, train_ngram
from repro.wfst import CompiledWfst, compose, sort_states_by_arc_count

#: Command vocabulary with ARPAbet-ish pronunciations.
COMMANDS = {
    "call": ("k", "ao", "l"),
    "open": ("ow", "p", "ah", "n"),
    "play": ("p", "l", "ey"),
    "stop": ("s", "t", "aa", "p"),
    "next": ("n", "eh", "k", "s", "t"),
    "music": ("m", "y", "uw", "z", "ih", "k"),
    "camera": ("k", "ae", "m", "er", "ah"),
    "message": ("m", "eh", "s", "ih", "jh"),
    "weather": ("w", "eh", "dh", "er"),
    "timer": ("t", "ay", "m", "er"),
}

#: Plausible command bigrams for the grammar.
COMMAND_PHRASES = [
    ["open", "camera"], ["open", "music"], ["play", "music"],
    ["stop", "music"], ["next", "music"], ["call", "message"],
    ["open", "message"], ["open", "weather"], ["stop", "timer"],
    ["open", "timer"], ["play", "next"], ["stop"], ["call"],
]


def build_task():
    phones = PhoneSet()
    words = tuple(COMMANDS)
    prons = tuple(
        tuple(phones.id_of(p) for p in COMMANDS[w]) for w in words
    )
    lexicon = Lexicon(phones, words, prons)

    corpus = [
        [lexicon.word_id(w) for w in phrase]
        for phrase in COMMAND_PHRASES * 8
    ]
    lm = train_ngram(corpus, vocab_size=len(words))
    graph = CompiledWfst.from_fst(
        compose(
            build_lexicon_fst(lexicon, silence_prob=0.2, self_loop_prob=0.75),
            build_grammar_fst(lm),
        )
    )
    return lexicon, graph


def train_acoustic_model(phones: PhoneSet, synth, extractor):
    """Train the MLP on synthetic audio covering every phone."""
    rng = make_rng(123, "voice-commands-train")
    features, labels = [], []
    for utt in range(60):
        seq = rng.choice(phones.num_phones, size=12) + 1
        wave, align = synth.synthesize(seq.tolist(), seed=1000 + utt, mean_frames=6)
        feats = extractor.extract(wave)
        frame_labels = align.frame_labels()[: len(feats)]
        features.append(feats[: len(frame_labels)])
        labels.append(frame_labels - 1)  # class ids are 0-based
    x = np.vstack(features)
    y = np.concatenate(labels)

    dnn = Dnn(
        DnnConfig(input_dim=x.shape[1], hidden_dims=(128, 128),
                  num_classes=phones.num_phones),
        seed=0,
    )
    losses = train_dnn(
        dnn, x, y, TrainConfig(epochs=12, learning_rate=0.08, seed=0)
    )
    accuracy = (dnn.predict(x) == y).mean()
    print(f"  DNN: {dnn.num_params} params, final loss {losses[-1]:.3f}, "
          f"frame accuracy {accuracy:.2%}")
    return dnn, y


def main() -> None:
    print("Building command lexicon, grammar and decoding graph ...")
    lexicon, graph = build_task()
    phones = lexicon.phones
    print(f"  graph: {graph.num_states} states, {graph.num_arcs} arcs")

    synth = AudioSynthesizer(phones, seed=5)
    extractor = MfccExtractor(MfccConfig())

    print("Training the acoustic model on synthetic audio ...")
    dnn, train_labels = train_acoustic_model(phones, synth, extractor)
    priors = DnnScorer.priors_from_labels(train_labels, phones.num_phones)
    scorer = DnnScorer(dnn, priors, acoustic_scale=1.0)

    accelerator = AcceleratorSimulator(
        graph,
        AcceleratorConfig().with_both(),
        beam=20.0,
        sorted_graph=sort_states_by_arc_count(graph),
    )

    print("Decoding spoken commands ...")
    total_wer = 0.0
    tests = [["open", "camera"], ["play", "music"], ["stop", "timer"],
             ["call", "message"], ["open", "weather"]]
    for i, phrase in enumerate(tests):
        phone_seq = []
        for word in phrase:
            phone_seq.append(phones.silence_id)
            phone_seq.extend(lexicon.pronunciation(lexicon.word_id(word)))
        wave, _align = synth.synthesize(phone_seq, seed=500 + i, mean_frames=6)
        scores = scorer.score(extractor.extract(wave))

        result = accelerator.decode(scores)
        hyp = [lexicon.word_of(w) for w in result.words]
        wer = word_error_rate(phrase, hyp)
        total_wer += wer
        print(f"  said: {' '.join(phrase):18s} heard: {' '.join(hyp):18s} "
              f"WER {wer:.2f}  ({result.stats.cycles} cycles)")

    print(f"\nMean command WER: {total_wer / len(tests):.3f}")


if __name__ == "__main__":
    main()
