#!/usr/bin/env python
"""One accelerator, many language models (the paper's flexibility claim).

Section II: "the same ASIC can be used to recognize words in different
languages by using different types of models ... supporting speech
recognition for a different language or adopting more accurate language
models only requires changes to the parameters of the WFST, but not to the
software or hardware implementation."

This example builds three decoding graphs over the same lexicon -- a
unigram, a bigram, and a trigram grammar -- and decodes the same utterances
on the *unchanged* accelerator simulator, comparing graph size, accuracy
and decode cycles.

Run:  python examples/language_flexibility.py
"""

from repro.accel import AcceleratorConfig, AcceleratorSimulator
from repro.datasets import CorpusConfig, TaskConfig, generate_corpus, generate_task
from repro.decoder import word_error_rate
from repro.lexicon import build_lexicon_fst
from repro.lm import (
    build_grammar_fst,
    build_trigram_fst,
    train_ngram,
    train_trigram,
)
from repro.wfst import CompiledWfst, compose, sort_states_by_arc_count
from repro.wfst.fst import Fst


def build_unigram_fst(model):
    """A single-state unigram grammar (the weakest language model)."""
    fst = Fst()
    root = fst.add_state()
    fst.set_start(root)
    fst.set_final(root, model.eos_logprob)
    for word in range(1, model.vocab_size + 1):
        fst.add_arc(root, word, word, model.unigram_logprob[word], root)
    return fst


def main() -> None:
    print("Generating base task (lexicon + corpus + utterances) ...")
    task = generate_task(
        TaskConfig(vocab_size=120, corpus_sentences=800, num_utterances=6,
                   utterance_words=5, seed=31)
    )
    corpus = generate_corpus(
        CorpusConfig(vocab_size=120, num_sentences=800, seed=31)
    )
    lexicon_fst = build_lexicon_fst(task.lexicon)

    bigram = train_ngram(corpus, 120)
    trigram = train_trigram(corpus, 120)
    grammars = {
        "unigram": build_unigram_fst(bigram),
        "bigram": build_grammar_fst(bigram),
        "trigram": build_trigram_fst(trigram),
    }

    config = AcceleratorConfig().with_both()
    print(f"\n{'LM':8s} {'states':>8s} {'arcs':>9s} {'eps %':>6s} "
          f"{'WER':>6s} {'cycles':>10s}")
    for name, grammar in grammars.items():
        graph = CompiledWfst.from_fst(compose(lexicon_fst, grammar))
        sim = AcceleratorSimulator(
            graph, config, beam=16.0,
            sorted_graph=sort_states_by_arc_count(graph),
        )
        total_wer, total_cycles = 0.0, 0
        for utt in task.utterances:
            result = sim.decode(utt.scores)
            total_wer += word_error_rate(utt.words, result.words)
            total_cycles += result.stats.cycles
        print(f"{name:8s} {graph.num_states:8d} {graph.num_arcs:9d} "
              f"{100 * graph.epsilon_fraction():6.1f} "
              f"{total_wer / len(task.utterances):6.2f} {total_cycles:10d}")

    print("\nSame simulator object model, three different recognition "
          "networks: only the WFST parameters changed.")


if __name__ == "__main__":
    main()
