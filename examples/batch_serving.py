#!/usr/bin/env python
"""Batch serving: decode many users at once with the vectorized engine.

The ROADMAP's north star is serving heavy multi-user traffic.  This
example shows the software route there: the ``BatchDecoder`` advances
every utterance's token frontier in lockstep with numpy array sweeps over
the shared compiled graph, instead of per-token dict operations.  It

1. decodes a multi-utterance task with both engines, checks they agree
   word for word, and reports the measured frames/second;
2. feeds the measured per-frame costs into the batched stream simulator
   to answer the serving question: how many concurrent real-time users
   does each engine sustain, and at what latency?

Run:  python examples/batch_serving.py
"""

import time

from repro.datasets import TaskConfig, generate_task
from repro.decoder import BatchDecoder, BeamSearchConfig, ViterbiDecoder
from repro.system import (
    BatchedStreamConfig,
    max_realtime_streams,
    simulate_batched_stream,
)

BEAM = 10.0
NUM_UTTERANCES = 6


def measure_engines():
    """Decode one task with both engines; return (fps_ref, fps_batch)."""
    task = generate_task(
        TaskConfig(vocab_size=150, corpus_sentences=700,
                   num_utterances=NUM_UTTERANCES, seed=23)
    )
    scores = [u.scores for u in task.utterances]
    frames = sum(u.num_frames for u in task.utterances)
    config = BeamSearchConfig(beam=BEAM)

    reference = ViterbiDecoder(task.graph, config)
    t0 = time.perf_counter()
    ref_results = [reference.decode(s) for s in scores]
    ref_fps = frames / (time.perf_counter() - t0)

    batch = BatchDecoder(task.graph, config)
    batch.decode_batch(scores)  # warm the flat layout
    t0 = time.perf_counter()
    batch_results = batch.decode_batch(scores)
    batch_fps = frames / (time.perf_counter() - t0)

    agree = all(
        r.words == b.words for r, b in zip(ref_results, batch_results)
    )
    if not agree:
        raise RuntimeError("engines disagree -- this is a bug")
    print(f"Decoded {NUM_UTTERANCES} utterances ({frames} frames), "
          f"word-identical output:")
    print(f"  reference engine: {ref_fps:8.0f} frames/s")
    print(f"  batch engine:     {batch_fps:8.0f} frames/s "
          f"({batch_fps / ref_fps:.1f}x)")
    return ref_fps, batch_fps


def serving_capacity(ref_fps: float, batch_fps: float) -> None:
    """How many real-time users does each engine's speed sustain?"""
    print("\nServing capacity (10 ms frames, shared engine, batched GPU):")
    for name, fps, efficiency in (
        ("reference", ref_fps, 1.0),   # scalar: every stream pays full price
        ("batch", batch_fps, 0.25),    # vectorized: extra streams amortize
    ):
        config = BatchedStreamConfig(
            search_seconds_per_frame=1.0 / fps,
            search_batch_efficiency=efficiency,
        )
        streams = max_realtime_streams(config)
        print(f"  {name:9s}: up to {streams:4d} concurrent real-time streams")
        if streams:
            rep = simulate_batched_stream(
                3000,
                BatchedStreamConfig(
                    num_streams=streams,
                    search_seconds_per_frame=1.0 / fps,
                    search_batch_efficiency=efficiency,
                ),
            )
            print(f"             at {streams} streams: mean latency "
                  f"{rep.mean_latency_s * 1e3:.1f} ms, "
                  f"keeps up: {rep.keeps_up}")


def main() -> None:
    ref_fps, batch_fps = measure_engines()
    serving_capacity(ref_fps, batch_fps)
    print("\nThe vectorized engine turns the software decoder from a "
          "single-user curiosity into a multi-user serving tier.")


if __name__ == "__main__":
    main()
