#!/usr/bin/env python
"""Architecture design-space exploration with the shared sweep runner.

Sweeps the knobs an architect would turn -- Arc-cache capacity, prefetch
FIFO depth, and hash-table size -- on a large-vocabulary workload, and
reports cycles per arc, miss ratios, power and energy for each point.
This reproduces the style of analysis behind the paper's Figures 4 and 5
and shows how the two Section IV techniques move the design across the
performance/power space.

The whole exploration runs the functional beam search exactly *once* per
graph layout: every configuration is priced by replaying the recorded
trace (`repro.explore.SweepRunner`), so adding sweep points costs
milliseconds, not full simulations.

Run:  python examples/design_space.py
"""

from repro.datasets import SyntheticGraphConfig
from repro.explore import SweepRunner
from repro.system import make_memory_workload


def show(result):
    for point in result.points:
        stats = point.stats
        arcs = stats.arcs_processed + stats.epsilon_arcs_processed
        print(
            f"  {point.label:34s} {stats.cycles / arcs:6.2f} cyc/arc  "
            f"arc-miss {100 * stats.arc_cache.miss_ratio:5.1f}%  "
            f"hash {stats.hash.avg_cycles_per_request:5.2f} cyc/req  "
            f"{point.avg_power_w * 1e3:6.0f} mW  "
            f"{point.energy_j * 1e3:7.3f} mJ"
        )


def main() -> None:
    print("Generating a 40k-state large-vocabulary workload ...")
    workload = make_memory_workload(
        num_utterances=1,
        frames_per_utterance=15,
        beam=8.0,
        max_active=1500,
        seed=11,
        graph_config=SyntheticGraphConfig(
            num_states=40_000, num_phones=50, seed=11
        ),
    )
    runner = SweepRunner(workload)

    print("\nArc cache capacity (base design):")
    show(runner.run(
        [{"arc_cache.size_bytes": kb * 1024} for kb in (256, 512, 1024, 2048)],
        labels=[f"arc cache {kb} KB" for kb in (256, 512, 1024, 2048)],
    ))

    print("\nPrefetch FIFO depth (ASIC+Arc):")
    depths = (8, 16, 32, 64, 128)
    show(runner.run(
        [
            {"prefetch_enabled": True, "prefetch_fifo_entries": d}
            for d in depths
        ],
        labels=[f"Arc FIFO {d} entries" for d in depths],
    ))

    print("\nHash table entries (base design):")
    entry_counts = (4096, 8192, 16384, 32768)
    show(runner.run(
        [{"hash_table.num_entries": e} for e in entry_counts],
        labels=[f"hash {e // 1024}K entries" for e in entry_counts],
    ))

    print("\nThe paper's four configurations:")
    show(runner.run(
        [
            {},
            {"state_direct_enabled": True},
            {"prefetch_enabled": True},
            {"state_direct_enabled": True, "prefetch_enabled": True},
        ],
        labels=["ASIC (base)", "ASIC+State", "ASIC+Arc", "ASIC+State&Arc"],
    ))


if __name__ == "__main__":
    main()
