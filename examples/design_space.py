#!/usr/bin/env python
"""Architecture design-space exploration with the accelerator simulator.

Sweeps the knobs an architect would turn -- Arc-cache capacity, prefetch
FIFO depth, and hash-table size -- on a large-vocabulary workload, and
reports cycles per arc, miss ratios, power and energy for each point.
This reproduces the style of analysis behind the paper's Figures 4 and 5
and shows how the two Section IV techniques move the design across the
performance/power space.

Run:  python examples/design_space.py
"""

from dataclasses import replace

from repro.accel import AcceleratorConfig, AcceleratorSimulator
from repro.datasets import SyntheticGraphConfig
from repro.energy import AcceleratorEnergyModel
from repro.system import make_memory_workload


def evaluate(workload, config, label, energy_model):
    sim = AcceleratorSimulator(
        workload.graph,
        config,
        beam=workload.beam,
        sorted_graph=(
            workload.sorted_graph if config.state_direct_enabled else None
        ),
        max_active=workload.max_active,
    )
    stats = sim.decode(workload.scores[0]).stats
    arcs = stats.arcs_processed + stats.epsilon_arcs_processed
    power = energy_model.avg_power_w(config, stats)
    energy = energy_model.energy(config, stats).total_j
    print(
        f"  {label:34s} {stats.cycles / arcs:6.2f} cyc/arc  "
        f"arc-miss {100 * stats.arc_cache.miss_ratio:5.1f}%  "
        f"hash {stats.hash.avg_cycles_per_request:5.2f} cyc/req  "
        f"{power * 1e3:6.0f} mW  {energy * 1e3:7.3f} mJ"
    )


def main() -> None:
    print("Generating a 40k-state large-vocabulary workload ...")
    workload = make_memory_workload(
        num_utterances=1,
        frames_per_utterance=15,
        beam=8.0,
        max_active=1500,
        seed=11,
        graph_config=SyntheticGraphConfig(
            num_states=40_000, num_phones=50, seed=11
        ),
    )
    energy_model = AcceleratorEnergyModel()
    base = AcceleratorConfig()

    print("\nArc cache capacity (base design):")
    for kb in (256, 512, 1024, 2048):
        cfg = replace(
            base, arc_cache=replace(base.arc_cache, size_bytes=kb * 1024)
        )
        evaluate(workload, cfg, f"arc cache {kb} KB", energy_model)

    print("\nPrefetch FIFO depth (ASIC+Arc):")
    for depth in (8, 16, 32, 64, 128):
        cfg = replace(base, prefetch_enabled=True, prefetch_fifo_entries=depth)
        evaluate(workload, cfg, f"Arc FIFO {depth} entries", energy_model)

    print("\nHash table entries (base design):")
    for entries in (4096, 8192, 16384, 32768):
        cfg = replace(
            base, hash_table=replace(base.hash_table, num_entries=entries)
        )
        evaluate(workload, cfg, f"hash {entries // 1024}K entries", energy_model)

    print("\nThe paper's four configurations:")
    for label, cfg in [
        ("ASIC (base)", base),
        ("ASIC+State", base.with_state_direct()),
        ("ASIC+Arc", base.with_prefetch()),
        ("ASIC+State&Arc", base.with_both()),
    ]:
        evaluate(workload, cfg, label, energy_model)


if __name__ == "__main__":
    main()
