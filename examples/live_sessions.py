#!/usr/bin/env python
"""Live decode sessions: continuous batching over one vectorized engine.

The paper's accelerator serves a *live* pipeline -- audio arrives 10 ms
at a time and the search runs batch by batch behind the GPU.  This
example drives that traffic shape in software:

1. users call in at different times (sessions join mid-flight);
2. each pushes small chunks of acoustic scores as they are "spoken";
3. one :class:`StreamingServer` advances every live session in fused
   lockstep sweeps, emitting partial hypotheses as words appear;
4. sessions retire the moment their input ends, and the final words are
   checked against one-shot offline decoding -- streaming costs nothing
   in accuracy, by construction.

Run:  python examples/live_sessions.py
"""

from repro.datasets import TaskConfig, generate_task
from repro.decoder import BatchDecoder, BeamSearchConfig
from repro.system import StreamingServer

BEAM = 12.0
CHUNK_FRAMES = 10  # 100 ms of audio per push
STAGGER_ROUNDS = 4  # rounds between arrivals


def main() -> None:
    task = generate_task(
        TaskConfig(vocab_size=120, corpus_sentences=500, num_utterances=5,
                   seed=33)
    )
    matrices = [u.scores.matrix for u in task.utterances]
    oneshot = BatchDecoder(task.graph, BeamSearchConfig(beam=BEAM)).decode_batch(
        [u.scores for u in task.utterances]
    )

    server = StreamingServer(task.graph, BeamSearchConfig(beam=BEAM))
    caller_of = {}
    last_partial = {}

    def on_join(round_no, i, sid):
        caller_of[sid] = i
        print(f"[round {round_no:3d}] caller {i} joined "
              f"({len(matrices[i])} frames of audio)")

    def on_round(round_no):
        # Report partial hypotheses as new words appear.
        for sid in server.live_session_ids:
            i = caller_of[sid]
            hypothesis = server.partial(sid)
            if hypothesis is None:  # beam emptied; error surfaces at the end
                continue
            words = hypothesis.words
            if words != last_partial.get(i):
                last_partial[i] = words
                text = " ".join(task.lexicon.word_of(w) for w in words)
                print(f"[round {round_no:3d}] caller {i} so far: "
                      f"\"{text}\"")

    print(f"{len(matrices)} callers, {CHUNK_FRAMES}-frame chunks, one "
          f"caller joining every {STAGGER_ROUNDS} rounds\n")
    records = server.serve_staggered(
        [u.scores for u in task.utterances],
        chunk_frames=CHUNK_FRAMES,
        stagger=STAGGER_ROUNDS,
        on_join=on_join,
        on_round=on_round,
    )

    print("\nFinal hypotheses (streamed == one-shot offline):")
    for i, record in enumerate(records):
        assert record.result.words == oneshot[i].words
        assert record.result.log_likelihood == oneshot[i].log_likelihood
        s = record.stats
        print(f"  caller {i}: {s.frames_decoded} frames, "
              f"{s.frames_per_second:6.0f} frames/s, mean wait "
              f"{s.mean_wait_s * 1e3:5.2f} ms  "
              f"\"{' '.join(task.transcript(record.result))}\"")
    stats = server.stats
    print(f"\nServer: {stats.frames_decoded} frames in {stats.sweeps} "
          f"lockstep sweeps (mean occupancy {stats.mean_occupancy:.1f} "
          f"sessions), aggregate {stats.aggregate_frames_per_second:.0f} "
          f"frames/s of engine busy time")
    print("Streaming sessions decode word-identically to offline batches "
          "-- continuous batching is free accuracy-wise.")


if __name__ == "__main__":
    main()
