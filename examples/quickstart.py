#!/usr/bin/env python
"""Quickstart: decode speech on the software decoder and the accelerator.

Generates a complete synthetic ASR task (lexicon -> bigram LM -> composed
L∘G decoding graph -> aligned utterances with acoustic scores), decodes it
with the reference software decoder, then runs the same utterances through
the cycle-accurate accelerator simulator in its fastest configuration
(ASIC+State&Arc) and reports accuracy, cycles and energy.

Run:  python examples/quickstart.py
"""

from repro.accel import AcceleratorConfig, AcceleratorSimulator
from repro.datasets import TaskConfig, generate_task
from repro.decoder import BeamSearchConfig, ViterbiDecoder, word_error_rate
from repro.energy import AcceleratorEnergyModel
from repro.wfst import sort_states_by_arc_count

BEAM = 14.0


def main() -> None:
    print("Generating a 300-word synthetic ASR task ...")
    task = generate_task(
        TaskConfig(vocab_size=300, corpus_sentences=1500, num_utterances=5, seed=7)
    )
    graph = task.graph
    print(
        f"  decoding graph: {graph.num_states} states, {graph.num_arcs} arcs "
        f"({graph.total_size_bytes / 1024:.0f} KB, "
        f"{100 * graph.epsilon_fraction():.1f}% epsilon arcs)"
    )

    reference = ViterbiDecoder(graph, BeamSearchConfig(beam=BEAM))

    config = AcceleratorConfig().with_both()  # prefetch + sorted layout
    accelerator = AcceleratorSimulator(
        graph, config, beam=BEAM, sorted_graph=sort_states_by_arc_count(graph)
    )
    energy_model = AcceleratorEnergyModel()

    total_wer = 0.0
    total_cycles = 0
    total_energy = 0.0
    total_speech = 0.0
    for i, utt in enumerate(task.utterances):
        ref = reference.decode(utt.scores)
        acc = accelerator.decode(utt.scores)
        assert acc.words == ref.words, "accelerator must match the software decoder"

        wer = word_error_rate(utt.words, acc.words)
        total_wer += wer
        total_cycles += acc.stats.cycles
        total_energy += energy_model.energy(config, acc.stats).total_j
        total_speech += utt.duration_seconds

        hyp = " ".join(task.transcript(acc))
        print(f"  utt {i}: {utt.num_frames} frames, WER {wer:.2f}  ->  {hyp}")

    seconds = total_cycles / config.frequency_hz
    print(f"\nMean WER: {total_wer / len(task.utterances):.3f}")
    print(
        f"Accelerator: {total_cycles} cycles = {seconds * 1e3:.2f} ms for "
        f"{total_speech:.2f} s of speech "
        f"({seconds / total_speech:.4f} s per second of speech -- "
        f"{'real-time' if seconds < total_speech else 'not real-time'})"
    )
    print(f"Energy: {total_energy * 1e3:.3f} mJ "
          f"({total_energy / total_speech * 1e3:.3f} mJ per second of speech)")


if __name__ == "__main__":
    main()
