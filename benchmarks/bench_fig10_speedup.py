"""Figure 10: speedup of each accelerator configuration over the GPU.

Paper: ASIC 0.88x, ASIC+State 0.90x, ASIC+Arc 1.64x, ASIC+State&Arc 1.70x.
The crossover -- the base design slightly behind the GPU, the prefetching
designs ahead -- is the headline performance claim.
"""

from benchmarks.common import format_table, report
from repro.common.ascii_plot import bar_chart

PAPER_SPEEDUP = {
    "CPU": 0.102,
    "GPU": 1.0,
    "ASIC": 0.88,
    "ASIC+State": 0.90,
    "ASIC+Arc": 1.64,
    "ASIC+State&Arc": 1.70,
}


def compute(comparison):
    speedups = comparison.report().speedup_vs("GPU")
    return [
        [name, PAPER_SPEEDUP[name], speedups[name]]
        for name in PAPER_SPEEDUP
    ]


def test_fig10_speedup_vs_gpu(benchmark, std_comparison):
    rows = benchmark.pedantic(
        compute, args=(std_comparison,), rounds=1, iterations=1
    )
    text = format_table(
        "Figure 10 -- speedup over the GPU",
        ["platform", "paper (x)", "measured (x)"],
        rows,
    )
    chart = bar_chart([(r[0], round(r[2], 3)) for r in rows])
    report("fig10_speedup", text + "\n\n" + chart)

    measured = {r[0]: r[2] for r in rows}
    # Shape checks:
    # the CPU is ~10x slower than the GPU;
    assert measured["CPU"] < 0.2
    # the prefetching configurations beat the GPU;
    assert measured["ASIC+Arc"] > 1.0
    assert measured["ASIC+State&Arc"] > 1.0
    # and they beat the non-prefetching configurations decisively.
    assert measured["ASIC+Arc"] > 1.4 * measured["ASIC"]
    # The state technique alone is roughly performance-neutral.
    assert abs(measured["ASIC+State"] - measured["ASIC"]) < 0.35 * measured["ASIC"]
