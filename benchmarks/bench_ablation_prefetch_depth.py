"""Ablation: prefetch decoupling depth (Section V picks 64 entries).

The paper chooses 64 entries for the Arc FIFO / Request FIFO / Reorder
Buffer "in order to hide most of the memory latency".  This ablation sweeps
the depth through the shared runner and shows the saturation: with a
50-cycle DRAM and a 32-deep memory controller, depths beyond ~32-64 buy
nothing -- exactly why the paper's choice is where it is.
"""

from benchmarks.common import format_table, report, sweep_runner

DEPTHS = (4, 8, 16, 32, 64, 128, 256)


def run(workload):
    result = sweep_runner(workload).run(
        [
            {"prefetch_enabled": True, "prefetch_fifo_entries": depth}
            for depth in DEPTHS
        ]
    )
    base_cycles = result.points[0].cycles
    return [
        [depth, point.cycles, base_cycles / point.cycles]
        for depth, point in zip(DEPTHS, result.points)
    ]


def test_ablation_prefetch_depth(benchmark, swp_workload):
    rows = benchmark.pedantic(
        run, args=(swp_workload,), rounds=1, iterations=1
    )
    text = format_table(
        "Ablation -- prefetch FIFO/ROB depth (paper: 64 entries)",
        ["entries", "cycles", "speedup vs 4"],
        rows,
    )
    report("ablation_prefetch_depth", text)

    speedups = {r[0]: r[2] for r in rows}
    # Deeper decoupling helps up to the memory-system limits...
    assert speedups[64] > speedups[4]
    # ...and saturates: 256 entries add <2% over the paper's 64.
    assert speedups[256] / speedups[64] < 1.02
