"""Ablation: prefetch decoupling depth (Section V picks 64 entries).

The paper chooses 64 entries for the Arc FIFO / Request FIFO / Reorder
Buffer "in order to hide most of the memory latency".  This ablation sweeps
the depth and shows the saturation: with a 50-cycle DRAM and a 32-deep
memory controller, depths beyond ~32-64 buy nothing -- exactly why the
paper's choice is where it is.
"""

from dataclasses import replace

from benchmarks.common import base_config, format_table, report
from repro.accel import AcceleratorSimulator

DEPTHS = (4, 8, 16, 32, 64, 128, 256)


def run(workload):
    rows = []
    base_cycles = None
    for depth in DEPTHS:
        cfg = replace(
            base_config(), prefetch_enabled=True, prefetch_fifo_entries=depth
        )
        sim = AcceleratorSimulator(
            workload.graph, cfg, beam=workload.beam,
            max_active=workload.max_active,
        )
        cycles = sim.decode(workload.scores[0]).stats.cycles
        if base_cycles is None:
            base_cycles = cycles
        rows.append([depth, cycles, base_cycles / cycles])
    return rows


def test_ablation_prefetch_depth(benchmark, swp_workload):
    rows = benchmark.pedantic(
        run, args=(swp_workload,), rounds=1, iterations=1
    )
    text = format_table(
        "Ablation -- prefetch FIFO/ROB depth (paper: 64 entries)",
        ["entries", "cycles", "speedup vs 4"],
        rows,
    )
    report("ablation_prefetch_depth", text)

    speedups = {r[0]: r[2] for r in rows}
    # Deeper decoupling helps up to the memory-system limits...
    assert speedups[64] > speedups[4]
    # ...and saturates: 256 entries add <2% over the paper's 64.
    assert speedups[256] / speedups[64] < 1.02
