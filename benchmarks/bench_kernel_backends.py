"""Benchmark: compiled kernel backend vs the portable numpy backend.

The fused multi-session frame sweep -- prune, CSR arc gather, float64
score accumulation, segment-max merge, epsilon closure -- runs on a
pluggable array backend (:mod:`repro.decoder.backends`).  This bench
decodes the same ragged utterance fleet through :class:`BatchDecoder`
(which drives every frame through the fused sweep) once per importable
backend and gates the compiled one:

* **correctness is absolute** -- words, bit-exact path scores and every
  order-independent counter must match the numpy backend, here on the
  bench fleet and exhaustively in ``tests/test_backend_equivalence.py``;
* **throughput is core-aware** -- with >= 2 usable cores the numba
  backend's ``prange`` expansion must reach ``SPEEDUP_TARGET`` (2x) the
  numpy frames/s; on a single-core runner parallel speedup is
  physically impossible, so the gate degrades to ``SINGLE_CORE_FLOOR``
  (0.9x: JIT dispatch overhead must not regress the sweep).

Without the ``[compiled]`` extra the bench records the numpy baseline
and passes trivially -- the portable path is the product there, and the
``compiled-backend`` CI job is where the speedup gate actually bites.
"""

import os
import time

import pytest

from benchmarks.common import GRAPH_CACHE, format_table, report, write_json
from repro.datasets import SyntheticGraphConfig
from repro.decoder import BatchDecoder, DecoderConfig, numba_available
from repro.system import make_memory_workload

#: Serving-regime fleet: wide frontiers keep the sweep in the regime
#: where the arc expansion dominates and parallelism can pay.
FULL_SHAPE = dict(num_states=50_000, num_phones=50, utterances=16,
                  frames=30, max_active=2_000, rounds=3)
#: CI smoke shape: seconds, not minutes, including the JIT warmup.
QUICK_SHAPE = dict(num_states=8_000, num_phones=50, utterances=8,
                   frames=16, max_active=600, rounds=2)

#: With >= 2 usable cores the compiled sweep must beat numpy by this.
SPEEDUP_TARGET = 2.0
#: Single-core floor: compiled dispatch must not collapse throughput.
SINGLE_CORE_FLOOR = 0.9


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _summary(result):
    """Everything two backends must agree on, per utterance."""
    return (
        result.words,
        result.log_likelihood,
        result.reached_final,
        result.stats.tokens_pruned,
        result.stats.states_expanded,
        result.stats.arcs_processed,
        result.stats.tokens_created,
        tuple(result.stats.active_tokens_per_frame),
    )


def _time_fleet(decoder, fleet, rounds):
    """Best-of-N wall time for one full fused-sweep decode of the fleet."""
    best_seconds, results = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        batch = decoder.decode_batch(fleet)
        seconds = time.perf_counter() - t0
        if seconds < best_seconds:
            best_seconds, results = seconds, batch
    return best_seconds, results


def run_kernel_backends(quick: bool = False, seed: int = 7) -> dict:
    """Decode one fleet per backend; returns the comparison payload."""
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    workload = make_memory_workload(
        num_utterances=shape["utterances"],
        frames_per_utterance=shape["frames"],
        beam=8.0,
        max_active=shape["max_active"],
        seed=seed,
        graph_config=SyntheticGraphConfig(
            num_states=shape["num_states"],
            num_phones=shape["num_phones"],
            seed=seed,
        ),
        graph_cache=GRAPH_CACHE,
    )
    # Ragged fleet: drop trailing frames from every other utterance so
    # the fused sweep sheds sessions mid-run, as live serving does.
    from repro.acoustic.scorer import AcousticScores
    fleet = [
        AcousticScores(scores.matrix[: scores.num_frames - (i % 2) * 3])
        for i, scores in enumerate(workload.scores)
    ]
    total_frames = sum(s.num_frames for s in fleet)
    config = dict(beam=workload.beam, max_active=workload.max_active)

    base = BatchDecoder(workload.graph, DecoderConfig(backend="numpy", **config))
    base.decode_batch(fleet)  # warm the flat layout and allocator
    numpy_seconds, numpy_results = _time_fleet(base, fleet, shape["rounds"])
    numpy_fps = total_frames / numpy_seconds

    cores = _usable_cores()
    payload = {
        "workload": {**shape, "beam": workload.beam, "seed": seed,
                     "quick": quick},
        "total_frames": total_frames,
        "usable_cores": cores,
        "numba_available": numba_available(),
        "numpy_seconds": numpy_seconds,
        "numpy_frames_per_second": numpy_fps,
        "fused_frames_per_second": numpy_fps,
        "words_match": True,
    }
    if not numba_available():
        return payload

    compiled = BatchDecoder(
        workload.graph, DecoderConfig(backend="numba", **config)
    )
    assert compiled.backend_name == "numba"
    compiled.decode_batch(fleet)  # JIT compile outside the timed window
    numba_seconds, numba_results = _time_fleet(compiled, fleet, shape["rounds"])
    numba_fps = total_frames / numba_seconds

    mismatches = [
        i for i, (ref, jit) in enumerate(zip(numpy_results, numba_results))
        if _summary(jit) != _summary(ref)
    ]
    if mismatches:
        raise AssertionError(
            f"numba backend diverged from numpy on utterances {mismatches}"
        )

    target = SPEEDUP_TARGET if cores >= 2 else SINGLE_CORE_FLOOR
    payload.update({
        "numba_seconds": numba_seconds,
        "numba_frames_per_second": numba_fps,
        "fused_frames_per_second": numba_fps,
        "speedup": numba_fps / numpy_fps,
        "speedup_target": target,
        "parallel_gate": cores >= 2,
    })
    return payload


def _report(result: dict) -> None:
    name = (
        "kernel_backends_quick" if result["workload"]["quick"]
        else "kernel_backends"
    )
    rows = [
        ["numpy", result["total_frames"], result["numpy_seconds"],
         result["numpy_frames_per_second"]],
    ]
    if result["numba_available"]:
        rows.append(
            ["numba", result["total_frames"], result["numba_seconds"],
             result["numba_frames_per_second"]],
        )
        gate = "parallel" if result["parallel_gate"] else "single-core floor"
        headline = (
            f"Kernel backends -- fused sweep over {result['total_frames']} "
            f"frames, numba speedup {result['speedup']:.2f}x (gate >= "
            f"{result['speedup_target']:.2f}x, {gate}, "
            f"{result['usable_cores']} cores), output identical"
        )
    else:
        headline = (
            f"Kernel backends -- numpy only ({result['total_frames']} "
            f"frames; install the [compiled] extra for the numba backend)"
        )
    text = format_table(
        headline, ["backend", "frames", "seconds", "frames/s"], rows
    )
    report(name, text)
    write_json(name, result)


def _gate(result: dict) -> None:
    assert result["words_match"]
    if result["numba_available"]:
        assert result["speedup"] >= result["speedup_target"], (
            f"compiled-backend speedup {result['speedup']:.2f}x below the "
            f"{result['speedup_target']:.2f}x gate"
        )


def test_kernel_backends(benchmark):
    result = benchmark.pedantic(run_kernel_backends, rounds=1, iterations=1)
    _report(result)
    _gate(result)


@pytest.mark.parametrize("quick", [True])
def test_kernel_backends_quick(benchmark, quick):
    result = benchmark.pedantic(
        run_kernel_backends, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    _report(result)
    _gate(result)
