"""Tables I, II and III: hardware parameters of the three platforms.

These are configuration tables rather than measurements; the benchmark
asserts that our defaults reproduce every row and prints them side by side.
"""

from benchmarks.common import format_table, report
from repro.accel import AcceleratorConfig
from repro.energy import INTEL_I7_6700K
from repro.gpu import GTX980


def compute():
    acc = AcceleratorConfig()
    t1 = [
        ["Technology", "28 nm", f"{acc.technology_nm} nm"],
        ["Frequency", "600 MHz", f"{acc.frequency_hz / 1e6:.0f} MHz"],
        ["State Cache", "512 KB, 4-way, 64 B/line",
         f"{acc.state_cache.size_bytes // 1024} KB, {acc.state_cache.assoc}-way, "
         f"{acc.state_cache.line_bytes} B/line"],
        ["Arc Cache", "1 MB, 4-way, 64 B/line",
         f"{acc.arc_cache.size_bytes // 2**20} MB, {acc.arc_cache.assoc}-way, "
         f"{acc.arc_cache.line_bytes} B/line"],
        ["Token Cache", "512 KB, 2-way, 64 B/line",
         f"{acc.token_cache.size_bytes // 1024} KB, {acc.token_cache.assoc}-way, "
         f"{acc.token_cache.line_bytes} B/line"],
        ["Acoustic Likelihood Buffer", "64 KB",
         f"{acc.acoustic_buffer_bytes // 1024} KB"],
        ["Hash Table", "768 KB, 32K entries",
         f"{acc.hash_table.size_bytes // 1024} KB, "
         f"{acc.hash_table.num_entries // 1024}K entries"],
        ["Memory Controller", "32 in-flight requests",
         f"{acc.mem_max_inflight} in-flight requests"],
        ["State Issuer", "8 in-flight states",
         f"{acc.state_issuer_inflight} in-flight states"],
        ["Arc Issuer", "8 in-flight arcs",
         f"{acc.arc_issuer_inflight} in-flight arcs"],
        ["Token Issuer", "32 in-flight tokens",
         f"{acc.token_issuer_inflight} in-flight tokens"],
        ["Acoustic Likelihood Issuer", "1 in-flight arc",
         f"{acc.acoustic_issuer_inflight} in-flight arc"],
        ["Likelihood Evaluation Unit", "4 fp adders, 2 fp comparators",
         f"{acc.fp_adders} fp adders, {acc.fp_comparators} fp comparators"],
    ]
    t2 = [
        ["CPU", "Intel Core i7 6700K", INTEL_I7_6700K.name],
        ["Number of cores", "4", str(INTEL_I7_6700K.num_cores)],
        ["Technology", "14 nm", f"{INTEL_I7_6700K.technology_nm} nm"],
        ["Frequency", "4.2 GHz", f"{INTEL_I7_6700K.frequency_hz / 1e9:.1f} GHz"],
        ["L3", "8 MB", f"{INTEL_I7_6700K.l3_mb} MB"],
    ]
    t3 = [
        ["GPU", "NVIDIA GeForce GTX 980", GTX980.name],
        ["Streaming multiprocessors", "16 (2048 threads/SM)",
         f"{GTX980.num_sms} ({GTX980.threads_per_sm} threads/SM)"],
        ["Technology", "28 nm", f"{GTX980.technology_nm} nm"],
        ["Frequency", "1.28 GHz", f"{GTX980.frequency_hz / 1e9:.2f} GHz"],
        ["L2 cache", "2 MB", f"{GTX980.l2_mb} MB"],
    ]
    return t1, t2, t3


def test_tables_1_2_3(benchmark):
    t1, t2, t3 = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = "\n\n".join(
        [
            format_table("Table I -- accelerator parameters",
                         ["parameter", "paper", "ours"], t1),
            format_table("Table II -- CPU parameters",
                         ["parameter", "paper", "ours"], t2),
            format_table("Table III -- GPU parameters",
                         ["parameter", "paper", "ours"], t3),
        ]
    )
    report("tables_1_2_3", text)
    for table in (t1, t2, t3):
        for _param, paper, ours in table:
            # Normalised equality: every row of ours matches the paper.
            assert paper.replace(" ", "").lower() == ours.replace(" ", "").lower(), (
                paper, ours
            )
