"""Figure 14: energy vs decode time per second of speech (the scatter that
summarises the evaluation).

Paper anchors: the GPU is 9.8x faster than the CPU and uses 4.2x less
energy; the final accelerator configuration is 16.7x faster than the CPU
with 1185x less energy, and 1.7x faster than the GPU with 287x less
energy.
"""

from benchmarks.common import PLATFORM_ORDER, format_table, report

PAPER_ANCHORS = {
    ("GPU", "CPU"): (9.8, 4.2),
    ("ASIC+State&Arc", "CPU"): (16.7, 1185.0),
    ("ASIC+State&Arc", "GPU"): (1.7, 287.0),
}


def compute(comparison):
    rep = comparison.report()
    rows = [
        [
            name,
            rep.by_name()[name].decode_time_per_speech_second,
            rep.by_name()[name].energy_per_speech_second,
        ]
        for name in PLATFORM_ORDER
    ]
    anchors = []
    for (a, b), (paper_speed, paper_energy) in PAPER_ANCHORS.items():
        speed = rep.speedup_vs(b)[a]
        energy = rep.energy_reduction_vs(b)[a]
        anchors.append([f"{a} vs {b}", paper_speed, speed, paper_energy, energy])
    return rows, anchors


def test_fig14_energy_vs_time(benchmark, std_comparison):
    rows, anchors = benchmark.pedantic(
        compute, args=(std_comparison,), rounds=1, iterations=1
    )
    scatter = format_table(
        "Figure 14 -- energy vs decode time per second of speech",
        ["platform", "time (s/s)", "energy (J/s)"],
        rows,
    )
    anchor_table = format_table(
        "Figure 14 anchors -- pairwise speedup / energy reduction",
        ["pair", "paper speedup", "measured", "paper energy red.", "measured"],
        anchors,
    )
    report("fig14_energy_vs_time", scatter + "\n\n" + anchor_table)

    data = {r[0]: (r[1], r[2]) for r in rows}
    # Shape: the CPU sits in the worst corner (slowest, most energy)...
    assert all(data["CPU"][0] >= data[p][0] for p in data)
    assert all(data["CPU"][1] >= data[p][1] for p in data)
    # ...and the full accelerator dominates every platform on both axes.
    best = data["ASIC+State&Arc"]
    assert all(best[1] <= data[p][1] for p in data)
