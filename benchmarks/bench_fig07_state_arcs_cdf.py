"""Figure 7: cumulative share of dynamically accessed states vs out-degree.

Paper: although the maximum out-degree is 770, 97% of the states fetched
from memory during decoding have 15 or fewer arcs -- the observation the
Section IV-B bandwidth optimisation is built on.
"""

import numpy as np

from benchmarks.common import format_table, report

DEGREES = (1, 2, 4, 8, 15, 16, 32, 64, 770)
PAPER_AT_15 = 97.0


def compute(comparison):
    degrees = np.array(
        comparison.runs["CPU"].search.visited_state_degrees, dtype=np.int64
    )
    rows = []
    for d in DEGREES:
        pct = 100.0 * (degrees <= d).mean()
        rows.append([d, pct])
    return rows, int(degrees.max())


def test_fig07_state_arcs_cdf(benchmark, std_comparison):
    rows, max_degree = benchmark.pedantic(
        compute, args=(std_comparison,), rounds=1, iterations=1
    )
    text = format_table(
        f"Figure 7 -- cumulative %% of dynamically fetched states vs arcs "
        f"(paper: 97% <= 15 arcs; max degree here {max_degree})",
        ["<= arcs", "measured cumulative %"],
        rows,
    )
    report("fig07_state_arcs_cdf", text)

    cdf = dict((r[0], r[1]) for r in rows)
    # Shape: the overwhelming majority of visited states are small.
    assert cdf[15] > 85.0
    # The tail exists but is tiny.
    assert cdf[770] == 100.0
    assert cdf[1] < cdf[15]
