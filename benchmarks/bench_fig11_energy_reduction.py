"""Figure 11: energy reduction vs the GPU.

Paper: the base ASIC uses 171x less energy than the GPU; with both
memory-system techniques the reduction grows to 287x (the abstract's
headline number).
"""

from benchmarks.common import format_table, report

PAPER_REDUCTION = {
    "ASIC": 171.0,
    "ASIC+State": 179.0,
    "ASIC+Arc": 273.0,
    "ASIC+State&Arc": 287.0,
}


def compute(comparison):
    reductions = comparison.report().energy_reduction_vs("GPU")
    return [
        [name, PAPER_REDUCTION[name], reductions[name]]
        for name in PAPER_REDUCTION
    ]


def test_fig11_energy_reduction(benchmark, std_comparison):
    rows = benchmark.pedantic(
        compute, args=(std_comparison,), rounds=1, iterations=1
    )
    text = format_table(
        "Figure 11 -- energy reduction vs the GPU",
        ["configuration", "paper (x)", "measured (x)"],
        rows,
    )
    report("fig11_energy_reduction", text)

    measured = {r[0]: r[2] for r in rows}
    # Shape: two orders of magnitude for every configuration...
    assert all(v > 50.0 for v in measured.values())
    # ...with the combined techniques the most efficient.
    assert measured["ASIC+State&Arc"] > measured["ASIC"]
