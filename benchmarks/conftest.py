"""Session-scoped fixtures shared by the figure benchmarks.

The six-platform comparison on the standard workload is the most expensive
computation and feeds Figures 9, 10, 11, 12, 13 and 14 -- it runs once per
session.
"""

import pytest

from benchmarks.common import base_config, standard_workload, sweep_workload
from repro.system import run_platform_comparison


def pytest_collection_modifyitems(items):
    """Every benchmark carries the ``bench`` marker (nightly tier)."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def std_workload():
    return standard_workload()


@pytest.fixture(scope="session")
def std_comparison(std_workload):
    """All six platforms on the standard workload (consistency-checked)."""
    return run_platform_comparison(std_workload, base_config=base_config())


@pytest.fixture(scope="session")
def swp_workload():
    return sweep_workload()
