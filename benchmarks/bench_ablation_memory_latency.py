"""Ablation: DRAM latency sensitivity with and without prefetching.

The paper's Section IV argues the design is latency-bound (2.11x from
perfect caches) and that the prefetching architecture exists to tolerate
that latency.  This ablation sweeps the DRAM latency around the modelled
50 cycles as one 8-point grid (latency x prefetch) on the shared runner:
the base design degrades steeply while the prefetching design stays
nearly flat -- the latency-tolerance claim in one table.
"""

from benchmarks.common import format_table, report, sweep_runner
from repro.explore import ParameterGrid

LATENCIES = (25, 50, 100, 200)


def run(workload):
    grid = ParameterGrid(
        [
            ("mem_latency_cycles", LATENCIES),
            ("prefetch_enabled", (False, True)),
        ]
    )
    result = sweep_runner(workload).run(grid)
    cycles = {
        (p.overrides["mem_latency_cycles"], p.overrides["prefetch_enabled"]):
            p.cycles
        for p in result.points
    }
    return [
        [
            latency,
            cycles[(latency, False)],
            cycles[(latency, True)],
            cycles[(latency, False)] / cycles[(latency, True)],
        ]
        for latency in LATENCIES
    ]


def test_ablation_memory_latency(benchmark, swp_workload):
    rows = benchmark.pedantic(
        run, args=(swp_workload,), rounds=1, iterations=1
    )
    text = format_table(
        "Ablation -- DRAM latency sensitivity (Table I models 50 cycles)",
        ["latency (cycles)", "base cycles", "prefetch cycles",
         "prefetch speedup"],
        rows,
    )
    report("ablation_memory_latency", text)

    base = [r[1] for r in rows]
    pref = [r[2] for r in rows]
    gain = [r[3] for r in rows]
    # The base design degrades with latency...
    assert base[-1] > 1.5 * base[0]
    # ...the prefetching design degrades far less...
    assert (pref[-1] / pref[0]) < (base[-1] / base[0])
    # ...so the prefetch advantage grows with latency.
    assert gain[-1] > gain[0]
