"""Figure 9: decoding time per second of speech for all six platforms.

Paper values (seconds of decode per second of speech, read off the figure):
CPU ~0.30, GPU ~0.031, ASIC ~0.035, ASIC+State ~0.034, ASIC+Arc ~0.019,
ASIC+State&Arc ~0.018.  All systems are real-time (< 1 s/s).
"""

from benchmarks.common import PLATFORM_ORDER, format_table, report

PAPER_S_PER_S = {
    "CPU": 0.298,
    "GPU": 0.0305,
    "ASIC": 0.0347,
    "ASIC+State": 0.0339,
    "ASIC+Arc": 0.0186,
    "ASIC+State&Arc": 0.0179,
}


def compute(comparison):
    rep = comparison.report()
    rows = []
    for name in PLATFORM_ORDER:
        r = rep.by_name()[name]
        rows.append(
            [
                name,
                PAPER_S_PER_S[name],
                r.decode_time_per_speech_second,
                "yes" if r.realtime else "NO",
            ]
        )
    return rows


def test_fig09_decode_time(benchmark, std_comparison):
    rows = benchmark.pedantic(
        compute, args=(std_comparison,), rounds=1, iterations=1
    )
    text = format_table(
        "Figure 9 -- decode time per second of speech",
        ["platform", "paper (s/s)", "measured (s/s)", "real-time"],
        rows,
    )
    report("fig09_decode_time", text)

    measured = {r[0]: r[2] for r in rows}
    # Shape: every system decodes in real time.
    assert all(v < 1.0 for v in measured.values())
    # CPU is an order of magnitude slower than everything else.
    assert measured["CPU"] > 5 * measured["GPU"]
    # The prefetching configurations are the fastest.
    assert measured["ASIC+State&Arc"] < measured["ASIC"]
    assert measured["ASIC+Arc"] < measured["ASIC"]
