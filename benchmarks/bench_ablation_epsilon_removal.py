"""Ablation: epsilon arcs vs an epsilon-free graph.

The paper keeps epsilon arcs (11.5% of Kaldi's graph) because removal
blows the graph up; each epsilon arc costs the accelerator a second
intra-frame pipeline pass (Section III-B).  This ablation folds the
output-free epsilon arcs of a composed task graph and measures both sides
of the trade: graph size against epsilon-pass work and cycles.  Each
graph is a distinct *workload* (removal changes the search), so the
shared runner prices one single-point sweep per graph.
"""

import dataclasses

import pytest

from benchmarks.common import GRAPH_CACHE, format_table, report, sweep_runner
from repro.datasets import TaskConfig, generate_task
from repro.explore import SweepWorkload
from repro.graph import GraphRecipe, compile_graph


@pytest.fixture(scope="module")
def task():
    return generate_task(
        TaskConfig(vocab_size=150, corpus_sentences=700, num_utterances=3,
                   seed=41)
    )


def run(task):
    original = task.graph
    # Same recipe, epsilon-removal pass switched on: both graphs come from
    # the one compiler pipeline.
    epsfree_config = dataclasses.replace(task.config, remove_epsilons=True)
    epsfree = compile_graph(
        GraphRecipe.from_task_config(epsfree_config), cache=GRAPH_CACHE
    ).graph

    rows = []
    likelihoods = {}
    for name, graph in [("with epsilons", original),
                        ("epsilon-free", epsfree)]:
        workload = SweepWorkload(
            graph=graph,
            scores=[u.scores for u in task.utterances],
            beam=16.0,
        )
        point = sweep_runner(workload).run([{}], labels=[name]).points[0]
        likelihoods[name] = list(point.log_likelihoods)
        rows.append(
            [name, graph.num_states, graph.num_arcs,
             f"{100 * graph.epsilon_fraction():.1f}%",
             point.stats.arcs_processed,
             point.stats.epsilon_arcs_processed,
             point.cycles]
        )
    return rows, likelihoods


def test_ablation_epsilon_removal(benchmark, task):
    rows, likelihoods = benchmark.pedantic(
        run, args=(task,), rounds=1, iterations=1
    )
    text = format_table(
        "Ablation -- epsilon arcs vs epsilon-free graph "
        "(paper keeps 11.5% epsilon arcs)",
        ["graph", "states", "arcs", "eps", "emit arcs", "eps arcs", "cycles"],
        rows,
    )
    report("ablation_epsilon_removal", text)

    by_name = {r[0]: r for r in rows}
    # Removal eliminates the epsilon-pass work entirely...
    assert by_name["epsilon-free"][5] == 0
    # ...at the price of a larger arc array (folding duplicates arcs).
    assert by_name["epsilon-free"][2] >= by_name["with epsilons"][2]
    # Decoding results are unchanged.
    for a, b in zip(likelihoods["with epsilons"], likelihoods["epsilon-free"]):
        assert b == pytest.approx(a, abs=1e-6)
