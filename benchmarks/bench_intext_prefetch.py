"""In-text results (Sections IV-A and VI): the prefetching architecture.

Paper: the decoupled access/execute prefetcher gives 1.87x over the base
design (1.94x together with the state technique) and reaches 97% of the
performance of a perfect Arc cache.  Because its addresses are computed,
it issues no useless prefetches -- DRAM traffic is unchanged.  The three
variants replay one recorded trace through the shared sweep runner.
"""

from benchmarks.common import format_table, report, sweep_runner

PAPER_PREFETCH_SPEEDUP = 1.87
PAPER_PCT_OF_PERFECT = 97.0


def run(workload):
    result = sweep_runner(workload).run(
        [{}, {"prefetch_enabled": True}, {"arc_cache.perfect": True}],
        labels=["baseline", "prefetch", "perfect Arc cache"],
    )
    return {
        p.label: (p.cycles, p.stats.traffic.total_bytes())
        for p in result.points
    }


def test_intext_prefetch(benchmark, swp_workload):
    results = benchmark.pedantic(
        run, args=(swp_workload,), rounds=1, iterations=1
    )
    base_cycles, base_traffic = results["baseline"]
    pref_cycles, pref_traffic = results["prefetch"]
    perf_cycles, _ = results["perfect Arc cache"]

    speedup = base_cycles / pref_cycles
    perfect_speedup = base_cycles / perf_cycles
    pct_of_perfect = 100.0 * perfect_cycles_ratio(pref_cycles, perf_cycles)

    text = format_table(
        "In-text (Sec. IV-A / VI) -- prefetching architecture",
        ["metric", "paper", "measured"],
        [
            ["speedup over base", PAPER_PREFETCH_SPEEDUP, speedup],
            ["perfect-Arc-cache speedup", "(bound)", perfect_speedup],
            ["% of perfect Arc cache", PAPER_PCT_OF_PERFECT, pct_of_perfect],
            ["extra DRAM traffic (bytes)", 0, pref_traffic - base_traffic],
        ],
    )
    report("intext_prefetch", text)

    # Shape: a large speedup, close to the perfect-cache bound, for free
    # in bandwidth.
    assert speedup > 1.4
    assert pct_of_perfect > 80.0
    assert pref_traffic == base_traffic


def perfect_cycles_ratio(pref_cycles, perf_cycles):
    """Prefetch performance as a fraction of the perfect-cache bound."""
    return perf_cycles / pref_cycles
