"""Benchmark: windowed committed-prefix traceback vs append-only history.

Streams one long utterance through a :class:`DecodeSession` two ways:

* **append-only** -- ``commit_interval=0``, the historical buffer: every
  backpointer record survives for the whole utterance, so peak trace
  memory grows linearly with its length and every ``partial()`` walks
  the full best path from scratch;
* **windowed** -- ``commit_interval=K``: every K frames the session
  finds the convergence point of the live frontier, emits the committed
  words once, and compacts away everything unreachable, so peak trace
  memory plateaus at O(active tokens x window) and partials only walk
  the uncommitted tail.

Three gates, run on CI's smoke tier (``--quick``) and nightly (full):

* the windowed buffer's peak memory is **flat** -- the high-water mark
  at the full stream length is within ``WINDOWED_GROWTH_MAX`` of the
  half-length mark, while the append-only buffer keeps growing
  (``APPEND_GROWTH_MIN``);
* second-half partials are at least ``PARTIAL_SPEEDUP_TARGET`` faster
  under the window;
* committed + tail output is word- and score-identical to one-shot
  ``BatchDecoder.decode``, the committed prefix is monotone and never
  retracted, and the compiled backend (when installed) agrees
  bit-for-bit with numpy.
"""

import time

import pytest

from benchmarks.common import GRAPH_CACHE, format_table, report, write_json
from repro.datasets import SyntheticGraphConfig
from repro.decoder import BatchDecoder, DecoderConfig
from repro.decoder.backends import numba_available
from repro.system import make_memory_workload

#: Nightly shape: a long stream (minutes of speech at 100 frames/s) on a
#: production-style tightly pruned search.
FULL_SHAPE = dict(num_states=8_000, frames=1_200, max_active=300,
                  commit_interval=25)
#: CI smoke shape: long enough that append-only growth and the windowed
#: plateau are unambiguous, small enough to finish in seconds.
QUICK_SHAPE = dict(num_states=2_000, frames=400, max_active=100,
                   commit_interval=25)

#: Peak trace memory at the full stream length may exceed the half-length
#: high-water mark by at most this factor under the window (flat growth;
#: measured ratio is 1.0 -- the buffer plateaus within the first few
#: windows).
WINDOWED_GROWTH_MAX = 1.3
#: The append-only buffer must keep growing past the half-way mark by at
#: least this factor (measured ~2x: capacity doubles with the record
#: count), or the baseline being compared against is not linear.
APPEND_GROWTH_MIN = 1.5
#: Second-half partials must be at least this much faster under the
#: window.  Measured headroom is several-fold (the walk shrinks from
#: O(frames) to O(window)); the gate sits low so noisy CI runners cannot
#: flake it while still catching a regression to not-faster.
PARTIAL_SPEEDUP_TARGET = 1.1


def _stream(workload, commit_interval: int, backend: str = "numpy") -> dict:
    """Stream the workload's single utterance frame by frame.

    Calls ``partial()`` after every frame of the second half (the live
    captioning pattern) and returns timings, the traceback high-water
    marks at T/2 and T, every committed prefix observed, and the final
    result.
    """
    config = DecoderConfig(
        beam=workload.beam,
        max_active=workload.max_active,
        backend=backend,
        commit_interval=commit_interval,
    )
    decoder = BatchDecoder(workload.graph, config)
    matrix = workload.scores[0].matrix
    total = len(matrix)
    session = decoder.open_session()
    peak_half = 0
    partial_seconds = 0.0
    partials = 0
    committed_prefixes = []
    for t, row in enumerate(matrix):
        session.push_frame(row)
        if t + 1 == total // 2:
            peak_half = session.trace_peak_bytes
        if t + 1 > total // 2:
            t0 = time.perf_counter()
            hypothesis = session.partial()
            partial_seconds += time.perf_counter() - t0
            partials += 1
            committed_prefixes.append(tuple(hypothesis.committed))
    peak_full = session.trace_peak_bytes
    result = session.finalize()
    return {
        "peak_half_bytes": peak_half,
        "peak_full_bytes": peak_full,
        "partial_seconds": partial_seconds,
        "partials": partials,
        "committed_prefixes": committed_prefixes,
        "result": result,
    }


def _check_committed(run: dict, final_words) -> None:
    """Committed prefixes must be monotone and never retracted."""
    prev_len = 0
    for prefix in run["committed_prefixes"]:
        if len(prefix) < prev_len:
            raise AssertionError(
                f"committed prefix shrank from {prev_len} to {len(prefix)} "
                f"words"
            )
        prev_len = len(prefix)
        if tuple(final_words[: len(prefix)]) != prefix:
            raise AssertionError(
                f"committed prefix {prefix} retracted by the final "
                f"hypothesis {final_words}"
            )


def run_traceback_memory(quick: bool = False, seed: int = 9) -> dict:
    """Measure both buffer disciplines on one stream; returns the payload."""
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    workload = make_memory_workload(
        num_utterances=1,
        frames_per_utterance=shape["frames"],
        beam=8.0,
        max_active=shape["max_active"],
        seed=seed,
        graph_config=SyntheticGraphConfig(
            num_states=shape["num_states"], num_phones=50, seed=seed
        ),
        graph_cache=GRAPH_CACHE,
    )
    interval = shape["commit_interval"]
    offline = BatchDecoder(
        workload.graph,
        DecoderConfig(beam=workload.beam, max_active=workload.max_active),
    ).decode(workload.scores[0])

    _stream(workload, 0)  # warm the graph layout and allocator
    append = _stream(workload, 0)
    windowed = _stream(workload, interval)

    for name, run in (("append-only", append), ("windowed", windowed)):
        result = run["result"]
        if (result.words != offline.words
                or result.log_likelihood != offline.log_likelihood):
            raise AssertionError(
                f"{name} streaming diverged from one-shot decoding"
            )
        _check_committed(run, offline.words)

    backends_checked = ["numpy"]
    if numba_available():
        compiled = _stream(workload, interval, backend="numba")
        if (compiled["result"].words != offline.words
                or compiled["result"].log_likelihood
                != offline.log_likelihood):
            raise AssertionError(
                "compiled-backend windowed streaming diverged from numpy"
            )
        _check_committed(compiled, offline.words)
        backends_checked.append("numba")

    windowed_growth = windowed["peak_full_bytes"] / windowed["peak_half_bytes"]
    append_growth = append["peak_full_bytes"] / append["peak_half_bytes"]
    partial_speedup = windowed["partials"] * append["partial_seconds"] / (
        append["partials"] * windowed["partial_seconds"]
    )
    return {
        "workload": {**shape, "beam": workload.beam, "seed": seed,
                     "quick": quick},
        "total_frames": workload.total_frames,
        "append_peak_half_bytes": append["peak_half_bytes"],
        "append_peak_bytes": append["peak_full_bytes"],
        "append_growth": append_growth,
        "windowed_peak_half_bytes": windowed["peak_half_bytes"],
        "windowed_peak_bytes": windowed["peak_full_bytes"],
        "windowed_growth": windowed_growth,
        "memory_reduction": (
            append["peak_full_bytes"] / windowed["peak_full_bytes"]
        ),
        "append_partial_seconds": append["partial_seconds"],
        "windowed_partial_seconds": windowed["partial_seconds"],
        "partials": windowed["partials"],
        "partial_speedup": partial_speedup,
        "committed_frames": windowed["result"].committed_len,
        "backends_checked": backends_checked,
        "words_match": True,
        "windowed_growth_max": WINDOWED_GROWTH_MAX,
        "append_growth_min": APPEND_GROWTH_MIN,
        "partial_speedup_target": PARTIAL_SPEEDUP_TARGET,
    }


def _report(result: dict) -> None:
    name = (
        "traceback_memory_quick"
        if result["workload"]["quick"]
        else "traceback_memory"
    )
    rows = [
        ["append-only (interval 0)",
         result["append_peak_half_bytes"] / 1024,
         result["append_peak_bytes"] / 1024,
         result["append_growth"],
         result["append_partial_seconds"] * 1e3],
        [f"windowed (interval {result['workload']['commit_interval']})",
         result["windowed_peak_half_bytes"] / 1024,
         result["windowed_peak_bytes"] / 1024,
         result["windowed_growth"],
         result["windowed_partial_seconds"] * 1e3],
    ]
    text = format_table(
        f"Traceback buffer -- {result['total_frames']}-frame stream, "
        f"{result['memory_reduction']:.1f}x peak-memory reduction, "
        f"partials {result['partial_speedup']:.2f}x faster "
        f"(target >= {result['partial_speedup_target']:.2f}x), output "
        f"identical to one-shot on {'/'.join(result['backends_checked'])}",
        ["buffer discipline", "peak @T/2 KiB", "peak @T KiB",
         "growth", "partial ms"],
        rows,
    )
    report(name, text)
    write_json(name, result)


def _assert_gates(result: dict) -> None:
    assert result["words_match"]
    assert result["windowed_growth"] <= WINDOWED_GROWTH_MAX, (
        f"windowed trace memory grew {result['windowed_growth']:.2f}x "
        f"past the half-way mark (flat-growth gate {WINDOWED_GROWTH_MAX}x)"
    )
    assert result["append_growth"] >= APPEND_GROWTH_MIN, (
        f"append-only baseline grew only {result['append_growth']:.2f}x "
        f"(expected linear growth >= {APPEND_GROWTH_MIN}x)"
    )
    assert result["partial_speedup"] >= PARTIAL_SPEEDUP_TARGET, (
        f"windowed partials {result['partial_speedup']:.2f}x below the "
        f"{PARTIAL_SPEEDUP_TARGET:.2f}x gate"
    )


def test_traceback_memory(benchmark):
    result = benchmark.pedantic(run_traceback_memory, rounds=1, iterations=1)
    _report(result)
    _assert_gates(result)


@pytest.mark.parametrize("quick", [True])
def test_traceback_memory_quick(benchmark, quick):
    """The CI smoke-gate shape: shorter stream, same three gates."""
    result = benchmark.pedantic(
        run_traceback_memory, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    _report(result)
    _assert_gates(result)
