"""Figure 13: off-chip memory traffic breakdown and the Section IV-B saving.

Paper: states account for 23% of the base design's DRAM traffic; the
sorted-layout State Issuer removes most state fetches, cutting total
off-chip accesses by 20%.  (Prefetching does not appear here because
computed-address prefetches never add traffic.)
"""

from benchmarks.common import format_table, report

PAPER_STATE_SHARE_PCT = 23.0
PAPER_TOTAL_REDUCTION_PCT = 20.0

REGIONS = ("states", "arcs", "tokens", "overflow")


def compute(comparison):
    base = comparison.runs["ASIC"].sim_stats.traffic
    opt = comparison.runs["ASIC+State"].sim_stats.traffic

    rows = []
    for region in REGIONS:
        rows.append(
            [
                region,
                base.region_bytes(region) / 2**20,
                opt.region_bytes(region) / 2**20,
            ]
        )
    rows.append(
        ["TOTAL", base.total_bytes() / 2**20, opt.total_bytes() / 2**20]
    )
    state_share = 100.0 * base.region_bytes("states") / base.total_bytes()
    reduction = 100.0 * (1.0 - opt.total_bytes() / base.total_bytes())
    return rows, state_share, reduction


def test_fig13_mem_traffic(benchmark, std_comparison):
    rows, state_share, reduction = benchmark.pedantic(
        compute, args=(std_comparison,), rounds=1, iterations=1
    )
    text = format_table(
        "Figure 13 -- off-chip traffic (MB) per data type: "
        f"state share {state_share:.1f}% (paper {PAPER_STATE_SHARE_PCT}%), "
        f"total reduction {reduction:.1f}% (paper {PAPER_TOTAL_REDUCTION_PCT}%)",
        ["region", "ASIC (MB)", "ASIC+State (MB)"],
        rows,
    )
    report("fig13_mem_traffic", text)

    by_region = {r[0]: (r[1], r[2]) for r in rows}
    # Shape: the optimisation removes most state traffic...
    assert by_region["states"][1] < 0.2 * by_region["states"][0]
    # ...leaves arcs and tokens essentially unchanged...
    assert abs(by_region["arcs"][1] - by_region["arcs"][0]) < 0.15 * by_region["arcs"][0]
    # ...and saves a double-digit share of total traffic.
    assert reduction > 10.0
