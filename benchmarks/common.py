"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper and emits a
"paper vs measured" report: printed to stdout and written to
``benchmarks/results/<name>.txt``.  Absolute numbers are not expected to
match (the substrate is a scaled synthetic workload on a Python simulator);
the reproduction target is the *shape* -- orderings, rough factors,
crossovers and saturation points.  EXPERIMENTS.md records the outcome per
experiment.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.accel import AcceleratorConfig
from repro.datasets import SyntheticGraphConfig
from repro.explore import SweepRunner, TraceCache
from repro.graph import GraphCache
from repro.system import MemoryWorkload, make_memory_workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: One in-memory trace store for the whole benchmark session: every sweep
#: over the same (workload, layout, beam) reuses a single functional search.
_TRACE_CACHE = TraceCache()

#: One graph-artifact store for the whole benchmark session: every bench
#: sharing a recipe (workload shape + seed) reuses a single compile.  Set
#: ``REPRO_GRAPH_CACHE`` to a directory to persist artifacts across runs
#: (CI does, via actions/cache on the bench-smoke job).
GRAPH_CACHE = GraphCache(os.environ.get("REPRO_GRAPH_CACHE") or None)

#: The paper's four accelerator configurations plus the two baselines.
PLATFORM_ORDER = ("CPU", "GPU", "ASIC", "ASIC+State", "ASIC+Arc", "ASIC+State&Arc")

#: Paper-scale DNN used for the pipeline-level experiments (Kaldi-era
#: hybrid model: 440-dim spliced MFCC input, 6x2048 hidden, ~3.5k senones).
PAPER_DNN = dict(input_dim=440, hidden_dims=(2048,) * 6, num_classes=3500)


def standard_workload(seed: int = 3) -> MemoryWorkload:
    """The default evaluation workload (used by Figures 9-14).

    A 100k-state Kaldi-like graph (states 0.8 MB, arcs 4.1 MB -- both well
    beyond the Table I caches) with a ~2.5k-token active set: the same
    dataset-to-cache regime as the paper's 13.7M-state graph against the
    Table I capacities.
    """
    return make_memory_workload(
        num_utterances=1,
        frames_per_utterance=25,
        beam=8.0,
        max_active=2500,
        score_separation=2.0,
        score_noise=1.0,
        seed=seed,
        graph_config=SyntheticGraphConfig(
            num_states=100_000, num_phones=50, seed=seed
        ),
        graph_cache=GRAPH_CACHE,
    )


def sweep_workload(seed: int = 5) -> MemoryWorkload:
    """A smaller workload for parameter sweeps (Figures 4 and 5)."""
    return make_memory_workload(
        num_utterances=1,
        frames_per_utterance=15,
        beam=8.0,
        max_active=1200,
        score_separation=2.0,
        score_noise=1.0,
        seed=seed,
        graph_config=SyntheticGraphConfig(
            num_states=20_000, num_phones=50, seed=seed
        ),
        graph_cache=GRAPH_CACHE,
    )


def base_config() -> AcceleratorConfig:
    """Table I configuration."""
    return AcceleratorConfig()


def sweep_runner(
    workload,
    base: Optional[AcceleratorConfig] = None,
    processes: Optional[int] = 1,
) -> SweepRunner:
    """The shared design-space runner every parameter-sweep bench uses.

    Serial by default (figure benches are small once traces are cached);
    the throughput gate passes ``processes=None`` to exercise the fan-out.
    """
    return SweepRunner(
        workload,
        base_config=base or base_config(),
        trace_cache=_TRACE_CACHE,
        processes=processes,
    )


def format_table(title: str, header: Sequence[str], rows: List[Sequence]) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(header)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def report(name: str, text: str) -> None:
    """Print a figure report and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as fh:
        fh.write(text + "\n")


def write_json(name: str, payload: Dict) -> str:
    """Persist machine-readable results (the CI benchmark artifact)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)
