"""Figure 4: cache miss ratio vs capacity for the three caches.

Paper: even 1-2 MB caches show large miss ratios for States and Arcs
(sparse, low-locality accesses over a huge dataset), while the Token cache
is comfortable at 256-512 KB thanks to its sequential writes.  We sweep
the three cache capacities together, scaled around the Table I operating
point, and report per-cache miss ratios (one recorded trace, one replay
per capacity point -- the sweep runner's trace-once/replay-many split).
"""

from benchmarks.common import base_config, format_table, report, sweep_runner
from repro.common.ascii_plot import line_chart

#: Capacity scale factors relative to Table I (state 512K / arc 1M / token
#: 512K) -- spanning the paper's 256K..4M x-axis.
SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)


def run_sweep(workload):
    cfg = base_config()
    points = [
        {
            "state_cache.size_bytes": int(cfg.state_cache.size_bytes * scale),
            "arc_cache.size_bytes": int(cfg.arc_cache.size_bytes * scale),
            "token_cache.size_bytes": int(cfg.token_cache.size_bytes * scale),
        }
        for scale in SCALES
    ]
    result = sweep_runner(workload).run(points)
    rows = []
    for scale, point in zip(SCALES, result.points):
        stats = point.stats
        rows.append(
            [
                f"{int(512 * scale)}K/{int(1024 * scale)}K/{int(512 * scale)}K",
                100.0 * stats.state_cache.miss_ratio,
                100.0 * stats.arc_cache.miss_ratio,
                100.0 * stats.token_cache.miss_ratio,
            ]
        )
    return rows


def test_fig04_cache_miss_ratio(benchmark, std_workload):
    rows = benchmark.pedantic(
        run_sweep, args=(std_workload,), rounds=1, iterations=1
    )
    text = format_table(
        "Figure 4 -- miss ratio (%) vs cache capacity "
        "(paper at Table I sizes: State ~28%, Arc ~40%, Token ~10%)",
        ["state/arc/token size", "state miss %", "arc miss %", "token miss %"],
        rows,
    )
    chart = line_chart(
        list(SCALES),
        [
            ("state", [r[1] for r in rows]),
            ("arc", [r[2] for r in rows]),
            ("token", [r[3] for r in rows]),
        ],
    )
    report("fig04_cache_miss_ratio", text + "\n\n" + chart)

    state = [r[1] for r in rows]
    arc = [r[2] for r in rows]
    token = [r[3] for r in rows]
    # Shape: miss ratios decrease with capacity...
    assert state[0] > state[-1]
    assert arc[0] > arc[-1]
    # ...and the Token cache is the least capacity-hungry at small sizes.
    assert token[0] < state[0]
    assert token[0] < arc[0]
    # Significant misses persist at the operating point (index 1).
    assert arc[1] > 10.0
    assert state[1] > 10.0
