"""Ablation: beam width vs accuracy, search effort and cycles.

The beam is the knob that trades accuracy for work (Section II's pruning).
This sweep decodes a ground-truth task at several beam widths on the full
accelerator and reports WER, mean active tokens, arcs and cycles -- the
classic operating curve that sits behind every fixed-beam number in the
paper's evaluation.  The beam changes the *search*, so the shared runner
records one trace per beam (its ``"beam"`` workload axis) and prices each
on the ASIC+State&Arc configuration.
"""

import pytest

from benchmarks.common import base_config, format_table, report, sweep_runner
from repro.datasets import TaskConfig, generate_task
from repro.decoder import word_error_rate
from repro.explore import SweepWorkload

BEAMS = (2.0, 4.0, 8.0, 16.0)


@pytest.fixture(scope="module")
def task():
    return generate_task(
        TaskConfig(vocab_size=200, corpus_sentences=900, num_utterances=4,
                   score_separation=3.0, score_noise=1.6, seed=51)
    )


def run(task):
    workload = SweepWorkload.from_task(task, beam=BEAMS[0])
    runner = sweep_runner(workload, base=base_config().with_both())
    result = runner.run([{"beam": beam} for beam in BEAMS])

    rows = []
    for beam, point in zip(BEAMS, result.points):
        n = len(task.utterances)
        wer = sum(
            word_error_rate(utt.words, words)
            for utt, words in zip(task.utterances, point.words)
        )
        rows.append(
            [
                beam,
                wer / n,
                point.search.mean_active_tokens,
                point.search.arcs_processed,
                point.cycles,
            ]
        )
    return rows


def test_ablation_beam(benchmark, task):
    rows = benchmark.pedantic(run, args=(task,), rounds=1, iterations=1)
    text = format_table(
        "Ablation -- beam width vs accuracy and work",
        ["beam", "WER", "active tokens/frame", "arcs", "cycles"],
        rows,
    )
    report("ablation_beam", text)

    by_beam = {r[0]: r for r in rows}
    # Wider beams do more work...
    assert by_beam[16.0][4] > by_beam[2.0][4]
    assert by_beam[16.0][2] > by_beam[2.0][2]
    # ...and never hurt accuracy.
    assert by_beam[16.0][1] <= by_beam[2.0][1] + 1e-9
    # The task is accurately decodable at a generous beam.
    assert by_beam[16.0][1] < 0.3
