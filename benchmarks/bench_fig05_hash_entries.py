"""Figure 5: hash-table behaviour vs number of entries.

Paper: average cycles per hash request falls toward 1.0 as the table grows
from 8K to 64K entries, and overall speedup saturates by 32K entries --
which is why Table I picks 32K.
"""

from dataclasses import replace

from benchmarks.common import base_config, format_table, report
from repro.accel import AcceleratorSimulator

ENTRY_COUNTS = (1024, 2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024)


def run_sweep(workload):
    raw = []
    for entries in ENTRY_COUNTS:
        cfg = base_config()
        cfg = replace(
            cfg, hash_table=replace(cfg.hash_table, num_entries=entries)
        )
        sim = AcceleratorSimulator(
            workload.graph, cfg, beam=workload.beam,
            max_active=workload.max_active,
        )
        stats = sim.decode(workload.scores[0]).stats
        raw.append((entries, stats.hash.avg_cycles_per_request, stats.cycles))
    base_cycles = raw[0][2]
    return [
        [f"{entries // 1024}K", avg, base_cycles / cycles]
        for entries, avg, cycles in raw
    ]


def test_fig05_hash_entries(benchmark, swp_workload):
    rows = benchmark.pedantic(
        run_sweep, args=(swp_workload,), rounds=1, iterations=1
    )
    text = format_table(
        "Figure 5 -- avg cycles per hash request and speedup vs entries "
        "(paper: ~1.0 cycles and saturation at 32K)",
        ["entries", "avg cycles/request", "speedup vs 1K"],
        rows,
    )
    report("fig05_hash_entries", text)

    avg = [r[1] for r in rows]
    speedup = [r[2] for r in rows]
    # Shape: collisions fall monotonically with table size...
    assert avg[0] >= avg[-1]
    # ...approach the 1-cycle ideal at 32K+ entries...
    assert avg[-2] < 1.3
    # ...and the speedup saturates: 64K adds almost nothing over 32K.
    assert abs(speedup[-1] - speedup[-2]) < 0.05
