"""Figure 5: hash-table behaviour vs number of entries.

Paper: average cycles per hash request falls toward 1.0 as the table grows
from 8K to 64K entries, and overall speedup saturates by 32K entries --
which is why Table I picks 32K.  One recorded trace prices all seven
table sizes through the shared sweep runner.
"""

from benchmarks.common import format_table, report, sweep_runner

ENTRY_COUNTS = (1024, 2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024)


def run_sweep(workload):
    result = sweep_runner(workload).run(
        [{"hash_table.num_entries": entries} for entries in ENTRY_COUNTS]
    )
    base_cycles = result.points[0].cycles
    return [
        [
            f"{entries // 1024}K",
            point.stats.hash.avg_cycles_per_request,
            base_cycles / point.cycles,
        ]
        for entries, point in zip(ENTRY_COUNTS, result.points)
    ]


def test_fig05_hash_entries(benchmark, swp_workload):
    rows = benchmark.pedantic(
        run_sweep, args=(swp_workload,), rounds=1, iterations=1
    )
    text = format_table(
        "Figure 5 -- avg cycles per hash request and speedup vs entries "
        "(paper: ~1.0 cycles and saturation at 32K)",
        ["entries", "avg cycles/request", "speedup vs 1K"],
        rows,
    )
    report("fig05_hash_entries", text)

    avg = [r[1] for r in rows]
    speedup = [r[2] for r in rows]
    # Shape: collisions fall monotonically with table size...
    assert avg[0] >= avg[-1]
    # ...approach the 1-cycle ideal at 32K+ entries...
    assert avg[-2] < 1.3
    # ...and the speedup saturates: 64K adds almost nothing over 32K.
    assert abs(speedup[-1] - speedup[-2]) < 0.05
