"""Benchmark: batched in-tier acoustic scoring vs per-session scoring.

A load generator replays a seeded bursty-Poisson session trace -- MFCC
feature chunks of many overlapping live sessions -- against the same
:class:`ServingTier` twice:

* **per-session** -- the pre-batching dataflow: each client scores its
  own chunk with :meth:`DnnScorer.score` (one small DNN forward per
  chunk per session) and pushes the finished likelihood rows;
* **batched** -- clients push raw features (``open_session(
  mode="features")`` / ``push_features``) and the tier's scoring thread
  packs every live session's pending chunks into one stacked forward
  per pass, scattering the rows straight into the shared-memory score
  planes (the paper's GPU batching feeding the double-buffered ALB).

Correctness is absolute: both paths must produce words and path scores
identical to a one-shot ``BatchDecoder.decode_batch`` of the same
utterances -- the DNN forward is batch-stable, so batching is purely a
throughput optimisation.

The speedup gate compares *scoring* throughput (frames through the DNN
per second of scoring time): batched cross-session scoring must reach
``SPEEDUP_TARGET`` (2.0x) the per-chunk client throughput when >= 2
cores are usable.  On a single-core runner the two regimes share one
CPU, so the gate degrades to ``SINGLE_CORE_FLOOR`` (0.9x) -- even
there, stacking amortises the per-call numpy dispatch, so batching must
never *cost* throughput.  The transport gate is unconditional: the pipe
must carry descriptors, not score matrices -- under
``IPC_BYTES_PER_FRAME_MAX`` (64) bytes per shipped frame, where one
pickled float64 score row alone would cost hundreds.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.common import format_table, report, write_json
from repro.datasets import AudioTaskConfig, generate_audio_task
from repro.decoder import BatchDecoder, BeamSearchConfig
from repro.system import ServingTier, TierConfig

#: Full load: four shards, dozens of bursty sessions over a DNN big
#: enough that scoring is a visible share of the serving cost.
FULL_SHAPE = dict(vocab=30, corpus=300, utterances=4, train_utterances=50,
                  epochs=8, hidden=(64, 64), sessions=48, chunk_frames=8,
                  burst=8, workers=4, beam=14.0, max_active=150)
#: CI smoke-gate load: tiny trained DNN, a dozen sessions, two shards.
QUICK_SHAPE = dict(vocab=20, corpus=150, utterances=3, train_utterances=30,
                   epochs=6, hidden=(32, 32), sessions=12, chunk_frames=8,
                   burst=4, workers=2, beam=14.0, max_active=80)

#: With >= 2 usable cores, batched scoring frames/s must beat the
#: per-chunk client scoring throughput by this factor.
SPEEDUP_TARGET = 2.0
#: Single-core floor: batching may never *lose* scoring throughput.
SINGLE_CORE_FLOOR = 0.9
#: Transport gate: pipe bytes per shipped frame (descriptors only).
IPC_BYTES_PER_FRAME_MAX = 64.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def make_trace(chunk_counts, burst: int, seed: int):
    """Bursty Poisson arrival trace over ragged sessions.

    Same shape as the serving-tier bench's trace -- burst epochs arrive
    as a Poisson process, each admitting a Poisson-sized group of
    sessions, and session ``s`` streams chunk ``j`` at ``arrival_s + j``
    virtual ticks -- except each session emits exactly its own
    ``chunk_counts[s]`` push events (audio utterances are ragged).
    Returns ``[(due, kind, session, chunk_index)]`` sorted by due time,
    plus the trace's peak concurrency.
    """
    num_sessions = len(chunk_counts)
    mean_chunks = float(np.mean(chunk_counts))
    rng = np.random.default_rng(seed)
    arrivals = []
    t = 0.0
    while len(arrivals) < num_sessions:
        t += float(rng.exponential(scale=mean_chunks / burst))
        group = 1 + int(rng.poisson(burst - 1))
        arrivals.extend([t] * min(group, num_sessions - len(arrivals)))

    events = []
    for s, t0 in enumerate(arrivals):
        events.append((t0, "open", s, -1))
        for j in range(chunk_counts[s]):
            events.append((t0 + j, "push", s, j))
    events.sort(key=lambda e: (e[0], e[2], e[3]))

    leaves = [t0 + n for t0, n in zip(arrivals, chunk_counts)]
    peak = max(
        sum(1 for a, b in zip(arrivals, leaves) if a <= t < b)
        for t in arrivals
    )
    return events, peak


def _replay(events, chunks, open_session, push, close_input):
    """Drive the tier through the trace's event sequence (as fast as it
    accepts work; virtual time fixes only the interleaving)."""
    sids = {}
    remaining = {s: len(chunk_list) for s, chunk_list in chunks.items()}
    for _due, kind, s, j in events:
        if kind == "open":
            sids[s] = open_session()
        else:
            push(sids[s], chunks[s][j])
            remaining[s] -= 1
            if remaining[s] == 0:
                close_input(sids[s])
    return sids


def run_acoustic_scoring(quick: bool = False, seed: int = 7) -> dict:
    """Replay one bursty feature trace both ways; returns the payload."""
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    audio = generate_audio_task(AudioTaskConfig(
        vocab_size=shape["vocab"],
        corpus_sentences=shape["corpus"],
        num_utterances=shape["utterances"],
        train_utterances=shape["train_utterances"],
        epochs=shape["epochs"],
        hidden_dims=shape["hidden"],
        seed=seed,
    ))
    task, scorer = audio.task, audio.scorer
    config = BeamSearchConfig(beam=shape["beam"], max_active=shape["max_active"])
    oneshot = BatchDecoder(task.graph, config).decode_batch(
        [u.scores for u in task.utterances]
    )

    # Session s replays utterance s % U, its features pre-split into
    # chunk_frames-sized pieces (ragged: utterance lengths differ).
    num_sessions = shape["sessions"]
    chunk_frames = shape["chunk_frames"]
    feats = [u.features for u in task.utterances]
    chunks = {
        s: [
            feats[s % len(feats)][i: i + chunk_frames]
            for i in range(0, len(feats[s % len(feats)]), chunk_frames)
        ]
        for s in range(num_sessions)
    }
    events, peak = make_trace(
        [len(chunks[s]) for s in range(num_sessions)], shape["burst"], seed
    )
    total_frames = sum(len(feats[s % len(feats)]) for s in range(num_sessions))

    def check_words(records_by_session, path):
        mismatches = [
            s for s, record in records_by_session.items()
            if record.error is not None
            or record.result.words != oneshot[s % len(feats)].words
            or record.result.log_likelihood
            != oneshot[s % len(feats)].log_likelihood
        ]
        if mismatches:
            raise AssertionError(
                f"{path} scoring diverged from one-shot decoding on "
                f"sessions {mismatches}"
            )

    def tier_config():
        return TierConfig(
            num_workers=shape["workers"],
            max_sessions=num_sessions,  # above peak: nothing is shed
            queue_depth=1_000_000,
        )

    def run_per_session():
        """Clients score their own chunks; the tier sees likelihood rows."""
        score_seconds = 0.0
        scored = 0

        def push(sid, chunk):
            nonlocal score_seconds, scored
            t0 = time.perf_counter()
            rows = scorer.score(chunk).matrix
            score_seconds += time.perf_counter() - t0
            scored += len(chunk)
            tier.push(sid, rows)

        with ServingTier(
            graph=task.graph, search_config=config, tier_config=tier_config()
        ) as tier:
            warm = [tier.open_session() for _ in range(shape["workers"] * 2)]
            for sid, utt in zip(warm, task.utterances * 2):
                tier.push(sid, scorer.score(utt.features).matrix)
                tier.close_input(sid)
            for sid in warm:
                tier.result(sid, timeout=120)
            t0 = time.perf_counter()
            sids = _replay(events, chunks, tier.open_session, push,
                           tier.close_input)
            records = {s: tier.result(sids[s], timeout=300) for s in sids}
            seconds = time.perf_counter() - t0
        return seconds, score_seconds, scored, records

    def run_batched():
        """Clients push raw features; the tier's thread batch-scores."""
        with ServingTier(
            graph=task.graph, search_config=config, tier_config=tier_config(),
            scorer=scorer,
        ) as tier:
            warm = [
                tier.open_session(mode="features")
                for _ in range(shape["workers"] * 2)
            ]
            for sid, utt in zip(warm, task.utterances * 2):
                tier.push_features(sid, utt.features)
                tier.close_input(sid)
            for sid in warm:
                tier.result(sid, timeout=120)
            # Snapshot after warm-up so the measured scoring throughput
            # and transport cost cover only the traced load.
            base = (tier.stats.scored_frames, tier.stats.score_seconds,
                    tier.stats.frames_shipped, tier.stats.ipc_bytes_shipped)
            t0 = time.perf_counter()
            sids = _replay(events, chunks,
                           lambda: tier.open_session(mode="features"),
                           tier.push_features, tier.close_input)
            records = {s: tier.result(sids[s], timeout=300) for s in sids}
            seconds = time.perf_counter() - t0
            stats = tier.stats
        scored = stats.scored_frames - base[0]
        score_seconds = stats.score_seconds - base[1]
        shipped = stats.frames_shipped - base[2]
        ipc_bytes = stats.ipc_bytes_shipped - base[3]
        return seconds, score_seconds, scored, records, {
            "batches": stats.score_batches,
            "descriptors_shipped": stats.descriptors_shipped,
            "ring_stalls": stats.ring_stalls,
            "ipc_bytes_per_frame": ipc_bytes / max(1, shipped),
            "pushes_shed": stats.pushes_shed,
            "sessions_rejected": stats.sessions_rejected,
        }

    run_per_session()  # warm the flat layout, BLAS, and allocator
    base_seconds, base_score_s, base_scored, base_records = min(
        (run_per_session() for _ in range(2)), key=lambda r: r[1]
    )
    bat_seconds, bat_score_s, bat_scored, bat_records, transport = min(
        (run_batched() for _ in range(2)), key=lambda r: r[1]
    )

    check_words(base_records, "per-session")
    check_words(bat_records, "batched in-tier")
    if transport["sessions_rejected"] or transport["pushes_shed"]:
        raise AssertionError(
            f"tier shed work below the admission limit "
            f"({transport['sessions_rejected']} joins, "
            f"{transport['pushes_shed']} pushes)"
        )
    assert base_scored == total_frames and bat_scored == total_frames

    cores = _usable_cores()
    target = SPEEDUP_TARGET if cores >= 2 else SINGLE_CORE_FLOOR
    client_fps = base_scored / base_score_s
    batched_fps = bat_scored / bat_score_s
    return {
        "workload": {**shape, "seed": seed, "quick": quick},
        "sessions": num_sessions,
        "peak_concurrency": peak,
        "total_frames": total_frames,
        "usable_cores": cores,
        "per_session_seconds": base_seconds,
        "batched_seconds": bat_seconds,
        "client_score_seconds": base_score_s,
        "batched_score_seconds": bat_score_s,
        "client_frames_per_second": client_fps,
        "scored_frames_per_second": batched_fps,
        "speedup": batched_fps / client_fps,
        "speedup_target": target,
        "parallel_gate": cores >= 2,
        "score_batches": transport["batches"],
        "descriptors_shipped": transport["descriptors_shipped"],
        "ring_stalls": transport["ring_stalls"],
        "ipc_bytes_per_frame": transport["ipc_bytes_per_frame"],
        "ipc_bytes_per_frame_max": IPC_BYTES_PER_FRAME_MAX,
        "words_match": True,
    }


def _report(result: dict) -> None:
    name = ("acoustic_scoring_quick" if result["workload"]["quick"]
            else "acoustic_scoring")
    rows = [
        ["per-session (client scores)", result["total_frames"],
         result["client_score_seconds"],
         result["client_frames_per_second"]],
        [f"batched in-tier ({result['score_batches']} batches)",
         result["total_frames"], result["batched_score_seconds"],
         result["scored_frames_per_second"]],
    ]
    gate = "parallel" if result["parallel_gate"] else "single-core floor"
    text = format_table(
        f"Acoustic scoring -- {result['sessions']} bursty sessions (peak "
        f"{result['peak_concurrency']} live), scoring speedup "
        f"{result['speedup']:.2f}x (gate >= "
        f"{result['speedup_target']:.2f}x, {gate}, "
        f"{result['usable_cores']} cores), transport "
        f"{result['ipc_bytes_per_frame']:.1f} pipe B/frame "
        f"({result['descriptors_shipped']} descriptors, "
        f"{result['ring_stalls']} plane stalls), output identical to "
        f"one-shot",
        ["scoring path", "frames", "scoring s", "scored frames/s"],
        rows,
    )
    report(name, text)
    write_json(name, result)


def test_acoustic_scoring(benchmark):
    result = benchmark.pedantic(run_acoustic_scoring, rounds=1, iterations=1)
    _report(result)
    assert result["words_match"]
    assert result["speedup"] >= result["speedup_target"]
    assert result["ipc_bytes_per_frame"] < result["ipc_bytes_per_frame_max"]


@pytest.mark.parametrize("quick", [True])
def test_acoustic_scoring_quick(benchmark, quick):
    """The CI smoke-gate shape: two shards, still bit-identical."""
    result = benchmark.pedantic(
        run_acoustic_scoring, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    _report(result)
    assert result["words_match"]
    assert result["speedup"] >= result["speedup_target"]
    assert result["ipc_bytes_per_frame"] < result["ipc_bytes_per_frame_max"]
