"""Figure 1: execution-time split between the DNN and the Viterbi search.

Paper: the Viterbi search takes 73% of ASR execution time on the CPU and
86% on the GPU, which motivates accelerating the search rather than the
DNN.

The split is a function of workload scale: the paper's decoder touches
~25k arcs per frame of its 125k-word graph while its DNN is a ~3.5k-senone
hybrid model.  We therefore evaluate our CPU/GPU timing models at the
paper's published per-frame work profile, and also report the split on
our (smaller) standard workload for reference.
"""

from benchmarks.common import PAPER_DNN, format_table, report
from repro.decoder.result import SearchStats
from repro.energy import CpuTimingModel
from repro.gpu import GpuDnnModel, GpuTimingModel
from repro.gpu.decoder import GpuWorkload
from repro.gpu.model import dnn_flops_per_frame

PAPER_CPU_SEARCH_PCT = 73.0
PAPER_GPU_SEARCH_PCT = 86.0

#: The paper's per-frame search profile: ~25k arcs accessed per frame
#: (Section IV-A), ~10k active tokens, 11.5% epsilon arcs.
PAPER_FRAMES = 100
PAPER_ARCS_PER_FRAME = 25_000
PAPER_TOKENS_PER_FRAME = 10_000


def _paper_scale_split():
    flops = dnn_flops_per_frame(**PAPER_DNN) * PAPER_FRAMES

    eps = int(0.115 * PAPER_ARCS_PER_FRAME * PAPER_FRAMES)
    non_eps = PAPER_ARCS_PER_FRAME * PAPER_FRAMES - eps
    stats = SearchStats(
        frames=PAPER_FRAMES,
        arcs_processed=non_eps,
        epsilon_arcs_processed=eps,
        tokens_created=PAPER_TOKENS_PER_FRAME * PAPER_FRAMES,
        active_tokens_per_frame=[PAPER_TOKENS_PER_FRAME] * PAPER_FRAMES,
    )
    cpu = CpuTimingModel()
    cpu_search = cpu.search_seconds(stats)
    cpu_dnn = cpu.dnn_seconds(flops)

    work = GpuWorkload(
        frames=PAPER_FRAMES,
        kernel_launches=6 * PAPER_FRAMES,
        arcs_expanded=non_eps,
        epsilon_arcs_expanded=eps,
        atomic_updates=non_eps + eps,
        tokens_compacted=PAPER_TOKENS_PER_FRAME * PAPER_FRAMES,
    )
    gpu_search = GpuTimingModel().search_seconds(work)
    gpu_dnn = GpuDnnModel().seconds(flops)

    return (
        100.0 * cpu_search / (cpu_search + cpu_dnn),
        100.0 * gpu_search / (gpu_search + gpu_dnn),
    )


def _measured_split(comparison):
    frames = comparison.speech_seconds * 100.0
    flops = dnn_flops_per_frame(**PAPER_DNN) * frames
    cpu_search = comparison.runs["CPU"].decode_seconds
    gpu_search = comparison.runs["GPU"].decode_seconds
    cpu_dnn = CpuTimingModel().dnn_seconds(flops)
    gpu_dnn = GpuDnnModel().seconds(flops)
    return (
        100.0 * cpu_search / (cpu_search + cpu_dnn),
        100.0 * gpu_search / (gpu_search + gpu_dnn),
    )


def compute(comparison):
    return _paper_scale_split(), _measured_split(comparison)


def test_fig01_pipeline_breakdown(benchmark, std_comparison):
    (cpu_pct, gpu_pct), (cpu_small, gpu_small) = benchmark.pedantic(
        compute, args=(std_comparison,), rounds=1, iterations=1
    )
    text = format_table(
        "Figure 1 -- Viterbi search share of ASR execution time",
        ["platform", "paper (%)", "model @ paper scale (%)",
         "model @ bench scale (%)"],
        [
            ["CPU", PAPER_CPU_SEARCH_PCT, cpu_pct, cpu_small],
            ["GPU", PAPER_GPU_SEARCH_PCT, gpu_pct, gpu_small],
        ],
    )
    report("fig01_pipeline_breakdown", text)
    # Shape: at paper scale the search dominates on both platforms, more
    # so on the GPU (the DNN parallelises well, the search does not).
    assert cpu_pct > 55.0
    assert gpu_pct > cpu_pct
