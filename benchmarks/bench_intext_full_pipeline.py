"""In-text result (Section VI): the full ASR pipeline.

Paper: combining the GPU (DNN) with the accelerator (Viterbi), running
pipelined over batches, is 1.87x faster than running both stages on the
GPU -- 1.7x from the search speedup and the rest from overlapping the two
stages.
"""

from benchmarks.common import PAPER_DNN, format_table, report
from repro.gpu import GpuDnnModel
from repro.gpu.model import dnn_flops_per_frame
from repro.system import AsrSystemModel

PAPER_SPEEDUP = 1.87


def compute(comparison):
    frames = comparison.speech_seconds * 100.0
    flops = dnn_flops_per_frame(**PAPER_DNN)
    dnn_per_frame = GpuDnnModel().seconds(flops)
    gpu_search_per_frame = comparison.runs["GPU"].decode_seconds / frames
    accel_search_per_frame = (
        comparison.runs["ASIC+State&Arc"].decode_seconds / frames
    )

    model = AsrSystemModel(batch_frames=5)
    speedup = model.hybrid_speedup(
        total_frames=int(frames),
        dnn_seconds_per_frame=dnn_per_frame,
        gpu_search_seconds_per_frame=gpu_search_per_frame,
        accel_search_seconds_per_frame=accel_search_per_frame,
        score_bytes_per_frame=4 * PAPER_DNN["num_classes"],
    )
    search_only = gpu_search_per_frame / accel_search_per_frame
    return speedup, search_only


def test_intext_full_pipeline(benchmark, std_comparison):
    speedup, search_only = benchmark.pedantic(
        compute, args=(std_comparison,), rounds=1, iterations=1
    )
    text = format_table(
        "In-text (Sec. VI) -- hybrid GPU+accelerator system vs GPU-only",
        ["metric", "paper (x)", "measured (x)"],
        [
            ["full pipeline speedup", PAPER_SPEEDUP, speedup],
            ["search-stage speedup", 1.70, search_only],
        ],
    )
    report("intext_full_pipeline", text)

    # Shape: the hybrid system clearly beats GPU-only.  The gain is capped
    # by the DNN stage once the accelerator outruns it (two-stage pipeline:
    # throughput = slower stage), so the full-pipeline speedup can sit
    # below the raw search speedup.
    assert speedup > 1.2
    assert speedup <= search_only * 1.5
