"""Benchmark: sharded serving tier under a bursty Poisson session load.

A load generator replays a seeded bursty-Poisson arrival trace -- many
short-lived sessions joining and leaving mid-flight, their chunks
interleaved in virtual time -- against two serving stacks fed the exact
same event sequence:

* **single** -- one in-process :class:`StreamingServer` (the continuous-
  batching baseline: every live session shares one fused sweep engine);
* **tier** -- the sharded :class:`ServingTier` front door routing the
  same sessions across N worker processes, each memory-mapping one
  shared copy of the compiled graph.

Correctness is absolute on both stacks: every session's words and path
score must equal a one-shot ``BatchDecoder.decode`` of its utterance,
and with the admission limit above the trace's peak concurrency the
tier must shed **zero** joins and **zero** pushes.

The throughput gate is core-aware.  With >= 2 usable cores the tier
must reach ``SPEEDUP_TARGET`` (1.3x) the single-process aggregate
frames/s -- the whole point of sharding.  On a single-core runner the
workers time-slice one CPU and a parallel speedup is physically
impossible, so the gate degrades to ``SINGLE_CORE_FLOOR``: the tier's
IPC and routing overhead must not collapse throughput.  The result
payload records which gate applied.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.common import GRAPH_CACHE, format_table, report, write_json
from repro.datasets import SyntheticGraphConfig
from repro.decoder import BatchDecoder, BeamSearchConfig
from repro.decoder.session import chunk_matrix
from repro.system import ServingTier, StreamingServer, TierConfig, make_memory_workload

#: Serving-regime load: hundreds of bursty arrivals over a production-
#: style tightly pruned graph.
FULL_SHAPE = dict(num_states=8_000, utterances=8, sessions=128, frames=40,
                  max_active=300, chunk_frames=8, burst=8, workers=4)
#: CI smoke-gate load: tiny graph, a few dozen sessions, two shards.
#: ``max_active`` sits in the compute-bound regime on purpose: with tiny
#: frontiers a sweep is all numpy dispatch, which sharding cannot split.
QUICK_SHAPE = dict(num_states=2_000, utterances=8, sessions=24, frames=16,
                   max_active=300, chunk_frames=4, burst=6, workers=2)

#: With >= 2 usable cores, the tier's aggregate frames/s must beat the
#: single-process server by this factor.
SPEEDUP_TARGET = 1.3
#: On a single-core runner the shards time-slice one CPU, so the gate is
#: only that routing + IPC overhead does not collapse throughput.
SINGLE_CORE_FLOOR = 0.3


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def make_trace(num_sessions: int, num_chunks: int, burst: int, seed: int):
    """Bursty Poisson arrival trace as a sorted virtual-time event list.

    Burst epochs arrive as a Poisson process; each epoch admits a
    Poisson-sized group of sessions at once (the bursty shape).  Session
    ``s`` then streams chunk ``j`` at ``arrival_s + j`` virtual ticks, so
    chunks of overlapping sessions interleave.  Returns
    ``[(due, kind, session, chunk_index)]`` sorted by due time, with
    ``kind`` in ``{"open", "push"}``, plus the trace's peak concurrency.
    """
    rng = np.random.default_rng(seed)
    arrivals = []
    t = 0.0
    while len(arrivals) < num_sessions:
        t += float(rng.exponential(scale=float(num_chunks) / burst))
        group = 1 + int(rng.poisson(burst - 1))
        arrivals.extend([t] * min(group, num_sessions - len(arrivals)))

    events = []
    for s, t0 in enumerate(arrivals):
        events.append((t0, "open", s, -1))
        for j in range(num_chunks):
            events.append((t0 + j, "push", s, j))
    events.sort(key=lambda e: (e[0], e[2], e[3]))

    leaves = [t0 + num_chunks for t0 in arrivals]
    peak = max(
        sum(1 for a, b in zip(arrivals, leaves) if a <= t < b)
        for t in arrivals
    )
    return events, peak


def _replay(events, chunks, open_session, push, close_input, step=None):
    """Drive one serving stack through the trace's event sequence.

    Replays as fast as the stack accepts work -- virtual time fixes only
    the interleaving (who is live when), which is what shapes the load.
    Returns the session-id map.  ``step`` (the single-process server's
    sweep) runs between event groups so the baseline decodes while the
    trace is still arriving, exactly as the tier's workers do.
    """
    sids = {}
    remaining = {s: len(chunk_list) for s, chunk_list in chunks.items()}
    last_due = None
    for due, kind, s, j in events:
        if step is not None and due != last_due:
            step()
        last_due = due
        if kind == "open":
            sids[s] = open_session()
        else:
            push(sids[s], chunks[s][j])
            remaining[s] -= 1
            if remaining[s] == 0:
                close_input(sids[s])
    return sids


def run_serving_tier(quick: bool = False, seed: int = 7) -> dict:
    """Replay one bursty trace against both stacks; returns the payload."""
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    workload = make_memory_workload(
        num_utterances=shape["utterances"],
        frames_per_utterance=shape["frames"],
        beam=8.0,
        max_active=shape["max_active"],
        seed=seed,
        graph_config=SyntheticGraphConfig(
            num_states=shape["num_states"], num_phones=50, seed=seed
        ),
        graph_cache=GRAPH_CACHE,
    )
    config = BeamSearchConfig(beam=workload.beam, max_active=workload.max_active)
    oneshot = BatchDecoder(workload.graph, config).decode_batch(workload.scores)

    # Session s replays utterance s % U, pre-split into chunks.
    num_sessions = shape["sessions"]
    chunk_frames = shape["chunk_frames"]
    matrices = [chunk_matrix(scores) for scores in workload.scores]
    chunks = {
        s: [
            matrices[s % len(matrices)][i: i + chunk_frames]
            for i in range(0, len(matrices[s % len(matrices)]), chunk_frames)
        ]
        for s in range(num_sessions)
    }
    num_chunks = max(len(c) for c in chunks.values())
    events, peak = make_trace(num_sessions, num_chunks, shape["burst"], seed)
    total_frames = sum(len(m) * (num_sessions // len(matrices)
                                 + (1 if s < num_sessions % len(matrices) else 0))
                       for s, m in enumerate(matrices))

    def check_words(records_by_session, stack):
        mismatches = [
            s for s, record in records_by_session.items()
            if record.error is not None
            or record.result.words != oneshot[s % len(matrices)].words
            or record.result.log_likelihood
            != oneshot[s % len(matrices)].log_likelihood
        ]
        if mismatches:
            raise AssertionError(
                f"{stack} serving diverged from one-shot decoding on "
                f"sessions {mismatches}"
            )

    def run_single():
        server = StreamingServer(workload.graph, config)
        t0 = time.perf_counter()
        sids = _replay(events, chunks, server.open_session, server.push,
                       server.close_input, step=server.step)
        server.drain()
        seconds = time.perf_counter() - t0
        records = {s: server.result(sid) for s, sid in sids.items()}
        return seconds, records

    def run_tier():
        tier = ServingTier(
            graph=workload.graph,
            search_config=config,
            tier_config=TierConfig(
                num_workers=shape["workers"],
                max_sessions=num_sessions,  # above peak: nothing is shed
                queue_depth=1_000_000,
            ),
        )
        with tier:
            # Warm every shard (page in the mmap'd graph, build the flat
            # layout, heat the allocator) before the timed window, as
            # run_single's warmup round does for the baseline.
            warm = [tier.open_session() for _ in range(shape["workers"] * 2)]
            for sid, matrix in zip(warm, matrices * 2):
                tier.push(sid, matrix)
                tier.close_input(sid)
            for sid in warm:
                tier.result(sid, timeout=120)
            t0 = time.perf_counter()
            sids = _replay(events, chunks, tier.open_session, tier.push,
                           tier.close_input)
            records = {s: tier.result(sids[s]) for s in sids}
            seconds = time.perf_counter() - t0
        return seconds, records, tier.stats

    run_single()  # warm the flat layout and allocator
    single_seconds, single_records = min(
        (run_single() for _ in range(2)), key=lambda r: r[0]
    )
    tier_seconds, tier_records, tier_stats = min(
        (run_tier() for _ in range(2)), key=lambda r: r[0]
    )

    check_words(single_records, "single-process")
    check_words(tier_records, "sharded-tier")
    if tier_stats.sessions_rejected or tier_stats.pushes_shed:
        raise AssertionError(
            f"tier shed work below the admission limit "
            f"({tier_stats.sessions_rejected} joins, "
            f"{tier_stats.pushes_shed} pushes)"
        )

    cores = _usable_cores()
    target = SPEEDUP_TARGET if cores >= 2 else SINGLE_CORE_FLOOR
    single_fps = total_frames / single_seconds
    tier_fps = total_frames / tier_seconds
    return {
        "workload": {**shape, "beam": workload.beam, "seed": seed,
                     "quick": quick},
        "sessions": num_sessions,
        "peak_concurrency": peak,
        "total_frames": total_frames,
        "usable_cores": cores,
        "single_seconds": single_seconds,
        "tier_seconds": tier_seconds,
        "single_frames_per_second": single_fps,
        "tier_frames_per_second": tier_fps,
        "speedup": tier_fps / single_fps,
        "speedup_target": target,
        "parallel_gate": cores >= 2,
        "sessions_rejected": tier_stats.sessions_rejected,
        "pushes_shed": tier_stats.pushes_shed,
        "slo": tier_stats.slo(),
        "words_match": True,
    }


def _report(result: dict) -> None:
    name = (
        "serving_tier_quick" if result["workload"]["quick"] else "serving_tier"
    )
    rows = [
        ["single process", result["total_frames"],
         result["single_seconds"], result["single_frames_per_second"]],
        [f"sharded tier ({result['workload']['workers']} workers)",
         result["total_frames"], result["tier_seconds"],
         result["tier_frames_per_second"]],
    ]
    gate = "parallel" if result["parallel_gate"] else "single-core floor"
    slo = result["slo"]
    text = format_table(
        f"Serving tier -- {result['sessions']} bursty sessions (peak "
        f"{result['peak_concurrency']} live), speedup "
        f"{result['speedup']:.2f}x (gate >= "
        f"{result['speedup_target']:.2f}x, {gate}, "
        f"{result['usable_cores']} cores), p99 session latency "
        f"{slo['p99_session_latency_s'] * 1e3:.1f}ms, zero shed, output "
        f"identical to one-shot",
        ["serving stack", "frames", "seconds", "frames/s"],
        rows,
    )
    report(name, text)
    write_json(name, result)


def test_serving_tier(benchmark):
    result = benchmark.pedantic(run_serving_tier, rounds=1, iterations=1)
    _report(result)
    assert result["words_match"]
    assert result["sessions_rejected"] == 0 and result["pushes_shed"] == 0
    assert result["speedup"] >= result["speedup_target"]


@pytest.mark.parametrize("quick", [True])
def test_serving_tier_quick(benchmark, quick):
    """The CI smoke-gate shape: two shards, still lossless, zero shed."""
    result = benchmark.pedantic(
        run_serving_tier, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    _report(result)
    assert result["words_match"]
    assert result["sessions_rejected"] == 0 and result["pushes_shed"] == 0
    assert result["speedup"] >= result["speedup_target"]
