"""Benchmark: kernel-observer lattice decoder vs the seed scalar one.

The seed ``LatticeDecoder`` ran its own dict-based beam search and added
every surviving arc to the networkx DAG one ``add_edge`` at a time.  The
kernel refactor replaced that with the shared vectorized
``SearchKernel`` plus a lattice-capture observer that materialises the
edge DAG in bulk.  This benchmark decodes the same workload with a
frozen copy of the seed implementation (kept here as the baseline) and
with the current decoder, checks that both lattices agree with the
reference decoder's 1-best path, and gates the vectorized engine at
>= 3x the seed's frames/second.
"""

import math
import time
from typing import Dict

import networkx as nx
import pytest

from benchmarks.common import GRAPH_CACHE, format_table, report, write_json
from repro.common.logmath import LOG_ZERO
from repro.datasets import SyntheticGraphConfig
from repro.decoder import DecoderConfig, LatticeDecoder, ViterbiDecoder
from repro.decoder.lattice import _SINK, _SOURCE, Lattice
from repro.system import make_memory_workload

#: Standard-size workload: search-dominated, like the evaluation figures.
FULL_SHAPE = dict(num_states=8_000, utterances=3, frames=20, max_active=900)
#: Tiny workload for the CI smoke gate: seconds, not minutes.
QUICK_SHAPE = dict(num_states=2_000, utterances=2, frames=10, max_active=350)

SPEEDUP_TARGET = 3.0
#: The smoke-gate shape measures ~2.8-3.9x depending on machine load;
#: gate with real headroom for shared CI runners (the full shape,
#: measured ~18x, keeps the 3x target and catches regressions).
QUICK_SPEEDUP_TARGET = 2.0


def _seed_scalar_lattice(graph, config, lattice_beam, scores) -> Lattice:
    """The seed repository's scalar lattice decode, frozen as the baseline.

    Dict-based token passing with per-arc ``add_edge`` calls -- the
    implementation the kernel-observer decoder replaced (PR 4).  Kept
    verbatim (minus the class wrapper) so the speedup gate always
    measures against the same code.
    """
    lat = nx.DiGraph()
    lat.add_node(_SOURCE)
    lat.add_node(_SINK)

    def epsilon_closure(tokens: Dict[int, float], frame: int) -> None:
        worklist = list(tokens.keys())
        while worklist:
            state = worklist.pop()
            score = tokens[state]
            first, n_non_eps, n_eps = graph.arc_range(state)
            for a in range(first + n_non_eps, first + n_non_eps + n_eps):
                dest = int(graph.arc_dest[a])
                weight = float(graph.arc_weight[a])
                lat.add_edge(
                    (frame, state), (frame, dest),
                    cost=-weight, word=int(graph.arc_olabel[a]),
                )
                new = score + weight
                if new > tokens.get(dest, LOG_ZERO):
                    tokens[dest] = new
                    worklist.append(dest)

    tokens: Dict[int, float] = {graph.start: 0.0}
    lat.add_edge(_SOURCE, (0, graph.start), cost=0.0, word=0)
    epsilon_closure(tokens, 0)

    for frame in range(scores.num_frames):
        frame_scores = scores.frame(frame)
        best = max(tokens.values())
        threshold = best - config.beam
        survivors = {
            s: score for s, score in tokens.items() if score >= threshold
        }
        if config.max_active and len(survivors) > config.max_active:
            keep = sorted(
                survivors, key=lambda s: survivors[s], reverse=True
            )[: config.max_active]
            survivors = {s: survivors[s] for s in keep}

        next_tokens: Dict[int, float] = {}
        for state, score in survivors.items():
            first, n_non_eps, _ = graph.arc_range(state)
            for a in range(first, first + n_non_eps):
                arc_score = (
                    float(graph.arc_weight[a])
                    + float(frame_scores[graph.arc_ilabel[a]])
                )
                dest = int(graph.arc_dest[a])
                new = score + arc_score
                if new > next_tokens.get(dest, LOG_ZERO):
                    next_tokens[dest] = new
                lat.add_edge(
                    (frame, state), (frame + 1, dest),
                    cost=-arc_score, word=int(graph.arc_olabel[a]),
                )
        epsilon_closure(next_tokens, frame + 1)
        tokens = next_tokens

    finals = {s for s in tokens if graph.is_final(s)}
    if finals:
        for state in finals:
            lat.add_edge(
                (scores.num_frames, state), _SINK,
                cost=-graph.final_weight(state), word=0,
            )
    else:
        for state in tokens:
            lat.add_edge((scores.num_frames, state), _SINK, cost=0.0, word=0)

    # The seed's networkx lattice-beam pruning (two Dijkstras + node
    # removal) -- the step the current decoder replaces with vectorized
    # forward/backward sweeps before the graph is even built.
    fwd = nx.shortest_path_length(lat, source=_SOURCE, weight="cost")
    bwd = nx.shortest_path_length(
        lat.reverse(copy=False), source=_SINK, weight="cost"
    )
    best = fwd[_SINK]
    cut = best + lattice_beam
    doomed = [
        n
        for n in list(lat.nodes)
        if n not in (_SOURCE, _SINK)
        and (n not in fwd or n not in bwd or fwd[n] + bwd[n] > cut)
    ]
    lat.remove_nodes_from(doomed)
    return Lattice(lat, scores.num_frames)


def run_lattice_throughput(quick: bool = False, seed: int = 3) -> dict:
    """Measure both implementations on one workload; returns the payload."""
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    workload = make_memory_workload(
        num_utterances=shape["utterances"],
        frames_per_utterance=shape["frames"],
        beam=8.0,
        max_active=shape["max_active"],
        seed=seed,
        graph_config=SyntheticGraphConfig(
            num_states=shape["num_states"], num_phones=50, seed=seed
        ),
        graph_cache=GRAPH_CACHE,
    )
    config = DecoderConfig(beam=workload.beam, max_active=workload.max_active)
    lattice_beam = 5.0
    # The quick workload decodes in milliseconds, so one-shot timings are
    # at the mercy of scheduler noise: take the best of a few rounds.
    rounds = 3 if quick else 1

    def best_of(func):
        best_seconds, result = None, None
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = func()
            elapsed = time.perf_counter() - t0
            if best_seconds is None or elapsed < best_seconds:
                best_seconds = elapsed
        return best_seconds, result

    seed_seconds, seed_lattices = best_of(lambda: [
        _seed_scalar_lattice(workload.graph, config, lattice_beam, s)
        for s in workload.scores
    ])

    decoder = LatticeDecoder(workload.graph, config, lattice_beam=lattice_beam)
    decoder.decode(workload.scores[0])  # warm the flat layout + caches
    kernel_seconds, kernel_lattices = best_of(
        lambda: [decoder.decode(s) for s in workload.scores]
    )

    # Consistency gate: both lattices' 1-best must match the reference.
    reference = ViterbiDecoder(workload.graph, config)
    for i, (scores, old, new) in enumerate(
        zip(workload.scores, seed_lattices, kernel_lattices)
    ):
        ref = reference.decode(scores)
        new_best = new.best_path()
        if new_best.words != ref.words:
            raise AssertionError(
                f"kernel lattice 1-best diverged from the reference on "
                f"utterance {i}"
            )
        if not math.isclose(
            new_best.log_likelihood, ref.log_likelihood, abs_tol=1e-6
        ):
            raise AssertionError(
                f"kernel lattice 1-best score diverged on utterance {i}"
            )
        if old.best_path().words != ref.words:
            raise AssertionError(
                f"seed lattice 1-best diverged from the reference on "
                f"utterance {i}"
            )

    frames = workload.total_frames
    seed_fps = frames / seed_seconds
    kernel_fps = frames / kernel_seconds
    return {
        "workload": {**shape, "beam": workload.beam, "seed": seed,
                     "quick": quick},
        "total_frames": frames,
        "lattice_edges": kernel_lattices[0].num_edges,
        "seed_seconds": seed_seconds,
        "kernel_seconds": kernel_seconds,
        "seed_frames_per_second": seed_fps,
        "kernel_frames_per_second": kernel_fps,
        "speedup": kernel_fps / seed_fps,
        "onebest_matches": True,
        "speedup_target": QUICK_SPEEDUP_TARGET if quick else SPEEDUP_TARGET,
    }


def _report(result: dict) -> None:
    name = (
        "lattice_throughput_quick"
        if result["workload"]["quick"]
        else "lattice_throughput"
    )
    rows = [
        ["seed scalar (dict + add_edge)", result["total_frames"],
         result["seed_seconds"], result["seed_frames_per_second"]],
        ["kernel observer (vectorized)", result["total_frames"],
         result["kernel_seconds"], result["kernel_frames_per_second"]],
    ]
    text = format_table(
        f"Lattice decoding throughput -- speedup {result['speedup']:.1f}x "
        f"(target >= {result['speedup_target']:.1f}x), 1-best identical",
        ["implementation", "frames", "seconds", "frames/s"],
        rows,
    )
    report(name, text)
    write_json(name, result)


def test_lattice_throughput(benchmark):
    result = benchmark.pedantic(run_lattice_throughput, rounds=1, iterations=1)
    _report(result)
    assert result["onebest_matches"]
    assert result["speedup"] >= SPEEDUP_TARGET


@pytest.mark.parametrize("quick", [True])
def test_lattice_throughput_quick(benchmark, quick):
    """The CI smoke-gate shape: tiny graph, still must agree and win."""
    result = benchmark.pedantic(
        run_lattice_throughput, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    _report(result)
    assert result["onebest_matches"]
    assert result["speedup"] >= QUICK_SPEEDUP_TARGET
