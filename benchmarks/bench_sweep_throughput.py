"""Gate: the trace-once/replay-many sweep beats independent simulations.

A design-space sweep prices N configurations of the same workload.  The
monolithic way runs the full cycle-accurate simulator N times, re-doing
the identical beam search each time; the shared runner records the search
once and replays its event trace per configuration (optionally across
processes).  This bench runs a 10-point grid (Arc-cache capacity x
prefetching -- the Figure 4 / Section IV-A axes) both ways, asserts the
replayed timing is **cycle-identical** to the monolithic simulator on
every point, and gates the end-to-end speedup at >= 5x (quick mode: a
smaller workload, gated at >= 3x for CI-runner noise).
"""

import time

from benchmarks.common import (
    base_config,
    format_table,
    report,
    standard_workload,
    sweep_workload,
    write_json,
)
from repro.accel import AcceleratorSimulator
from repro.explore import ParameterGrid, SweepRunner, TraceCache, apply_overrides

SPEEDUP_TARGET = 5.0
QUICK_SPEEDUP_TARGET = 3.0

#: 10 points: five Arc-cache capacities with and without prefetching.
GRID = ParameterGrid(
    [
        ("arc_cache.size_bytes", tuple(kb * 1024 for kb in (256, 512, 1024, 2048, 4096))),
        ("prefetch_enabled", (False, True)),
    ]
)


def run_sweep_throughput(quick: bool = False) -> dict:
    workload = sweep_workload() if quick else standard_workload()
    base = base_config()
    points = GRID.points()

    # N independent monolithic simulator runs (the pre-sweep-engine way).
    t0 = time.perf_counter()
    independent = []
    for overrides in points:
        config = apply_overrides(base, overrides)
        sim = AcceleratorSimulator(
            workload.graph, config, beam=workload.beam,
            max_active=workload.max_active,
        )
        independent.append(
            sum(sim.decode(s).stats.cycles for s in workload.scores)
        )
    independent_seconds = time.perf_counter() - t0

    # One shared-runner sweep, end to end: trace recording included, cold
    # cache, process fan-out auto-sized to the machine.
    t0 = time.perf_counter()
    runner = SweepRunner(
        workload, base_config=base, trace_cache=TraceCache(), processes=None
    )
    result = runner.run(GRID)
    sweep_seconds = time.perf_counter() - t0

    mismatches = sum(
        1 for point, cycles in zip(result.points, independent)
        if point.cycles != cycles
    )
    speedup = independent_seconds / sweep_seconds
    return {
        "quick": quick,
        "points": len(points),
        "independent_seconds": round(independent_seconds, 3),
        "sweep_seconds": round(sweep_seconds, 3),
        "speedup": round(speedup, 2),
        "target": QUICK_SPEEDUP_TARGET if quick else SPEEDUP_TARGET,
        "cycle_mismatches": mismatches,
        "trace_recordings": result.trace_recordings,
        "processes": result.processes,
    }


def _report(payload: dict) -> None:
    text = format_table(
        "Sweep throughput -- shared runner vs independent simulations "
        f"({payload['points']} configurations, "
        f"{payload['processes']} process(es))",
        ["metric", "value"],
        [
            ["independent sims (s)", payload["independent_seconds"]],
            ["trace+replay sweep (s)", payload["sweep_seconds"]],
            ["end-to-end speedup (x)", payload["speedup"]],
            ["gate (x)", payload["target"]],
            ["cycle mismatches", payload["cycle_mismatches"]],
        ],
    )
    suffix = "_quick" if payload["quick"] else ""
    report(f"sweep_throughput{suffix}", text)
    write_json(f"sweep_throughput{suffix}", payload)


def test_sweep_throughput(benchmark):
    payload = benchmark.pedantic(
        run_sweep_throughput, rounds=1, iterations=1
    )
    _report(payload)
    # Replay is cycle-identical to the monolithic simulator on all 10
    # configurations of the standard workload (acceptance criterion).
    assert payload["cycle_mismatches"] == 0
    assert payload["speedup"] >= SPEEDUP_TARGET, (
        f"sweep speedup {payload['speedup']:.2f}x below the "
        f"{SPEEDUP_TARGET:.0f}x gate"
    )
