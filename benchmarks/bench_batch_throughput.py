"""Benchmark: vectorized batch engine vs scalar token passing.

Decodes the same memory-system workload with the reference
``ViterbiDecoder`` (one utterance at a time, per-token dict operations)
and with ``BatchDecoder`` (all utterances in lockstep, array sweeps), and
reports frames/second for both.  The engines must agree word for word --
any mismatch fails the benchmark, which is the decoder-consistency gate CI
runs in ``--quick`` mode.  Acceptance target: the batch engine sustains at
least 3x the scalar frames/second.
"""

import time

import pytest

from benchmarks.common import GRAPH_CACHE, format_table, report, write_json
from repro.datasets import SyntheticGraphConfig
from repro.decoder import BatchDecoder, BeamSearchConfig, ViterbiDecoder
from repro.system import make_memory_workload

#: Standard-size workload: the active-set regime of the evaluation figures.
FULL_SHAPE = dict(num_states=20_000, utterances=4, frames=30, max_active=2000)
#: Small workload for the CI smoke gate: under a second, not minutes.
#: Sized to stay in the vectorization-friendly active-set regime -- the
#: kernel refactor made the scalar oracle itself ~3x faster
#: (list-indexed ``ReferenceKernel``), so a tiny dispatch-dominated
#: frontier no longer separates the engines.
QUICK_SHAPE = dict(num_states=20_000, utterances=4, frames=12, max_active=2000)

SPEEDUP_TARGET = 3.0
#: The smoke-gate shape measures ~3.2x; gate with headroom for CI noise.
QUICK_SPEEDUP_TARGET = 2.0


def _best_of(rounds: int, func):
    """Best wall-clock of ``rounds`` runs (robust to noisy CI runners)."""
    best_seconds, result = None, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - t0
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, result


def run_batch_throughput(quick: bool = False, seed: int = 3) -> dict:
    """Measure both engines on one workload; returns the JSON payload."""
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    workload = make_memory_workload(
        num_utterances=shape["utterances"],
        frames_per_utterance=shape["frames"],
        beam=8.0,
        max_active=shape["max_active"],
        seed=seed,
        graph_config=SyntheticGraphConfig(
            num_states=shape["num_states"], num_phones=50, seed=seed
        ),
        graph_cache=GRAPH_CACHE,
    )
    config = BeamSearchConfig(beam=workload.beam, max_active=workload.max_active)
    # The quick workload decodes in milliseconds, so one-shot timings are
    # at the mercy of scheduler noise: take the best of a few rounds.
    rounds = 3 if quick else 1

    reference = ViterbiDecoder(workload.graph, config)
    ref_seconds, ref_results = _best_of(
        rounds, lambda: [reference.decode(s) for s in workload.scores]
    )

    batch = BatchDecoder(workload.graph, config)
    batch.decode_batch(workload.scores)  # warm the flat layout + caches
    batch_seconds, batch_results = _best_of(
        rounds, lambda: batch.decode_batch(workload.scores)
    )

    mismatches = [
        i
        for i, (r, b) in enumerate(zip(ref_results, batch_results))
        if r.words != b.words
    ]
    if mismatches:
        raise AssertionError(
            f"batch engine diverged from the reference on utterances "
            f"{mismatches}"
        )

    frames = workload.total_frames
    ref_fps = frames / ref_seconds
    batch_fps = frames / batch_seconds
    return {
        "workload": {**shape, "beam": workload.beam, "seed": seed,
                     "quick": quick},
        "total_frames": frames,
        "mean_active_tokens": ref_results[0].stats.mean_active_tokens,
        "reference_seconds": ref_seconds,
        "batch_seconds": batch_seconds,
        "reference_frames_per_second": ref_fps,
        "batch_frames_per_second": batch_fps,
        "speedup": batch_fps / ref_fps,
        "words_match": True,
        "speedup_target": QUICK_SPEEDUP_TARGET if quick else SPEEDUP_TARGET,
    }


def _report(result: dict) -> None:
    name = (
        "batch_throughput_quick"
        if result["workload"]["quick"]
        else "batch_throughput"
    )
    rows = [
        ["reference (token passing)", result["total_frames"],
         result["reference_seconds"], result["reference_frames_per_second"]],
        ["batch (vectorized)", result["total_frames"],
         result["batch_seconds"], result["batch_frames_per_second"]],
    ]
    text = format_table(
        f"Batch decoding throughput -- speedup {result['speedup']:.1f}x "
        f"(target >= {result['speedup_target']:.0f}x), word output identical",
        ["engine", "frames", "seconds", "frames/s"],
        rows,
    )
    report(name, text)
    write_json(name, result)


def test_batch_throughput(benchmark):
    result = benchmark.pedantic(run_batch_throughput, rounds=1, iterations=1)
    _report(result)
    assert result["words_match"]
    assert result["speedup"] >= SPEEDUP_TARGET


@pytest.mark.parametrize("quick", [True])
def test_batch_throughput_quick(benchmark, quick):
    """The CI smoke-gate shape: small graph, still must agree and win."""
    result = benchmark.pedantic(
        run_batch_throughput, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    _report(result)
    assert result["words_match"]
    assert result["speedup"] >= QUICK_SPEEDUP_TARGET
