"""Ablation: the N parameter of the bandwidth-saving technique.

Section IV-B picks N = 16 comparators: with the paper's out-degree
distribution this covers >95% of static states and >97% of dynamic
fetches.  This ablation sweeps N through the shared runner (each N is its
own sorted layout, so the runner records one trace per N plus the
baseline) and reports static coverage, dynamic direct-lookup rate, and
the off-chip traffic saving -- showing the diminishing returns past
N = 16 that justify the paper's choice.
"""

from benchmarks.common import format_table, report, sweep_runner

N_VALUES = (2, 4, 8, 16, 32)


def run(workload):
    runner = sweep_runner(workload)
    points = [{}]  # baseline traffic without the technique
    for n in N_VALUES:
        points.append(
            {
                "state_direct_enabled": True,
                "state_direct_max_arcs": n,
                "sorted.max_direct_arcs": n,
            }
        )
    result = runner.run(points)
    base_traffic = result.points[0].stats.traffic.total_bytes()

    rows = []
    for n, point in zip(N_VALUES, result.points[1:]):
        stats = point.stats
        direct_rate = stats.states_direct / max(
            stats.states_direct + stats.states_fetched, 1
        )
        saving = 1.0 - stats.traffic.total_bytes() / base_traffic
        rows.append(
            [
                n,
                100.0 * runner.sorted_layout(n).covered_state_fraction(),
                100.0 * direct_rate,
                100.0 * saving,
            ]
        )
    return rows


def test_ablation_state_direct_n(benchmark, swp_workload):
    rows = benchmark.pedantic(
        run, args=(swp_workload,), rounds=1, iterations=1
    )
    text = format_table(
        "Ablation -- comparator count N for direct state lookup "
        "(paper: N = 16 covers >95% static / >97% dynamic)",
        ["N", "static coverage %", "dynamic direct %", "traffic saving %"],
        rows,
    )
    report("ablation_state_direct_n", text)

    by_n = {r[0]: r for r in rows}
    # Coverage grows with N and is already near-total at the paper's 16.
    assert by_n[16][1] > 90.0
    assert by_n[16][2] > 90.0
    # Diminishing returns: going 16 -> 32 adds little coverage.
    assert by_n[32][1] - by_n[16][1] < 5.0
    # The traffic saving is double-digit at N = 16.
    assert by_n[16][3] > 5.0
