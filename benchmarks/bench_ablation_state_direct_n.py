"""Ablation: the N parameter of the bandwidth-saving technique.

Section IV-B picks N = 16 comparators: with the paper's out-degree
distribution this covers >95% of static states and >97% of dynamic
fetches.  This ablation sweeps N and reports static coverage, dynamic
direct-lookup rate, and the off-chip traffic saving -- showing the
diminishing returns past N = 16 that justify the paper's choice.
"""

from dataclasses import replace

from benchmarks.common import base_config, format_table, report
from repro.accel import AcceleratorSimulator
from repro.wfst import sort_states_by_arc_count

N_VALUES = (2, 4, 8, 16, 32)


def run(workload):
    # Baseline traffic without the technique.
    base_sim = AcceleratorSimulator(
        workload.graph, base_config(), beam=workload.beam,
        max_active=workload.max_active,
    )
    base_traffic = base_sim.decode(workload.scores[0]).stats.traffic.total_bytes()

    rows = []
    for n in N_VALUES:
        sorted_graph = sort_states_by_arc_count(
            workload.graph, max_direct_arcs=n
        )
        cfg = replace(
            base_config(), state_direct_enabled=True, state_direct_max_arcs=n
        )
        sim = AcceleratorSimulator(
            workload.graph, cfg, beam=workload.beam,
            sorted_graph=sorted_graph, max_active=workload.max_active,
        )
        stats = sim.decode(workload.scores[0]).stats
        direct_rate = stats.states_direct / max(
            stats.states_direct + stats.states_fetched, 1
        )
        saving = 1.0 - stats.traffic.total_bytes() / base_traffic
        rows.append(
            [
                n,
                100.0 * sorted_graph.covered_state_fraction(),
                100.0 * direct_rate,
                100.0 * saving,
            ]
        )
    return rows


def test_ablation_state_direct_n(benchmark, swp_workload):
    rows = benchmark.pedantic(
        run, args=(swp_workload,), rounds=1, iterations=1
    )
    text = format_table(
        "Ablation -- comparator count N for direct state lookup "
        "(paper: N = 16 covers >95% static / >97% dynamic)",
        ["N", "static coverage %", "dynamic direct %", "traffic saving %"],
        rows,
    )
    report("ablation_state_direct_n", text)

    by_n = {r[0]: r for r in rows}
    # Coverage grows with N and is already near-total at the paper's 16.
    assert by_n[16][1] > 90.0
    assert by_n[16][2] > 90.0
    # Diminishing returns: going 16 -> 32 adds little coverage.
    assert by_n[32][1] - by_n[16][1] < 5.0
    # The traffic saving is double-digit at N = 16.
    assert by_n[16][3] > 5.0
