"""Gate: a warm artifact-cache load beats a cold graph compile >= 5x.

The paper compiles its decoding WFST offline and the accelerator only ever
walks the packed binary (Section III).  The staged graph compiler
(:mod:`repro.graph`) makes that split real in this repo: a recipe compiles
once -- lexicon, grammar, composition, epsilon pass, arcsort, pack -- and
every later consumer loads the content-addressed artifact bundle from
disk.  This bench times both paths on the same recipe, asserts the loaded
graph is **bit-identical** to the freshly compiled one, and gates the warm
load at >= 5x the cold compile (measured: ~15-30x).
"""

import shutil
import tempfile
import time

from benchmarks.common import format_table, report, write_json
from repro.graph import GraphCache, GraphRecipe

SPEEDUP_TARGET = 5.0
QUICK_SPEEDUP_TARGET = 5.0

QUICK_RECIPE = GraphRecipe.composed(
    vocab_size=120, corpus_sentences=500, seed=19
)
FULL_RECIPE = GraphRecipe.composed(
    vocab_size=400, corpus_sentences=2000, seed=19
)


def run_graph_compile(quick: bool = False) -> dict:
    recipe = QUICK_RECIPE if quick else FULL_RECIPE
    directory = tempfile.mkdtemp(prefix="repro-graph-bench-")
    try:
        # Cold: pipeline execution plus the bundle write.
        cold_cache = GraphCache(directory)
        t0 = time.perf_counter()
        cold = cold_cache.get(recipe)
        cold_seconds = time.perf_counter() - t0

        # Warm: a fresh cache instance (empty memory) hitting the bundle.
        # The quick graph loads in ~1 ms, where timer noise dominates:
        # take the best of a few rounds, like the other quick benches.
        rounds = 5 if quick else 3
        warm_seconds = float("inf")
        for _ in range(rounds):
            warm_cache = GraphCache(directory)
            t0 = time.perf_counter()
            warm = warm_cache.get(recipe)
            warm_seconds = min(warm_seconds, time.perf_counter() - t0)

        # Compare every packed array (the loaded bundle's *stamped*
        # fingerprint would trivially equal the stored one, so recompute
        # the warm graph's identity from its arrays).
        warm.graph._fingerprint = None
        bit_identical = bool(
            warm.graph.start == cold.graph.start
            and warm.graph.fingerprint() == cold.graph.fingerprint()
            and (warm.graph.states_packed == cold.graph.states_packed).all()
            and (warm.graph.arc_dest == cold.graph.arc_dest).all()
            and (warm.graph.arc_weight == cold.graph.arc_weight).all()
            and (warm.graph.arc_ilabel == cold.graph.arc_ilabel).all()
            and (warm.graph.arc_olabel == cold.graph.arc_olabel).all()
            and (warm.graph.final_weights == cold.graph.final_weights).all()
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    return {
        "quick": quick,
        "recipe": recipe.describe(),
        "fingerprint": recipe.fingerprint(),
        "states": cold.graph.num_states,
        "arcs": cold.graph.num_arcs,
        "passes": [p.name for p in cold.passes],
        "cold_compile_seconds": round(cold_seconds, 4),
        "warm_load_seconds": round(warm_seconds, 5),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "target": QUICK_SPEEDUP_TARGET if quick else SPEEDUP_TARGET,
        "bit_identical": bit_identical,
    }


def _report(payload: dict) -> None:
    text = format_table(
        f"Graph compile -- cold pipeline vs warm artifact-cache load "
        f"({payload['recipe']}: {payload['states']} states / "
        f"{payload['arcs']} arcs)",
        ["metric", "value"],
        [
            ["cold compile (s)", payload["cold_compile_seconds"]],
            ["warm cache load (s)", payload["warm_load_seconds"]],
            ["speedup (x)", payload["speedup"]],
            ["gate (x)", payload["target"]],
            ["bit-identical", payload["bit_identical"]],
        ],
    )
    suffix = "_quick" if payload["quick"] else ""
    report(f"graph_compile{suffix}", text)
    write_json(f"graph_compile{suffix}", payload)


def test_graph_compile(benchmark):
    payload = benchmark.pedantic(run_graph_compile, rounds=1, iterations=1)
    _report(payload)
    assert payload["bit_identical"]
    assert payload["speedup"] >= SPEEDUP_TARGET, (
        f"warm load {payload['speedup']:.2f}x below the "
        f"{SPEEDUP_TARGET:.0f}x gate"
    )
