#!/usr/bin/env python
"""Run every figure/table benchmark without pytest and print the reports.

Equivalent to ``pytest benchmarks/ --benchmark-only`` but with the
paper-vs-measured tables on stdout, for quick inspection:

    python benchmarks/run_all.py [--fast | --quick]

``--fast`` skips the expensive sweeps (Figures 4/5, ablations) and runs
only the benches that share the cached standard comparison.

``--quick`` is the CI smoke gate: tiny configurations that finish in
seconds, a decoder-consistency check across every platform, the batch
vs reference engine benchmark, the continuous-batching streaming
session benchmark, the sharded serving tier under a bursty session
load, the kernel-observer lattice benchmark, the long-stream
traceback-memory gate (flat windowed growth, faster partials, output
identical to one-shot), and a 10-point design-space sweep gated
against independent simulator runs (cycle-identical, >= 3x).  Results
land in ``benchmarks/results/quick_summary.json`` (uploaded as a CI
artifact) plus a normalized ``benchmarks/results/trajectory.json`` --
one frames/s + speedup (and, for the traceback bench, peak-memory +
partial-latency) point per bench -- that CI's perf-report step diffs
against the previous main-branch run; the process exits non-zero on
any crash or decoder mismatch.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

sys.path.insert(0, __file__.rsplit("/", 2)[0])

from benchmarks import common
from repro.system import run_platform_comparison


class _NullBenchmark:
    """Stand-in for pytest-benchmark's fixture."""

    def pedantic(self, func, args=(), kwargs=None, rounds=1, iterations=1):
        return func(*args, **(kwargs or {}))


def run_quick() -> int:
    """CI smoke gate: small, fast, and strict about consistency."""
    from benchmarks import bench_acoustic_scoring as bench_acoustic
    from benchmarks import bench_batch_throughput as bench_batch
    from benchmarks import bench_graph_compile as bench_graph
    from benchmarks import bench_kernel_backends as bench_backends
    from benchmarks import bench_lattice_throughput as bench_lattice
    from benchmarks import bench_serving_tier as bench_tier
    from benchmarks import bench_streaming_sessions as bench_stream
    from benchmarks import bench_traceback_memory as bench_traceback
    from repro.datasets import SyntheticGraphConfig
    from repro.system import make_memory_workload

    summary: dict = {"mode": "quick", "steps": {}}
    failed = False

    def step(name, func):
        nonlocal failed
        t0 = time.time()
        try:
            payload = func()
            summary["steps"][name] = {
                "status": "ok",
                "seconds": round(time.time() - t0, 3),
                **({"result": payload} if payload is not None else {}),
            }
            print(f"[quick] {name}: ok ({time.time() - t0:.1f}s)")
        except Exception as exc:  # the gate reports, then fails the job
            failed = True
            summary["steps"][name] = {
                "status": "failed",
                "seconds": round(time.time() - t0, 3),
                "error": f"{type(exc).__name__}: {exc}",
            }
            print(f"[quick] {name}: FAILED ({exc})")
            traceback.print_exc()

    def platform_consistency():
        """All six platforms on a tiny workload; raises on any decoder
        mismatch (``check_consistency=True``)."""
        workload = make_memory_workload(
            num_utterances=1,
            frames_per_utterance=10,
            beam=8.0,
            max_active=400,
            seed=3,
            graph_config=SyntheticGraphConfig(
                num_states=3000, num_phones=40, seed=3
            ),
        )
        comparison = run_platform_comparison(
            workload, base_config=common.base_config(), check_consistency=True
        )
        return {
            name: {"decode_seconds": run.decode_seconds,
                   "energy_j": run.energy_j}
            for name, run in comparison.runs.items()
        }

    def batch_throughput():
        result = bench_batch.run_batch_throughput(quick=True)
        bench_batch._report(result)
        if result["speedup"] < bench_batch.QUICK_SPEEDUP_TARGET:
            raise AssertionError(
                f"batch speedup {result['speedup']:.2f}x below the "
                f"{bench_batch.QUICK_SPEEDUP_TARGET:.0f}x gate"
            )
        return result

    def streaming_sessions():
        result = bench_stream.run_streaming_sessions(quick=True)
        bench_stream._report(result)
        if result["speedup"] < bench_stream.SPEEDUP_TARGET:
            raise AssertionError(
                f"continuous-batching speedup {result['speedup']:.2f}x "
                f"below the {bench_stream.SPEEDUP_TARGET:.2f}x gate"
            )
        return result

    def serving_tier():
        result = bench_tier.run_serving_tier(quick=True)
        bench_tier._report(result)
        if result["sessions_rejected"] or result["pushes_shed"]:
            raise AssertionError(
                f"serving tier shed work below the admission limit "
                f"({result['sessions_rejected']} joins, "
                f"{result['pushes_shed']} pushes)"
            )
        if result["speedup"] < result["speedup_target"]:
            gate = "parallel" if result["parallel_gate"] else "single-core"
            raise AssertionError(
                f"serving-tier speedup {result['speedup']:.2f}x below the "
                f"{result['speedup_target']:.2f}x {gate} gate"
            )
        return result

    def acoustic_scoring():
        result = bench_acoustic.run_acoustic_scoring(quick=True)
        bench_acoustic._report(result)
        if result["speedup"] < result["speedup_target"]:
            gate = "parallel" if result["parallel_gate"] else "single-core"
            raise AssertionError(
                f"batched-scoring speedup {result['speedup']:.2f}x below "
                f"the {result['speedup_target']:.2f}x {gate} gate"
            )
        if result["ipc_bytes_per_frame"] >= result["ipc_bytes_per_frame_max"]:
            raise AssertionError(
                f"score transport costs {result['ipc_bytes_per_frame']:.1f} "
                f"pipe bytes/frame (gate < "
                f"{result['ipc_bytes_per_frame_max']:.0f}); descriptors "
                f"only, the rows belong in shared memory"
            )
        return result

    def lattice_throughput():
        result = bench_lattice.run_lattice_throughput(quick=True)
        bench_lattice._report(result)
        if result["speedup"] < bench_lattice.QUICK_SPEEDUP_TARGET:
            raise AssertionError(
                f"lattice speedup {result['speedup']:.2f}x below the "
                f"{bench_lattice.QUICK_SPEEDUP_TARGET:.1f}x gate"
            )
        return result

    def graph_compile():
        result = bench_graph.run_graph_compile(quick=True)
        bench_graph._report(result)
        if not result["bit_identical"]:
            raise AssertionError(
                "artifact-cache load is not bit-identical to a fresh "
                "compile"
            )
        if result["speedup"] < bench_graph.QUICK_SPEEDUP_TARGET:
            raise AssertionError(
                f"warm graph load {result['speedup']:.2f}x below the "
                f"{bench_graph.QUICK_SPEEDUP_TARGET:.0f}x gate"
            )
        return result

    def kernel_backends():
        result = bench_backends.run_kernel_backends(quick=True)
        bench_backends._report(result)
        if result["numba_available"] and (
            result["speedup"] < result["speedup_target"]
        ):
            gate = "parallel" if result["parallel_gate"] else "single-core"
            raise AssertionError(
                f"compiled-backend speedup {result['speedup']:.2f}x below "
                f"the {result['speedup_target']:.2f}x {gate} gate"
            )
        return result

    def traceback_memory():
        result = bench_traceback.run_traceback_memory(quick=True)
        bench_traceback._report(result)
        bench_traceback._assert_gates(result)
        return result

    def sweep_throughput():
        from benchmarks import bench_sweep_throughput as bench_sweep

        result = bench_sweep.run_sweep_throughput(quick=True)
        bench_sweep._report(result)
        if result["cycle_mismatches"]:
            raise AssertionError(
                f"{result['cycle_mismatches']} sweep points diverged from "
                f"the monolithic simulator"
            )
        if result["speedup"] < bench_sweep.QUICK_SPEEDUP_TARGET:
            raise AssertionError(
                f"sweep speedup {result['speedup']:.2f}x below the "
                f"{bench_sweep.QUICK_SPEEDUP_TARGET:.1f}x quick gate"
            )
        return result

    step("platform_consistency", platform_consistency)
    step("graph_compile_quick", graph_compile)
    step("batch_throughput_quick", batch_throughput)
    step("streaming_sessions_quick", streaming_sessions)
    step("serving_tier_quick", serving_tier)
    step("acoustic_scoring_quick", acoustic_scoring)
    step("kernel_backends_quick", kernel_backends)
    step("lattice_throughput_quick", lattice_throughput)
    step("traceback_memory_quick", traceback_memory)
    step("sweep_throughput_quick", sweep_throughput)

    summary["status"] = "failed" if failed else "ok"
    path = common.write_json("quick_summary", summary)
    trajectory = _trajectory(summary)
    tpath = common.write_json("trajectory", trajectory)
    print(f"[quick] summary written to {path}: {summary['status']}")
    print(f"[quick] perf trajectory ({len(trajectory['benches'])} benches) "
          f"written to {tpath}")
    return 1 if failed else 0


#: Which result key is each quick bench's headline frames/s.  Benches not
#: listed fall back to the first ``*_frames_per_second`` key they report
#: (or contribute speedup only, like the graph-compile warm-load gate).
_TRAJECTORY_FPS_KEYS = {
    "batch_throughput_quick": "batch_frames_per_second",
    "streaming_sessions_quick": "concurrent_frames_per_second",
    "serving_tier_quick": "tier_frames_per_second",
    "acoustic_scoring_quick": "scored_frames_per_second",
    "kernel_backends_quick": "fused_frames_per_second",
    "lattice_throughput_quick": "kernel_frames_per_second",
}


def _trajectory(summary: dict) -> dict:
    """Normalize the quick-gate step payloads into one perf point.

    The shape is deliberately flat and stable -- ``benches.<name>`` holds
    at most ``frames_per_second``, ``speedup``, and (for the traceback
    bench) ``peak_trace_kib`` + ``partial_latency_ms`` -- so CI can diff
    today's run against a cached previous run without knowing any
    bench's internals (see ``tools/perf_report.py``, which knows which
    metrics are lower-is-better).
    """
    benches: dict = {}
    for name, step_data in summary["steps"].items():
        result = step_data.get("result")
        if not isinstance(result, dict):
            continue
        entry: dict = {}
        key = _TRAJECTORY_FPS_KEYS.get(name)
        if key is None:
            key = next(
                (k for k in sorted(result) if k.endswith("_frames_per_second")),
                None,
            )
        if key is not None and isinstance(result.get(key), (int, float)):
            entry["frames_per_second"] = round(float(result[key]), 3)
        if isinstance(result.get("speedup"), (int, float)):
            entry["speedup"] = round(float(result["speedup"]), 4)
        elif isinstance(result.get("partial_speedup"), (int, float)):
            entry["speedup"] = round(float(result["partial_speedup"]), 4)
        if isinstance(result.get("windowed_peak_bytes"), (int, float)):
            entry["peak_trace_kib"] = round(
                float(result["windowed_peak_bytes"]) / 1024, 1
            )
        if isinstance(result.get("ipc_bytes_per_frame"), (int, float)):
            entry["ipc_bytes_per_frame"] = round(
                float(result["ipc_bytes_per_frame"]), 2
            )
        if (isinstance(result.get("windowed_partial_seconds"), (int, float))
                and result.get("partials")):
            entry["partial_latency_ms"] = round(
                1e3 * float(result["windowed_partial_seconds"])
                / float(result["partials"]), 4
            )
        if entry:
            benches[name] = entry
    return {"schema": 1, "mode": summary.get("mode", "quick"),
            "benches": benches}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true",
                        help="skip the slow parameter sweeps")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke gate: tiny configs, JSON summary, "
                             "non-zero exit on mismatch or crash")
    options = parser.parse_args()
    if options.quick:
        return run_quick()

    t0 = time.time()
    print("Building the standard workload and running all six platforms ...")
    std_workload = common.standard_workload()
    std_comparison = run_platform_comparison(
        std_workload, base_config=common.base_config()
    )
    swp_workload = None if options.fast else common.sweep_workload()
    print(f"  done in {time.time() - t0:.1f}s")

    from benchmarks import (
        bench_acoustic_scoring as acoustic_tp,
        bench_batch_throughput as batch_tp,
        bench_graph_compile as graph_tp,
        bench_lattice_throughput as lattice_tp,
        bench_serving_tier as tier_tp,
        bench_streaming_sessions as stream_tp,
        bench_sweep_throughput as sweep_tp,
        bench_traceback_memory as traceback_tp,
        bench_fig01_pipeline_breakdown as fig01,
        bench_fig04_cache_miss_ratio as fig04,
        bench_fig05_hash_entries as fig05,
        bench_fig07_state_arcs_cdf as fig07,
        bench_fig09_decode_time as fig09,
        bench_fig10_speedup as fig10,
        bench_fig11_energy_reduction as fig11,
        bench_fig12_power as fig12,
        bench_fig13_mem_traffic as fig13,
        bench_fig14_energy_vs_time as fig14,
        bench_intext_area as area,
        bench_intext_full_pipeline as pipeline,
        bench_intext_ideal_components as ideal,
        bench_intext_prefetch as prefetch,
        bench_tables_config as tables,
        bench_ablation_beam as abl_beam,
        bench_ablation_epsilon_removal as abl_eps,
        bench_ablation_memory_latency as abl_latency,
        bench_ablation_prefetch_depth as abl_depth,
        bench_ablation_state_direct_n as abl_n,
    )

    bench = _NullBenchmark()
    tables.test_tables_1_2_3(bench)
    fig01.test_fig01_pipeline_breakdown(bench, std_comparison)
    fig07.test_fig07_state_arcs_cdf(bench, std_comparison)
    fig09.test_fig09_decode_time(bench, std_comparison)
    fig10.test_fig10_speedup_vs_gpu(bench, std_comparison)
    fig11.test_fig11_energy_reduction(bench, std_comparison)
    fig12.test_fig12_power(bench, std_comparison)
    fig13.test_fig13_mem_traffic(bench, std_comparison)
    fig14.test_fig14_energy_vs_time(bench, std_comparison)
    area.test_intext_area_and_overheads(bench)
    pipeline.test_intext_full_pipeline(bench, std_comparison)
    batch_tp.test_batch_throughput(bench)
    graph_tp.test_graph_compile(bench)
    lattice_tp.test_lattice_throughput(bench)
    stream_tp.test_streaming_sessions(bench)
    tier_tp.test_serving_tier(bench)
    acoustic_tp.test_acoustic_scoring(bench)
    traceback_tp.test_traceback_memory(bench)
    sweep_tp.test_sweep_throughput(bench)

    if not options.fast:
        fig04.test_fig04_cache_miss_ratio(bench, std_workload)
        fig05.test_fig05_hash_entries(bench, swp_workload)
        ideal.test_intext_ideal_components(bench, swp_workload)
        prefetch.test_intext_prefetch(bench, swp_workload)
        abl_depth.test_ablation_prefetch_depth(bench, swp_workload)
        abl_latency.test_ablation_memory_latency(bench, swp_workload)
        abl_n.test_ablation_state_direct_n(bench, swp_workload)
        from repro.datasets import TaskConfig, generate_task
        eps_task = generate_task(
            TaskConfig(vocab_size=150, corpus_sentences=700,
                       num_utterances=3, seed=41)
        )
        abl_eps.test_ablation_epsilon_removal(bench, eps_task)
        beam_task = generate_task(
            TaskConfig(vocab_size=200, corpus_sentences=900,
                       num_utterances=4, score_separation=3.0,
                       score_noise=1.6, seed=51)
        )
        abl_beam.test_ablation_beam(bench, beam_task)

    print(f"\nAll benchmarks done in {time.time() - t0:.1f}s; reports in "
          f"{common.RESULTS_DIR}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
