"""In-text results (Sections IV and IV-A): idealised-component speedups.

Paper: perfect caches speed the baseline up by 2.11x, while a perfect
(collision-free) hash adds only 2.8% -- which is why the memory system,
not the hash, is where the optimisation effort goes.  Per cache: a perfect
Arc cache is worth 1.95x, State 1.09x, Token 1.02x.
"""

from dataclasses import replace

from benchmarks.common import base_config, format_table, report
from repro.accel import AcceleratorSimulator

PAPER = {
    "perfect caches": 2.11,
    "perfect hash": 1.028,
    "perfect Arc cache": 1.95,
    "perfect State cache": 1.09,
    "perfect Token cache": 1.02,
}


def _config(perfect_caches=(), perfect_hash=False):
    cfg = base_config()
    kwargs = {}
    for name in perfect_caches:
        kwargs[name] = replace(getattr(cfg, name), perfect=True)
    if perfect_hash:
        kwargs["hash_table"] = replace(cfg.hash_table, perfect=True)
    return replace(cfg, **kwargs)


def run_all(workload):
    variants = {
        "baseline": _config(),
        "perfect caches": _config(
            ("state_cache", "arc_cache", "token_cache")
        ),
        "perfect hash": _config(perfect_hash=True),
        "perfect Arc cache": _config(("arc_cache",)),
        "perfect State cache": _config(("state_cache",)),
        "perfect Token cache": _config(("token_cache",)),
    }
    cycles = {}
    for name, cfg in variants.items():
        sim = AcceleratorSimulator(
            workload.graph, cfg, beam=workload.beam,
            max_active=workload.max_active,
        )
        cycles[name] = sim.decode(workload.scores[0]).stats.cycles
    base = cycles["baseline"]
    return [
        [name, PAPER[name], base / cycles[name]]
        for name in PAPER
    ]


def test_intext_ideal_components(benchmark, swp_workload):
    rows = benchmark.pedantic(
        run_all, args=(swp_workload,), rounds=1, iterations=1
    )
    text = format_table(
        "In-text (Sec. IV) -- speedup from idealised components",
        ["idealisation", "paper (x)", "measured (x)"],
        rows,
    )
    report("intext_ideal_components", text)

    measured = {r[0]: r[2] for r in rows}
    # Shape: caches matter a lot, the hash barely.
    assert measured["perfect caches"] > 1.5
    assert measured["perfect hash"] < 1.15
    # The Arc cache is by far the most important individual cache.
    assert measured["perfect Arc cache"] > measured["perfect State cache"]
    assert measured["perfect Arc cache"] > measured["perfect Token cache"]
