"""In-text results (Sections IV and IV-A): idealised-component speedups.

Paper: perfect caches speed the baseline up by 2.11x, while a perfect
(collision-free) hash adds only 2.8% -- which is why the memory system,
not the hash, is where the optimisation effort goes.  Per cache: a perfect
Arc cache is worth 1.95x, State 1.09x, Token 1.02x.  All six variants
replay one recorded trace through the shared sweep runner.
"""

from benchmarks.common import format_table, report, sweep_runner

PAPER = {
    "perfect caches": 2.11,
    "perfect hash": 1.028,
    "perfect Arc cache": 1.95,
    "perfect State cache": 1.09,
    "perfect Token cache": 1.02,
}

VARIANTS = {
    "baseline": {},
    "perfect caches": {
        "state_cache.perfect": True,
        "arc_cache.perfect": True,
        "token_cache.perfect": True,
    },
    "perfect hash": {"hash_table.perfect": True},
    "perfect Arc cache": {"arc_cache.perfect": True},
    "perfect State cache": {"state_cache.perfect": True},
    "perfect Token cache": {"token_cache.perfect": True},
}


def run_all(workload):
    result = sweep_runner(workload).run(
        list(VARIANTS.values()), labels=list(VARIANTS)
    )
    base = result.point("baseline").cycles
    return [
        [name, PAPER[name], base / result.point(name).cycles]
        for name in PAPER
    ]


def test_intext_ideal_components(benchmark, swp_workload):
    rows = benchmark.pedantic(
        run_all, args=(swp_workload,), rounds=1, iterations=1
    )
    text = format_table(
        "In-text (Sec. IV) -- speedup from idealised components",
        ["idealisation", "paper (x)", "measured (x)"],
        rows,
    )
    report("intext_ideal_components", text)

    measured = {r[0]: r[2] for r in rows}
    # Shape: caches matter a lot, the hash barely.
    assert measured["perfect caches"] > 1.5
    assert measured["perfect hash"] < 1.15
    # The Arc cache is by far the most important individual cache.
    assert measured["perfect Arc cache"] > measured["perfect State cache"]
    assert measured["perfect Arc cache"] > measured["perfect Token cache"]
