"""In-text results (Section VI): die area and technique power overheads.

Paper: the base accelerator occupies 24.06 mm2 (16.53x smaller than the
GTX 980's 398 mm2); adding both techniques brings it to 24.09 mm2
(prefetch hardware +0.05%, State Issuer hardware +0.02%).  The prefetch
FIFOs/ROB dissipate 4.83 mW (1.07% of total power) and the comparator
bank 0.15 mW (0.03%).
"""

from benchmarks.common import format_table, report
from repro.accel import AcceleratorConfig
from repro.energy import AcceleratorAreaModel, AcceleratorEnergyModel
from repro.gpu import GTX980


def compute():
    area = AcceleratorAreaModel()
    energy = AcceleratorEnergyModel()
    base = AcceleratorConfig()
    both = base.with_both()

    base_area = area.total_mm2(base)
    both_area = area.total_mm2(both)
    pref_pct = 100.0 * (area.total_mm2(base.with_prefetch()) - base_area) / base_area
    state_pct = 100.0 * (
        area.total_mm2(base.with_state_direct()) - base_area
    ) / base_area
    pref_mw = 1e3 * (
        energy.static_power_w(base.with_prefetch())
        - energy.static_power_w(base)
    )
    state_mw = 1e3 * (
        energy.static_power_w(base.with_state_direct())
        - energy.static_power_w(base)
    )
    return [
        ["base area (mm2)", 24.06, base_area],
        ["area with both techniques (mm2)", 24.09, both_area],
        ["GTX 980 area ratio (x)", 16.53, GTX980.die_area_mm2 / base_area],
        ["prefetch area overhead (%)", 0.05, pref_pct],
        ["state-issuer area overhead (%)", 0.02, state_pct],
        ["prefetch power (mW)", 4.83, pref_mw],
        ["state-issuer power (mW)", 0.15, state_mw],
    ]


def test_intext_area_and_overheads(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_table(
        "In-text (Sec. VI) -- area and technique overheads",
        ["metric", "paper", "measured"],
        rows,
    )
    report("intext_area", text)

    by_name = {r[0]: (r[1], r[2]) for r in rows}
    assert by_name["base area (mm2)"][1] == __import__("pytest").approx(
        24.06, rel=0.01
    )
    assert by_name["prefetch area overhead (%)"][1] < 0.2
    assert by_name["state-issuer area overhead (%)"][1] < 0.1
    assert by_name["prefetch power (mW)"][1] == __import__("pytest").approx(
        4.83, rel=0.05
    )
