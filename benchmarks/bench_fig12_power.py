"""Figure 12: average power dissipation of every platform.

Paper: CPU 32.2 W, GPU 76.4 W, accelerator between 389 mW and 462 mW
depending on configuration -- with the prefetching configurations at the
top of the range because they finish sooner (dynamic power concentrates).
"""

from benchmarks.common import PLATFORM_ORDER, format_table, report
from repro.common.ascii_plot import bar_chart

PAPER_POWER_W = {
    "CPU": 32.2,
    "GPU": 76.4,
    "ASIC": 0.389,
    "ASIC+State": 0.393,
    "ASIC+Arc": 0.455,
    "ASIC+State&Arc": 0.462,
}


def compute(comparison):
    rows = []
    rep = comparison.report()
    for name in PLATFORM_ORDER:
        rows.append(
            [name, PAPER_POWER_W[name], rep.by_name()[name].avg_power_w]
        )
    return rows


def test_fig12_power(benchmark, std_comparison):
    rows = benchmark.pedantic(
        compute, args=(std_comparison,), rounds=1, iterations=1
    )
    text = format_table(
        "Figure 12 -- average power dissipation (W)",
        ["platform", "paper (W)", "measured (W)"],
        rows,
    )
    chart = bar_chart(
        [(r[0], round(r[2], 4)) for r in rows], log_scale=True, unit=" W"
    )
    report("fig12_power", text + "\n\n" + chart)

    measured = {r[0]: r[2] for r in rows}
    # Shape: the accelerator dissipates under a watt, two orders of
    # magnitude below the GPU.
    for name in ("ASIC", "ASIC+State", "ASIC+Arc", "ASIC+State&Arc"):
        assert measured[name] < 1.0
    assert measured["GPU"] / measured["ASIC"] > 50.0
    # The prefetching configurations dissipate more than the base design.
    assert measured["ASIC+Arc"] > measured["ASIC"]
