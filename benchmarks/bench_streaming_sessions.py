"""Benchmark: continuous-batching server vs sequential streaming sessions.

Streams the same workload through :class:`StreamingServer` two ways:

* **sequential** -- one live session at a time, chunks pushed and swept
  in order (what a naive per-user serving loop would do);
* **concurrent** -- all sessions live at once, every sweep advancing the
  whole fleet through the fused multi-session engine.

Both paths must agree word for word and bit for bit on path scores with
one-shot ``BatchDecoder.decode_batch`` (streaming is lossless), and the
concurrent server must sustain a higher aggregate frames/s than the
sequential runs -- the continuous-batching win the paper's batched GPU
pipeline is built around.  CI's smoke gate runs the ``--quick`` shape.
"""

import time

import pytest

from benchmarks.common import GRAPH_CACHE, format_table, report, write_json
from repro.datasets import SyntheticGraphConfig
from repro.decoder import BatchDecoder, BeamSearchConfig
from repro.system import StreamingServer, make_memory_workload

#: Serving-regime workload: production-style tightly pruned search (a few
#: hundred live tokens per stream).  The fused sweep's win comes from
#: amortizing per-frame dispatch overhead across sessions, so it is
#: largest when frontiers are modest; with thousands of tokens per stream
#: the array compute dominates and batching turns neutral.
FULL_SHAPE = dict(num_states=8_000, utterances=8, frames=40,
                  max_active=300, chunk_frames=10)
#: Tiny workload for the CI smoke gate: small frontiers, where the fused
#: sweep's dispatch amortization shows most clearly.
QUICK_SHAPE = dict(num_states=2_000, utterances=8, frames=16,
                   max_active=100, chunk_frames=5)

#: The concurrent server must beat sequential serving by at least this
#: factor on aggregate frames/s.  Measured headroom is ~1.4x (full) and
#: ~1.8x (quick); the gate sits low so a noisy shared CI runner cannot
#: flake it while still catching any regression to not-faster.
SPEEDUP_TARGET = 1.05


def _best_of(rounds: int, func):
    """Best wall-clock of ``rounds`` runs (robust to noisy CI runners)."""
    best_seconds, result = None, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - t0
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, result


def run_streaming_sessions(quick: bool = False, seed: int = 7) -> dict:
    """Measure both serving shapes on one workload; returns the payload."""
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    workload = make_memory_workload(
        num_utterances=shape["utterances"],
        frames_per_utterance=shape["frames"],
        beam=8.0,
        max_active=shape["max_active"],
        seed=seed,
        graph_config=SyntheticGraphConfig(
            num_states=shape["num_states"], num_phones=50, seed=seed
        ),
        graph_cache=GRAPH_CACHE,
    )
    config = BeamSearchConfig(beam=workload.beam, max_active=workload.max_active)
    chunk_frames = shape["chunk_frames"]
    oneshot = BatchDecoder(workload.graph, config).decode_batch(workload.scores)

    def sequential():
        server = StreamingServer(workload.graph, config)
        results = []
        for scores in workload.scores:
            results.extend(
                server.decode_streaming([scores], chunk_frames=chunk_frames)
            )
        return results, server

    def concurrent():
        server = StreamingServer(workload.graph, config)
        results = server.decode_streaming(
            workload.scores, chunk_frames=chunk_frames
        )
        return results, server

    sequential()  # warm the flat layout and allocator
    concurrent()
    rounds = 3 if quick else 2
    seq_seconds, (seq_results, _) = _best_of(rounds, sequential)
    conc_seconds, (conc_results, conc_server) = _best_of(rounds, concurrent)

    for name, results in (("sequential", seq_results),
                          ("concurrent", conc_results)):
        mismatches = [
            i
            for i, (r, s) in enumerate(zip(oneshot, results))
            if r.words != s.words or r.log_likelihood != s.log_likelihood
        ]
        if mismatches:
            raise AssertionError(
                f"{name} streaming diverged from one-shot decoding on "
                f"utterances {mismatches}"
            )

    frames = workload.total_frames
    seq_fps = frames / seq_seconds
    conc_fps = frames / conc_seconds
    return {
        "workload": {**shape, "beam": workload.beam, "seed": seed,
                     "quick": quick},
        "total_frames": frames,
        "sequential_seconds": seq_seconds,
        "concurrent_seconds": conc_seconds,
        "sequential_frames_per_second": seq_fps,
        "concurrent_frames_per_second": conc_fps,
        "speedup": conc_fps / seq_fps,
        "mean_occupancy": conc_server.stats.mean_occupancy,
        "sweeps": conc_server.stats.sweeps,
        "words_match": True,
        "speedup_target": SPEEDUP_TARGET,
    }


def _report(result: dict) -> None:
    name = (
        "streaming_sessions_quick"
        if result["workload"]["quick"]
        else "streaming_sessions"
    )
    rows = [
        ["sequential sessions", result["total_frames"],
         result["sequential_seconds"],
         result["sequential_frames_per_second"]],
        ["concurrent (continuous batching)", result["total_frames"],
         result["concurrent_seconds"],
         result["concurrent_frames_per_second"]],
    ]
    text = format_table(
        f"Streaming session serving -- {result['workload']['utterances']} "
        f"sessions, speedup {result['speedup']:.2f}x "
        f"(target >= {result['speedup_target']:.2f}x), mean occupancy "
        f"{result['mean_occupancy']:.1f}, output identical to one-shot",
        ["serving mode", "frames", "seconds", "frames/s"],
        rows,
    )
    report(name, text)
    write_json(name, result)


def test_streaming_sessions(benchmark):
    result = benchmark.pedantic(run_streaming_sessions, rounds=1, iterations=1)
    _report(result)
    assert result["words_match"]
    assert result["speedup"] >= SPEEDUP_TARGET


@pytest.mark.parametrize("quick", [True])
def test_streaming_sessions_quick(benchmark, quick):
    """The CI smoke-gate shape: tiny graph, still lossless, still faster."""
    result = benchmark.pedantic(
        run_streaming_sessions, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    _report(result)
    assert result["words_match"]
    assert result["speedup"] >= SPEEDUP_TARGET
