#!/usr/bin/env python
"""Perf-trajectory report (run by the CI bench-smoke job).

Diffs the quick gate's normalized ``trajectory.json`` (written by
``benchmarks/run_all.py --quick``) against the previous main-branch
baseline restored from the actions cache, and renders a before/after
markdown table to ``$GITHUB_STEP_SUMMARY`` (stdout otherwise, so the
tool is just as useful locally).

Regressions beyond ``--threshold`` (default 20%) on any tracked metric
(frames/s and speedup regress by falling; peak trace memory and
partial latency by rising) emit a ``::warning::`` annotation but do **not**
fail the job: the smoke gate's own per-bench floors are the hard line,
this report only tracks the trajectory between commits.  No baseline
(first run, expired cache) renders the current numbers alone and exits
zero.

Usage:
    python tools/perf_report.py \\
        --current benchmarks/results/trajectory.json \\
        --baseline benchmarks/results/baseline-trajectory.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Metrics tracked per bench, in table order.
METRICS = ("frames_per_second", "speedup", "peak_trace_kib",
           "partial_latency_ms", "ipc_bytes_per_frame")

#: Metrics where a *rise* is the regression (memory footprints,
#: latencies, transport cost); everything else regresses by falling.
LOWER_IS_BETTER = frozenset({"peak_trace_kib", "partial_latency_ms",
                             "ipc_bytes_per_frame"})


def load_trajectory(path: str) -> dict:
    """The ``benches`` map of a trajectory file, or ``{}`` when absent
    or unreadable (a torn cache restore must not fail the report)."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    benches = payload.get("benches")
    return benches if isinstance(benches, dict) else {}


def _fmt(value) -> str:
    if value is None:
        return "--"
    return f"{value:,.1f}" if value >= 100 else f"{value:.3f}"


def _delta(before, after):
    """Fractional change, or ``None`` when it cannot be computed."""
    if before is None or after is None or before <= 0:
        return None
    return (after - before) / before


def build_report(current: dict, baseline: dict, threshold: float):
    """Markdown table lines plus the list of regression warnings."""
    lines = ["# Perf trajectory", ""]
    if not baseline:
        lines.append("_No previous main-branch baseline (first run or "
                     "expired cache); reporting current numbers only._")
        lines.append("")
    lines.append("| bench | metric | before | after | delta |")
    lines.append("|---|---|---:|---:|---:|")

    warnings = []
    for bench in sorted(set(current) | set(baseline)):
        for metric in METRICS:
            before = baseline.get(bench, {}).get(metric)
            after = current.get(bench, {}).get(metric)
            if before is None and after is None:
                continue
            delta = _delta(before, after)
            cell = "--" if delta is None else f"{delta:+.1%}"
            regressed = delta is not None and (
                delta > threshold
                if metric in LOWER_IS_BETTER
                else delta < -threshold
            )
            if regressed:
                cell += " :warning:"
                warnings.append(
                    f"{bench} {metric} regressed {delta:+.1%} "
                    f"({_fmt(before)} -> {_fmt(after)}), beyond the "
                    f"{threshold:.0%} warning threshold"
                )
            lines.append(
                f"| {bench} | {metric} | {_fmt(before)} | {_fmt(after)} "
                f"| {cell} |"
            )
    return lines, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="trajectory.json of this run")
    parser.add_argument("--baseline", required=True,
                        help="previous main-branch trajectory.json "
                             "(missing file = first run)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional slowdown that triggers a "
                             "warning (default 0.20 = 20%%)")
    options = parser.parse_args(argv)

    current = load_trajectory(options.current)
    if not current:
        # The quick gate crashed before writing a trajectory; its own
        # step already failed the job, nothing to report here.
        print(f"perf_report: no current trajectory at {options.current}")
        return 0
    baseline = load_trajectory(options.baseline)

    lines, warnings = build_report(current, baseline, options.threshold)
    text = "\n".join(lines) + "\n"
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(text)
    print(text)
    for warning in warnings:
        # GitHub annotation: surfaces on the PR without failing the job.
        print(f"::warning title=perf regression::{warning}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
