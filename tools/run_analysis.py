#!/usr/bin/env python
"""Run the invariant linter from the repo root (CI entry point).

Equivalent to ``repro lint``; exists so CI and pre-commit hooks can run
the linter without installing the package (only ``src`` on the path).

Usage:
    python tools/run_analysis.py                    # lint the tree
    python tools/run_analysis.py --format json      # machine-readable
    python tools/run_analysis.py --update-version-guard
    python tools/run_analysis.py --write-baseline

See docs/INVARIANTS.md for the rule catalogue and suppression protocol.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.engine import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["--root", str(REPO_ROOT), *sys.argv[1:]]))
