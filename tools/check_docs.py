#!/usr/bin/env python
"""Documentation gate (run by the CI docs job).

Two checks:

1. **Link check** -- every relative markdown link in the repo-root
   ``*.md`` files and ``docs/`` must point at an existing file (external
   ``http(s)``/``mailto`` links and pure anchors are skipped; anchors on
   relative links are stripped before the existence check).
2. **pydoc-importability** -- every module under the public ``repro``
   package must import cleanly and render under :mod:`pydoc`, so
   ``python -m pydoc repro.<anything>`` always works and no module grows
   an import-time dependency on test/bench state.  Modules that wrap an
   *optional* extra (``_OPTIONAL_MODULES``) are skipped -- not failed --
   when that extra is absent, and still checked when it is installed.

Exits non-zero with a per-failure report.
"""

from __future__ import annotations

import argparse
import glob
import importlib
import importlib.util
import os
import pkgutil
import pydoc
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_BADGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")


def check_markdown_links(root: str = REPO_ROOT) -> list:
    failures = []
    pages = sorted(
        glob.glob(os.path.join(root, "*.md"))
        + glob.glob(os.path.join(root, "docs", "**", "*.md"),
                    recursive=True)
    )
    for page in pages:
        with open(page, encoding="utf-8") as fh:
            text = fh.read()
        base = os.path.dirname(page)
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0])
            )
            if not os.path.exists(path):
                failures.append(
                    f"{os.path.relpath(page, root)}: broken link "
                    f"-> {target}"
                )
        # Badges referencing workflow files inside the repo should resolve
        # too (the CI badge uses ../../ which leaves the tree; skip those).
        for match in _BADGE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "../")):
                continue
            path = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0])
            )
            if not os.path.exists(path):
                failures.append(
                    f"{os.path.relpath(page, root)}: broken image "
                    f"-> {target}"
                )
    print(f"[docs] link check: {len(pages)} pages scanned")
    return failures


#: Modules whose *only* job is wrapping an optional extra's dependency
#: (pyproject ``[project.optional-dependencies]``): importable -- and
#: then fully checked -- iff the named distribution is installed.
_OPTIONAL_MODULES = {
    "repro.decoder.backends.numba_backend": "numba",
}


def check_pydoc_importability() -> list:
    failures = []
    import repro

    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    skipped = 0
    for name in sorted(names):
        dep = _OPTIONAL_MODULES.get(name)
        if dep is not None and importlib.util.find_spec(dep) is None:
            skipped += 1
            continue
        try:
            module = importlib.import_module(name)
            pydoc.plaintext.document(module)
        except Exception as exc:  # report every broken module, then fail
            failures.append(f"{name}: {type(exc).__name__}: {exc}")
        else:
            doc = module.__doc__
            if not doc or not doc.strip():
                failures.append(f"{name}: missing module docstring")
    optional = f", {skipped} optional-extra skipped" if skipped else ""
    print(f"[docs] pydoc check: {len(names) - skipped} modules "
          f"rendered{optional}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="tree whose markdown is link-checked "
                             "(default: this repo)")
    parser.add_argument("--skip-pydoc", action="store_true",
                        help="run only the link check (used by tests "
                             "over fixture trees)")
    options = parser.parse_args(argv)

    failures = check_markdown_links(options.root)
    if not options.skip_pydoc:
        failures += check_pydoc_importability()
    for failure in failures:
        print(f"[docs] FAIL {failure}")
    if failures:
        print(f"[docs] {len(failures)} failure(s)")
        return 1
    print("[docs] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
