"""Setuptools shim.

The project is fully described by pyproject.toml; this file exists so that
editable installs work in environments whose setuptools predates PEP 660
support or lacks the `wheel` package (legacy `setup.py develop` path).
"""

from setuptools import setup

setup()
