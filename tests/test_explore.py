"""Tests for the design-space sweep subsystem (`repro.explore`)."""

import json
import os

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.accel import AcceleratorConfig, AcceleratorSimulator
from repro.acoustic.scorer import AcousticScores
from repro.datasets import SyntheticGraphConfig
from repro.explore import (
    ParameterGrid,
    SweepRunner,
    TraceCache,
    apply_overrides,
    parse_sweep_value,
    run_sweep,
    workload_fingerprint,
)
from repro.system import make_memory_workload


@pytest.fixture(scope="module")
def workload():
    return make_memory_workload(
        num_utterances=2,
        frames_per_utterance=6,
        beam=8.0,
        max_active=120,
        seed=13,
        graph_config=SyntheticGraphConfig(
            num_states=1200, num_phones=25, seed=13
        ),
    )


class TestGrid:
    def test_product_expansion_order(self):
        grid = ParameterGrid(
            [("a", [1, 2]), ("b", [10, 20, 30])]
        )
        assert len(grid) == 6
        points = grid.points()
        assert points[0] == {"a": 1, "b": 10}
        assert points[1] == {"a": 1, "b": 20}
        assert points[-1] == {"a": 2, "b": 30}

    def test_from_specs_and_value_parsing(self):
        grid = ParameterGrid.from_specs(
            ["arc_cache.size_bytes=256K,1M", "prefetch_enabled=true,false"]
        )
        points = grid.points()
        assert points[0]["arc_cache.size_bytes"] == 256 * 1024
        assert points[1]["prefetch_enabled"] is False
        assert parse_sweep_value("2g") == 2 * 1024 ** 3
        assert parse_sweep_value("0.5") == 0.5
        with pytest.raises(ConfigError):
            parse_sweep_value("not-a-number")
        with pytest.raises(ConfigError):
            ParameterGrid.from_specs(["missing-equals"])

    def test_apply_overrides_nested(self):
        base = AcceleratorConfig()
        config = apply_overrides(
            base,
            {
                "arc_cache.size_bytes": 256 * 1024,
                "mem_latency_cycles": 75,
                "hash_table.num_entries": 4096,
                "beam": 6.0,  # workload key: ignored here
            },
        )
        assert config.arc_cache.size_bytes == 256 * 1024
        assert config.mem_latency_cycles == 75
        assert config.hash_table.num_entries == 4096
        assert config.state_cache == base.state_cache

    def test_apply_overrides_rejects_unknown_paths(self):
        base = AcceleratorConfig()
        with pytest.raises(ConfigError):
            apply_overrides(base, {"nonexistent_field": 1})
        with pytest.raises(ConfigError):
            apply_overrides(base, {"arc_cache.bogus": 1})
        with pytest.raises(ConfigError):
            apply_overrides(base, {"mem_latency_cycles.too.deep": 1})


class TestRunner:
    def test_sweep_matches_independent_simulations(self, workload):
        grid = ParameterGrid(
            [
                ("arc_cache.size_bytes", [64 * 1024, 256 * 1024]),
                ("prefetch_enabled", [False, True]),
            ]
        )
        result = SweepRunner(workload).run(grid)
        assert len(result) == 4
        assert result.trace_recordings == 1  # one layout, one beam
        for point in result.points:
            sim = AcceleratorSimulator(
                workload.graph, point.config, beam=workload.beam,
                max_active=workload.max_active,
            )
            expected = sum(
                sim.decode(s).stats.cycles for s in workload.scores
            )
            assert point.cycles == expected

    def test_state_direct_points_replay_sorted_layout(self, workload):
        points = [
            {"state_direct_enabled": True},
            {"state_direct_enabled": True, "sorted.max_direct_arcs": 4},
        ]
        result = SweepRunner(workload).run(points)
        for point, n in zip(result.points, (None, 4)):
            from repro.wfst import sort_states_by_arc_count

            sorted_graph = (
                workload.sorted_graph if n is None
                else sort_states_by_arc_count(workload.graph, n)
            )
            sim = AcceleratorSimulator(
                workload.graph, point.config, beam=workload.beam,
                sorted_graph=sorted_graph, max_active=workload.max_active,
            )
            expected = sum(
                sim.decode(s).stats.cycles for s in workload.scores
            )
            assert point.cycles == expected
        # Two layouts -> two recordings.
        assert result.trace_recordings == 2

    def test_pruning_axis_records_one_trace_per_strategy(self, workload):
        """The adaptive-beam workload axis re-traces per strategy point
        and changes the functional search (the Fig. 9 ablation axis)."""
        runner = SweepRunner(workload)
        result = runner.run([
            {"pruning": "beam"},
            {"pruning": "adaptive", "target_active": 40},
            {"pruning": "adaptive", "target_active": 40,
             "prefetch_enabled": True},
        ])
        # Three points, two distinct strategies -> two recordings (the
        # adaptive points share one trace).
        assert result.trace_recordings == 2
        _fixed, adaptive, _ = result.points
        # The adaptive trace replays like any other: cycles match the
        # monolithic simulator priced on the same functional search.
        from repro.accel import TraceRecorder, TraceReplayer
        from repro.decoder import DecoderConfig

        recorder = TraceRecorder(
            workload.graph,
            config=DecoderConfig(
                beam=workload.beam, max_active=workload.max_active,
                pruning="adaptive", target_active=40,
            ),
        )
        replayer = TraceReplayer(workload.graph, adaptive.config)
        expected = sum(
            replayer.replay(recorder.record(s)).stats.cycles
            for s in workload.scores
        )
        assert adaptive.cycles == expected

    def test_pruning_spec_parses_from_cli_strings(self):
        grid = ParameterGrid.from_specs(
            ["pruning=beam,adaptive", "target_active=200"]
        )
        points = grid.points()
        assert points[0] == {"pruning": "beam", "target_active": 200}
        assert points[1] == {"pruning": "adaptive", "target_active": 200}

    def test_beam_axis_records_one_trace_per_beam(self, workload):
        runner = SweepRunner(workload)
        result = runner.run(
            [{"beam": 4.0}, {"beam": 8.0}, {"beam": 4.0, "prefetch_enabled": True}]
        )
        # Three points but only two distinct beams -> two recordings (the
        # runner reuses in-flight traces within a run).
        assert result.trace_recordings == 2
        narrow, wide = result.points[0], result.points[1]
        assert narrow.search.arcs_processed <= wide.search.arcs_processed
        # A second run over the same runner is pure cache hits.
        again = runner.run([{"beam": 4.0}, {"beam": 8.0}])
        assert again.trace_recordings == 0
        assert again.trace_cache_hits == 2

    def test_multiprocess_matches_serial(self, workload):
        grid = ParameterGrid(
            [("hash_table.num_entries", [512, 2048, 8192, 32768])]
        )
        cache = TraceCache()
        serial = SweepRunner(workload, trace_cache=cache, processes=1).run(grid)
        forked = SweepRunner(workload, trace_cache=cache, processes=2).run(grid)
        assert forked.processes == 2
        for a, b in zip(serial.points, forked.points):
            assert a.cycles == b.cycles
            assert a.stats == b.stats
            assert a.energy_j == b.energy_j

    def test_artifacts_json_and_csv(self, tmp_path, workload):
        result = run_sweep(
            workload, [("mem_latency_cycles", [25, 50])]
        )
        json_path = result.to_json(str(tmp_path / "sweep.json"))
        csv_path = result.to_csv(str(tmp_path / "sweep.csv"))
        with open(json_path) as fh:
            payload = json.load(fh)
        assert len(payload["points"]) == 2
        assert payload["points"][0]["cycles"] > 0
        assert payload["speech_seconds"] == pytest.approx(
            result.speech_seconds
        )
        with open(csv_path) as fh:
            lines = fh.read().strip().splitlines()
        assert len(lines) == 3  # header + 2 points
        assert "cycles" in lines[0]

    def test_labels_and_lookup(self, workload):
        result = SweepRunner(workload).run(
            [{}, {"prefetch_enabled": True}], labels=["base", "prefetch"]
        )
        assert result.point("prefetch").cycles <= result.point("base").cycles
        with pytest.raises(ConfigError):
            result.point("missing")
        with pytest.raises(ConfigError):
            SweepRunner(workload).run([{}], labels=["a", "b"])

    def test_empty_grid_rejected(self, workload):
        with pytest.raises(ConfigError):
            SweepRunner(workload).run([])


class TestTraceCache:
    def test_disk_cache_roundtrip_and_hit_counters(self, tmp_path, workload):
        directory = str(tmp_path / "traces")
        cache = TraceCache(directory)
        first = cache.get(
            workload.graph, workload.scores, workload.beam,
            workload.max_active,
        )
        assert cache.recordings == 1
        # A fresh cache object backed by the same directory loads without
        # re-recording.
        cache2 = TraceCache(directory)
        second = cache2.get(
            workload.graph, workload.scores, workload.beam,
            workload.max_active,
        )
        assert cache2.recordings == 0
        assert cache2.hits == 1
        for a, b in zip(first, second):
            assert a.words == b.words
            assert np.array_equal(a.emit_arc_idx, b.emit_arc_idx)

    def test_workload_change_invalidates_key(self, workload):
        fp = workload_fingerprint(
            workload.graph, workload.scores, workload.beam,
            workload.max_active,
        )
        assert fp != workload_fingerprint(
            workload.graph, workload.scores, workload.beam + 1.0,
            workload.max_active,
        )
        assert fp != workload_fingerprint(
            workload.graph, workload.scores, workload.beam,
            workload.max_active + 1,
        )
        bumped = [
            AcousticScores(s.matrix + 0.25) for s in workload.scores
        ]
        assert fp != workload_fingerprint(
            workload.graph, bumped, workload.beam, workload.max_active
        )
        assert fp != workload_fingerprint(
            workload.sorted_graph.graph, workload.scores, workload.beam,
            workload.max_active,
        )

    def test_corrupt_disk_entry_falls_back_to_recording(
        self, tmp_path, workload
    ):
        directory = str(tmp_path / "traces")
        cache = TraceCache(directory)
        cache.get(
            workload.graph, workload.scores, workload.beam,
            workload.max_active,
        )
        # Corrupt every stored file.
        for name in os.listdir(directory):
            with open(os.path.join(directory, name), "wb") as fh:
                fh.write(b"not an npz")
        cache2 = TraceCache(directory)
        traces = cache2.get(
            workload.graph, workload.scores, workload.beam,
            workload.max_active,
        )
        assert cache2.recordings == 1
        assert traces[0].num_frames == workload.scores[0].num_frames
