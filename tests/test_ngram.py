"""Tests for the backoff bigram language model."""

import math

import pytest

from repro.common.errors import ConfigError
from repro.common.logmath import to_prob
from repro.lm import train_ngram
from repro.lm.ngram import BOS, EOS


@pytest.fixture(scope="module")
def model():
    corpus = [[1, 2, 3], [1, 2], [2, 3], [1, 3, 2, 1]] * 5
    return train_ngram(corpus, vocab_size=4)


class TestTraining:
    def test_empty_corpus_rejected(self):
        with pytest.raises(ConfigError):
            train_ngram([], vocab_size=3)

    def test_out_of_range_word_rejected(self):
        with pytest.raises(ConfigError):
            train_ngram([[5]], vocab_size=3)

    def test_invalid_discount_rejected(self):
        with pytest.raises(ConfigError):
            train_ngram([[1]], vocab_size=1, discount=1.5)


class TestProbabilities:
    def test_observed_bigram_more_likely_than_backoff(self, model):
        # (1, 2) is frequent; (1, 4) never occurs.
        assert model.logprob(2, prev=1) > model.logprob(4, prev=1)

    def test_unseen_word_gets_unigram_floor(self, model):
        # Word 4 never appears but has add-one unigram mass.
        assert to_prob(model.logprob(4, prev=1)) > 0.0

    def test_bos_history(self, model):
        # Sentences start with 1 or 2, never 3.
        assert model.logprob(1, prev=BOS) > model.logprob(3, prev=BOS)

    def test_conditional_distribution_sums_to_at_most_one(self, model):
        for prev in [BOS, 1, 2, 3]:
            total = sum(
                to_prob(model.logprob(w, prev)) for w in range(1, 5)
            ) + to_prob(model.logprob(EOS, prev))
            assert total <= 1.0 + 1e-9

    def test_observed_mass_plus_backoff_weight_is_one(self, model):
        """Absolute discounting conserves probability per history."""
        for prev in model.observed_histories():
            observed = sum(
                math.exp(lp)
                for (h, _w), lp in model.bigram_logprob.items()
                if h == prev
            )
            backoff = math.exp(model.backoff_logweight[prev])
            assert observed + backoff == pytest.approx(1.0, abs=1e-9)

    def test_sentence_logprob_sums_terms(self, model):
        sent = [1, 2, 3]
        manual = (
            model.logprob(1, BOS)
            + model.logprob(2, 1)
            + model.logprob(3, 2)
            + model.logprob(EOS, 3)
        )
        assert model.sentence_logprob(sent) == pytest.approx(manual)

    def test_likely_sentence_beats_unlikely(self, model):
        assert model.sentence_logprob([1, 2, 3]) > model.sentence_logprob(
            [4, 4, 4]
        )
